"""Dynamic functional connectivity on synthetic voxel-level BOLD data.

The paper's motivating example: sliding-window correlation of fMRI voxel time
series is the expensive step of dynamic functional-connectivity analysis.
This example

1. generates a small voxel grid with a known region parcellation,
2. computes the sequence of thresholded voxel-level connectivity matrices
   with Dangoron (and shows how much work pruning avoided),
3. checks that communities detected in the time-averaged network recover the
   ground-truth parcellation, and
4. contrasts voxel-level analysis with the classical region-averaged analysis.

Run with::

    python examples/fmri_connectivity.py
"""

from __future__ import annotations

import numpy as np

from repro import DangoronEngine, SlidingQuery
from repro.analysis import format_table
from repro.datasets import SyntheticBOLD, region_average_matrix
from repro.network import (
    community_agreement,
    greedy_communities,
    persistence_graph,
)


def main() -> None:
    generator = SyntheticBOLD(
        grid_shape=(6, 6, 4),
        num_regions=10,
        num_volumes=600,
        tr_seconds=2.0,
        seed=11,
    )
    voxels, labels = generator.generate()
    print(
        f"voxels: {voxels.num_series} on a {generator.grid_shape} grid, "
        f"{voxels.length} volumes (TR={generator.tr_seconds}s), "
        f"{generator.num_regions} ground-truth regions"
    )

    # 40-volume (80 s) windows sliding by 10 volumes — typical dFC settings.
    query = SlidingQuery(
        start=0, end=voxels.length, window=40, step=10, threshold=0.5
    )
    engine = DangoronEngine(basic_window_size=10)
    result = engine.run(voxels, query)
    stats = result.stats
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["windows", result.num_windows],
                ["mean edges per window", float(np.mean(result.edge_count_series()))],
                ["evaluation fraction", stats.evaluation_fraction],
                ["pair-windows skipped", stats.skipped_by_jumping],
                ["pure query seconds", stats.query_seconds],
            ],
            title="Voxel-level dynamic connectivity with Dangoron",
        )
    )

    # ------------------------------------------------ parcellation recovery
    average_network = persistence_graph(result, min_persistence=0.3)
    communities = greedy_communities(average_network)
    ground_truth = {
        series_id: int(label)
        for series_id, label in zip(voxels.series_ids, labels)
    }
    agreement = community_agreement(communities, ground_truth)
    print(
        f"\ncommunities detected in the persistent network: {len(communities)}; "
        f"pair-counting agreement with the ground-truth parcellation: {agreement:.2f}"
    )

    # ------------------------------------------------ region-level contrast
    regions = region_average_matrix(voxels, labels)
    region_query = SlidingQuery(
        start=0, end=regions.length, window=40, step=10, threshold=0.5
    )
    region_result = DangoronEngine(basic_window_size=10).run(regions, region_query)
    print(
        f"\nregion-averaged analysis: {regions.num_series} series, "
        f"{region_result.total_edges()} edges across windows "
        f"(voxel-level analysis found {result.total_edges()}); the voxel-level "
        f"network preserves within-region structure the averaged one cannot see"
    )


if __name__ == "__main__":
    main()
