"""Using Tomborg to benchmark sliding-correlation engines under your own data law.

Tomborg generates time-series matrices whose correlation structure is chosen
by the user and whose spectrum shape is a free knob, so engine robustness can
be measured against an exact, known ground truth.  This example

1. generates piecewise-stationary data (the correlation network changes twice),
2. validates that the generated data reproduces its targets,
3. evaluates Dangoron and the sketch baselines on every segment, and
4. shows the spectrum-robustness gap of DFT truncation (the E10 effect).

Run with::

    python examples/tomborg_benchmark.py
"""

from __future__ import annotations

from repro import BruteForceEngine, DangoronEngine, SlidingQuery
from repro.analysis import compare_results, format_table
from repro.baselines import ParCorrEngine, StatStreamEngine
from repro.tomborg import (
    BimodalCorrelations,
    SegmentSpec,
    TomborgGenerator,
    block_correlation_matrix,
    flat_spectrum,
    peaked_spectrum,
    power_law_spectrum,
    validate_dataset,
)


def main() -> None:
    # ----------------------------------------------------- piecewise dataset
    generator = TomborgGenerator(
        num_series=40, spectrum=power_law_spectrum(1.0), seed=29
    )
    dense = block_correlation_matrix([10] * 4, within=0.85, between=0.15)
    sparse = block_correlation_matrix([10] * 4, within=0.35, between=0.05)
    dataset = generator.generate_piecewise(
        [SegmentSpec(1024, dense), SegmentSpec(1024, sparse), SegmentSpec(1024, dense)]
    )
    checks = validate_dataset(dataset, edge_threshold=0.7)
    print(
        format_table(
            ["segment", "columns", "max |empirical - target|", "edge jaccard"],
            [
                [v.segment_index, v.end - v.start, v.max_abs_error, v.edge_jaccard]
                for v in checks
            ],
            title="Ground-truth validation of the generated data",
        )
    )

    query = SlidingQuery(
        start=0, end=dataset.length, window=256, step=64, threshold=0.7
    )
    exact = BruteForceEngine().run(dataset.matrix, query)
    rows = []
    for engine in (
        DangoronEngine(basic_window_size=64),
        ParCorrEngine(seed=5),
        StatStreamEngine(num_coefficients=8),
    ):
        result = engine.run(dataset.matrix, query)
        report = compare_results(result, exact)
        rows.append(
            [
                engine.describe(),
                result.stats.query_seconds,
                report.precision,
                report.recall,
                report.f1,
            ]
        )
    print()
    print(
        format_table(
            ["engine", "query_s", "precision", "recall", "f1"],
            rows,
            title="Engines on the piecewise Tomborg workload",
        )
    )

    # ------------------------------------------------ spectrum robustness gap
    distribution = BimodalCorrelations(strong_fraction=0.15, strong_center=0.85)
    gap_rows = []
    for name, spectrum in (
        ("peaked", peaked_spectrum(0.03, 0.01)),
        ("power_law", power_law_spectrum(1.0)),
        ("flat", flat_spectrum()),
    ):
        data = TomborgGenerator(num_series=30, spectrum=spectrum, seed=31).generate(
            1024, distribution
        )
        spectrum_query = SlidingQuery(
            start=0, end=1024, window=256, step=128, threshold=0.7
        )
        reference = BruteForceEngine().run(data.matrix, spectrum_query)
        truncated = StatStreamEngine(
            num_coefficients=6, verify=False, candidate_margin=0.0
        ).run(data.matrix, spectrum_query)
        pruned = DangoronEngine(basic_window_size=64).run(data.matrix, spectrum_query)
        gap_rows.append(
            [
                name,
                compare_results(truncated, reference).recall,
                compare_results(pruned, reference).recall,
            ]
        )
    print()
    print(
        format_table(
            ["spectrum", "statstream (6 coeffs) recall", "dangoron recall"],
            gap_rows,
            title="Robustness to spectrum energy concentration (E10)",
        )
    )
    print(
        "\nDFT truncation only holds up when energy concentrates in the kept "
        "coefficients; the exact basic-window sketch is unaffected."
    )


if __name__ == "__main__":
    main()
