"""Climate correlation networks on USCRN-like hourly data (the paper's dataset).

Reproduces, at example scale, the workflow behind the paper's evaluation:

1. generate (or load) a year-like hourly station dataset,
2. remove the climatological cycles so correlations reflect shared weather,
3. answer a sliding correlation query with every engine and compare pure
   query time and accuracy (the E1/E2 story),
4. build the dynamic climate network and report its backbone (edges that
   persist across most windows) and how network density evolves.

Run with::

    python examples/climate_network.py
"""

from __future__ import annotations

from repro import SlidingQuery
from repro.analysis import format_table
from repro.datasets import SyntheticUSCRN
from repro.experiments import run_comparison
from repro.experiments.workloads import Workload
from repro.network import DynamicNetwork, summarize


def main() -> None:
    basic_window = 24  # one day per basic window
    generator = SyntheticUSCRN(
        num_stations=80,
        num_days=90,
        seed=7,
        correlation_length_degrees=10.0,
        regional_strength=4.0,
    )
    anomalies = generator.generate_anomalies()
    print(
        f"stations: {anomalies.num_series}, hours: {anomalies.length} "
        f"({anomalies.length // 24} days)"
    )

    query = SlidingQuery(
        start=0, end=anomalies.length, window=720, step=24, threshold=0.7
    )
    workload = Workload(
        name="climate_example",
        matrix=anomalies,
        query=query,
        basic_window_size=basic_window,
    )

    # ---------------------------------------------------------------- engines
    comparison = run_comparison(workload)
    print()
    print(comparison.table(title="Engine comparison (speedup measured vs TSUBASA)"))

    # ------------------------------------------------------------ the network
    dangoron_result = comparison.results[
        next(k for k in comparison.results if k.startswith("dangoron"))
    ]
    network = DynamicNetwork.from_result(dangoron_result)
    summaries = network.summaries()
    rows = [
        [
            k,
            int(s.num_edges),
            round(s.density, 4),
            int(s.largest_component),
            round(s.clustering, 3),
        ]
        for k, s in enumerate(summaries)
        if k % max(1, len(summaries) // 10) == 0
    ]
    print()
    print(
        format_table(
            ["window", "edges", "density", "largest_component", "clustering"],
            rows,
            title="Dynamic climate network (every ~10th window)",
        )
    )

    backbone = network.backbone(min_persistence=0.6)
    print(
        f"\nbackbone (edges present in >=60% of windows): "
        f"{backbone.number_of_edges()} edges over {backbone.number_of_nodes()} stations"
    )
    strongest = sorted(
        backbone.edges(data=True), key=lambda e: -e[2]["persistence"]
    )[:5]
    for u, v, data in strongest:
        print(f"  {u} -- {v}: persistent in {data['persistence']:.0%} of windows")


if __name__ == "__main__":
    main()
