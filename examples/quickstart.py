"""Quickstart: build a dynamic correlation network over sliding windows.

Generates a small synthetic climate dataset, runs a sliding correlation query
with the Dangoron engine, verifies the answer against brute force, and prints
what the pruning saved.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import BruteForceEngine, DangoronEngine, SlidingQuery
from repro.analysis import compare_results, format_table
from repro.datasets import SyntheticUSCRN
from repro.network import DynamicNetwork


def main() -> None:
    # 1. Data: hourly temperature anomalies for 48 stations over two months.
    #    (Swap in repro.datasets.load_uscrn_hourly(...) for real USCRN files.)
    generator = SyntheticUSCRN(num_stations=48, num_days=60, seed=1)
    data = generator.generate_anomalies()
    print(f"data: {data.num_series} stations x {data.length} hourly observations")

    # 2. Query: 10-day windows sliding one day at a time, keep edges with
    #    correlation >= 0.7 (the paper's threshold semantics).
    query = SlidingQuery(
        start=0, end=data.length, window=240, step=24, threshold=0.7
    )
    print(f"query: {query.describe()}")

    # 3. Run Dangoron (basic windows of one day).
    engine = DangoronEngine(basic_window_size=24)
    result = engine.run(data, query)
    print(f"result: {result.describe()}")

    # 4. Sanity-check against the exact brute-force answer.
    exact = BruteForceEngine().run(data, query)
    report = compare_results(result, exact)
    stats = result.stats
    rows = [
        ["windows", result.num_windows],
        ["edges found", result.total_edges()],
        ["precision vs exact", report.precision],
        ["recall vs exact", report.recall],
        ["pair-windows evaluated", stats.exact_evaluations],
        ["pair-windows skipped by jumping", stats.skipped_by_jumping],
        ["evaluation fraction", stats.evaluation_fraction],
        ["pure query seconds", stats.query_seconds],
        ["sketch build seconds", stats.sketch_build_seconds],
    ]
    print()
    print(format_table(["quantity", "value"], rows, title="Dangoron run summary"))

    # 5. The result is a dynamic network: one graph per window.
    network = DynamicNetwork.from_result(result)
    densest = int(max(range(len(network)), key=lambda k: network[k].number_of_edges()))
    print(
        f"\ndensest window: #{densest} with {network[densest].number_of_edges()} edges; "
        f"mean edge persistence "
        f"{sum(network.edge_persistence().values()) / max(len(network.edge_persistence()), 1):.2f}"
    )


if __name__ == "__main__":
    main()
