"""Quickstart: one session, one query family, one result protocol.

Generates a small synthetic climate dataset, opens a
:class:`~repro.api.CorrelationSession` over it, runs a thresholded sliding
query plus a threshold sweep (one sketch build for all of it), verifies the
answer against brute force, and shows the protocol surface every result type
shares.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import BruteForceEngine, CorrelationSession, ThresholdQuery, TopKQuery
from repro.analysis import compare_results, format_table, summarize_result
from repro.datasets import SyntheticUSCRN
from repro.network import DynamicNetwork, union_graph_from_edges


def main() -> None:
    # 1. Data: hourly temperature anomalies for 48 stations over two months.
    #    (Swap in repro.datasets.load_uscrn_hourly(...) for real USCRN files.)
    generator = SyntheticUSCRN(num_stations=48, num_days=60, seed=1)
    data = generator.generate_anomalies()
    print(f"data: {data.num_series} stations x {data.length} hourly observations")

    # 2. One front door over the data: the session plans every query through a
    #    shared basic-window sketch cache (basic windows of one day).
    session = CorrelationSession(data, basic_window_size=24)

    # 3. Query: 10-day windows sliding one day at a time, keep edges with
    #    correlation >= 0.7 (the paper's threshold semantics).
    query = ThresholdQuery(
        start=0, end=data.length, window=240, step=24, threshold=0.7
    )
    print(f"query: {query.describe()}")
    result = session.run(query)
    print(f"result: {result.describe()}")

    # 4. Sanity-check against the exact brute-force answer (run through the
    #    same session — engines are interchangeable under it).
    exact = session.run_with_engine(BruteForceEngine(), query)
    report = compare_results(result, exact)
    stats = result.stats
    rows = [
        ["windows", result.num_windows],
        ["edges found", result.total_edges()],
        ["precision vs exact", report.precision],
        ["recall vs exact", report.recall],
        ["pair-windows evaluated", stats.exact_evaluations],
        ["pair-windows skipped by jumping", stats.skipped_by_jumping],
        ["evaluation fraction", stats.evaluation_fraction],
        ["pure query seconds", stats.query_seconds],
        ["sketch build seconds", stats.sketch_build_seconds],
    ]
    print()
    print(format_table(["quantity", "value"], rows, title="Dangoron run summary"))

    # 5. A threshold sweep and a top-k query reuse the one sketch the session
    #    already built — watch the cache stats.
    sweep = session.sweep_thresholds(query, [0.5, 0.6, 0.8, 0.9])
    top = session.run(TopKQuery(start=0, end=data.length, window=240, step=24, k=5))
    print(f"\nafter sweep + top-k: {session.describe()}")
    print(f"sketch builds so far: {session.sketch_cache.builds} "
          f"(for {len(sweep) + 2} sketch-backed queries)")
    print()
    print(summarize_result(top, title="top-5 pairs per window"))

    # 6. Every result speaks the same protocol; the network layer consumes it
    #    uniformly.  One persistence-weighted backbone from the top-k result:
    backbone = union_graph_from_edges(top, min_persistence=0.5)
    print(f"\ntop-k backbone: {backbone.number_of_edges()} edges present in "
          f">=50% of windows")

    # 7. The thresholded result is a dynamic network: one graph per window.
    network = DynamicNetwork.from_result(result)
    densest = int(max(range(len(network)), key=lambda k: network[k].number_of_edges()))
    print(
        f"densest window: #{densest} with {network[densest].number_of_edges()} edges; "
        f"mean edge persistence "
        f"{sum(network.edge_persistence().values()) / max(len(network.edge_persistence()), 1):.2f}"
    )


if __name__ == "__main__":
    main()
