"""Stock-market correlation dynamics: crises densify the correlation network.

The finance motivation of correlation-network analysis (Kenett et al. 2010;
Tilfani et al. 2021): during market stress, pairwise return correlations jump
and the thresholded network densifies ("contagion").  This example generates
returns with two crisis periods, tracks the sliding-window network with the
online streaming monitor (as a live system would), and shows that

* edge counts spike inside the crisis windows, and
* the network change-point detector fires at the crisis onsets.

Run with::

    python examples/finance_contagion.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.datasets import SyntheticMarket, crisis_edge_density
from repro.network import DynamicNetwork
from repro.network.builder import graph_from_matrix
from repro.streaming import OnlineCorrelationMonitor


def main() -> None:
    crisis_periods = [(600, 680), (1000, 1060)]
    market = SyntheticMarket(
        num_assets=60,
        num_days=1260,
        num_sectors=6,
        crisis_periods=crisis_periods,
        seed=13,
    )
    returns = market.generate_returns()
    print(
        f"assets: {returns.num_series}, trading days: {returns.length}, "
        f"crisis periods: {crisis_periods}"
    )

    # Six-month windows (126 trading days) sliding by one month (21 days),
    # fed to the online monitor in monthly batches as if data arrived live.
    monitor = OnlineCorrelationMonitor(
        num_series=returns.num_series,
        window=126,
        step=21,
        threshold=0.6,
        basic_window_size=21,
        series_ids=returns.series_ids,
    )
    emitted = []
    for start in range(0, returns.length, 21):
        emitted.extend(monitor.append(returns.values[:, start : start + 21]))
    print(f"windows emitted by the streaming monitor: {len(emitted)}")

    edge_counts = np.array([r.matrix.num_edges for r in emitted])
    window_starts = np.array([r.start for r in emitted])
    crisis_mean, calm_mean = crisis_edge_density(
        edge_counts, window_starts + 126, crisis_periods
    )
    print()
    print(
        format_table(
            ["regime", "mean edges per window"],
            [["crisis windows", crisis_mean], ["calm windows", calm_mean]],
            title="Network density by regime",
        )
    )
    if calm_mean > 0:
        print(f"densification factor during crises: {crisis_mean / calm_mean:.1f}x")

    # Change points from consecutive-window edge overlap.
    graphs = [
        graph_from_matrix(r.matrix, series_ids=returns.series_ids) for r in emitted
    ]
    network = DynamicNetwork(graphs, window_starts=window_starts)
    changes = network.change_points(max_jaccard=0.35)
    print("\nchange points (low edge overlap with the previous window):")
    for change in changes:
        window_end = int(window_starts[change.window_index]) + 126
        print(
            f"  window ending day {window_end}: jaccard {change.jaccard:.2f}"
        )
    print(
        "compare with crisis onsets at days "
        + ", ".join(str(start) for start, _ in crisis_periods)
    )


if __name__ == "__main__":
    main()
