"""Exploratory queries beyond a fixed threshold: top-k pairs and lead-lag edges.

Uses climate anomalies to show the query family beyond ``ThresholdQuery``:
(1) :class:`TopKQuery` — the k most correlated station pairs per window, and
the data-driven threshold they suggest for a subsequent pruned run — and
(2) :class:`LaggedQuery` — station pairs whose weather is correlated at a
time offset (one station "leads" the other as systems move across the map).
All three run through one :class:`CorrelationSession`, so the top-k query and
the tuned threshold query share a single sketch build.

Run with::

    python examples/topk_lag_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import CorrelationSession, LaggedQuery, ThresholdQuery, TopKQuery
from repro.analysis import format_table, significance_threshold
from repro.core.lag import lead_lag_graph_edges
from repro.datasets import SyntheticUSCRN


def main() -> None:
    # 1. Hourly temperature anomalies for 40 stations over two months, plus one
    #    "downwind" station whose weather is station 0's delayed by six hours —
    #    the kind of propagation the lead-lag query is meant to surface.
    generator = SyntheticUSCRN(num_stations=40, num_days=60, seed=21)
    base = generator.generate_anomalies()
    rng = np.random.default_rng(21)
    downwind = np.roll(base.values[0], 6) + 0.3 * rng.standard_normal(base.length)
    data = type(base)(
        np.vstack([base.values, downwind]),
        series_ids=base.series_ids + ["USCRN-DOWNWIND"],
        time_axis=base.time_axis,
    )
    stations = {i: s for i, s in enumerate(data.series_ids)}
    session = CorrelationSession(data, basic_window_size=24)
    print(f"data: {data.num_series} stations x {data.length} hours")

    # 2. Top-k: the 10 most correlated pairs of every 10-day window.
    topk_query = TopKQuery(start=0, end=data.length, window=240, step=48, k=10)
    topk = session.run(topk_query)
    suggested = topk.suggested_threshold()
    persistent = topk.persistent_pairs(min_fraction=0.75)
    significance = significance_threshold(
        topk_query.window, alpha=0.01,
        num_comparisons=data.num_series * (data.num_series - 1) // 2,
    )
    rows = [
        ["windows", topk.num_windows],
        ["suggested threshold (min of per-window k-th values)", suggested],
        ["significance floor (alpha=0.01, Bonferroni)", significance],
        ["pairs in the top 10 of >= 75% of windows", len(persistent)],
    ]
    print()
    print(format_table(["quantity", "value"], rows, title="top-k exploration"))
    print("most persistent top-10 pairs:")
    for i, j in persistent[:5]:
        print(f"  {stations[i]} -- {stations[j]}")

    # 3. Use the suggested threshold to drive a pruned Dangoron run — the
    #    session reuses the sketch the top-k query already built.
    tuned_query = ThresholdQuery(
        start=0, end=data.length, window=240, step=48,
        threshold=max(suggested, significance),
    )
    result = session.run(tuned_query)
    print(
        f"\nDangoron at the data-driven threshold {tuned_query.threshold:.3f}: "
        f"{result.total_edges()} edges, evaluation fraction "
        f"{result.stats.evaluation_fraction:.2f} "
        f"(sketch builds so far: {session.sketch_cache.builds})"
    )

    # 4. Lead-lag analysis: correlations at offsets up to 24 hours.  The lagged
    #    result speaks the same protocol — its edges carry the best lag.
    lag_query = LaggedQuery(
        start=0, end=data.length, window=240, step=120,
        threshold=0.6, max_lag=24,
    )
    lagged = session.run(lag_query)
    relations = lead_lag_graph_edges(
        lagged.windows, threshold=0.6, min_persistence=0.5
    )
    lagged_only = [r for r in relations if abs(r[3]) >= 3.0]
    print(
        f"\nlead-lag relations above 0.6 in at least half the windows: {len(relations)} "
        f"({len(lagged_only)} with a mean lead of 3+ hours)"
    )
    for i, j, corr, lag in sorted(lagged_only, key=lambda r: -abs(r[3]))[:5]:
        leader, follower = (stations[i], stations[j]) if lag > 0 else (stations[j], stations[i])
        print(
            f"  {leader} leads {follower} by {abs(lag):.1f} hours "
            f"(mean correlation {corr:.2f})"
        )


if __name__ == "__main__":
    main()
