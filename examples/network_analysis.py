"""Downstream network analysis: communities, blinking links, features, embeddings.

Builds a dynamic correlation network over fMRI-like BOLD data, recovers the
ground-truth regions as communities, finds the "blinking" edges that flicker
between windows (the climate-network signature of reference [3]), and extracts
the per-node features and spectral embeddings the paper's motivation section
describes as the follow-on step after network construction.

Run with::

    python examples/network_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import DangoronEngine, SlidingQuery
from repro.analysis import format_table
from repro.datasets import SyntheticBOLD
from repro.network import (
    DynamicNetwork,
    blinking_links,
    connectivity_fingerprints,
    consensus_communities,
    detect_communities_over_time,
    embedding_series,
    feature_series,
)


def main() -> None:
    # 1. Voxel-level BOLD data with known region structure.
    generator = SyntheticBOLD(grid_shape=(6, 6, 4), num_regions=8, num_volumes=600, seed=9)
    data, region_labels = generator.generate()
    print(
        f"data: {data.num_series} voxels x {data.length} volumes, "
        f"{len(set(int(r) for r in region_labels))} ground-truth regions"
    )

    # 2. Dynamic functional connectivity: 60-volume windows, step 10.
    query = SlidingQuery(start=0, end=data.length, window=60, step=10, threshold=0.6)
    result = DangoronEngine(basic_window_size=10).run(data, query)
    network = DynamicNetwork.from_result(result)
    print(f"network: {network.num_windows} windows, "
          f"{int(network.edge_count_series().mean())} edges per window on average")

    # 3. Communities per window and their agreement with the ground truth regions.
    timeline = detect_communities_over_time(network)
    labels = {sid: int(region) for sid, region in zip(data.series_ids, region_labels)}
    from repro.network import community_agreement

    agreements = [
        community_agreement(partition, labels) for partition in timeline.partitions
    ]
    consensus = consensus_communities(network, min_persistence=0.6)
    rows = [
        ["mean communities per window", float(np.mean(timeline.num_communities()))],
        ["mean agreement with regions", float(np.mean(agreements))],
        ["consensus communities", len(consensus)],
        ["community stability (mean Rand)", float(np.mean(timeline.stability_series()))],
    ]
    print()
    print(format_table(["quantity", "value"], rows, title="community structure"))

    # 4. Blinking links: edges that flip on and off across windows.
    blinking = blinking_links(network, min_transitions=4)
    print(f"\nblinking links (>= 4 on/off transitions): {len(blinking)}")
    for edge, flips in blinking[:5]:
        print(f"  {edge[0]} -- {edge[1]}: {flips} transitions")

    # 5. Feature extraction and embedding (the motivation's follow-on step).
    features = feature_series(network)
    embeddings = embedding_series(network, dim=2)
    fingerprints = connectivity_fingerprints(result)
    hub = max(
        features.nodes,
        key=lambda node: features.node_series(node, "degree").mean(),
    )
    print(
        f"\nfeature series: {features.values.shape} (windows x nodes x features); "
        f"most connected voxel on average: {hub}"
    )
    print(
        f"spectral embeddings: {len(embeddings)} windows of shape {embeddings[0].shape}; "
        f"connectivity fingerprints: {fingerprints.shape} (windows x pairs)"
    )


if __name__ == "__main__":
    main()
