"""Live network monitoring: stream data in, get alerts when the network changes.

Simulates a market feed whose assets decorrelate and then snap into a crisis
regime, feeds it column-by-column into the online correlation monitor, and
prints the alerts the change monitor raises (edges appearing/disappearing,
whole-network shifts, density jumps) as they happen.  The last section shows
the same push-based answer through the unified front door —
``CorrelationSession.stream(query)`` — and checks it against the batch run of
the identical query.

Run with::

    python examples/streaming_monitor.py
"""

from __future__ import annotations

import numpy as np

from repro import CorrelationSession, ThresholdQuery
from repro.analysis import format_table
from repro.datasets import SyntheticMarket
from repro.streaming import (
    ALERT_DENSITY_JUMP,
    ALERT_EDGE_APPEARED,
    ALERT_EDGE_DROPPED,
    ALERT_NETWORK_SHIFT,
    NetworkChangeMonitor,
    OnlineCorrelationMonitor,
)


def main() -> None:
    # 1. A market with two crisis periods, during which correlations spike.
    generator = SyntheticMarket(
        num_assets=24,
        num_days=1260,
        crisis_periods=[(500, 580), (900, 960)],
        seed=11,
    )
    returns = generator.generate_returns()
    print(
        f"stream: {returns.num_series} assets, {returns.length} trading days, "
        f"crises at {generator.crisis_periods}"
    )

    # 2. Online monitor: 63-day (quarter) windows sliding 21 days (one month),
    #    with alerting on top.
    online = OnlineCorrelationMonitor(
        num_series=returns.num_series,
        window=63,
        step=21,
        threshold=0.5,
        basic_window_size=21,
        series_ids=returns.series_ids,
    )
    monitor = NetworkChangeMonitor(
        monitor=online, min_jaccard=0.4, max_density_change=0.15
    )

    # 3. Feed the stream in monthly batches, reporting alerts as they arrive.
    batch = 21
    for start in range(0, returns.length, batch):
        columns = returns.values[:, start : start + batch]
        for alert in monitor.append(columns):
            print(f"  window {alert.window_index:3d}  {alert.kind:16s} {alert.message}")

    # 4. Summarize what the monitor saw.
    rows = [
        ["windows emitted", online.emitted_windows],
        ["edges in final window", monitor.edge_count_history[-1]],
        ["max edges in any window", max(monitor.edge_count_history)],
        ["edge-appeared alerts", len(monitor.alerts_of_kind(ALERT_EDGE_APPEARED))],
        ["edge-dropped alerts", len(monitor.alerts_of_kind(ALERT_EDGE_DROPPED))],
        ["network-shift alerts", len(monitor.alerts_of_kind(ALERT_NETWORK_SHIFT))],
        ["density-jump alerts", len(monitor.alerts_of_kind(ALERT_DENSITY_JUMP))],
    ]
    print()
    print(format_table(["quantity", "value"], rows, title="streaming monitor summary"))

    # 5. The crisis periods should show up as density spikes.
    counts = np.array(monitor.edge_count_history)
    spike_windows = np.argsort(counts)[-3:]
    print(
        "\nwindows with the densest networks (crisis regimes): "
        + ", ".join(f"#{int(w)} ({int(counts[w])} edges)" for w in sorted(spike_windows))
    )

    # 6. The same push-based view through the unified front door: a session
    #    streams any signed threshold query window-by-window, and the emitted
    #    networks match a batch run of the identical query.
    session = CorrelationSession(returns, basic_window_size=21)
    query = ThresholdQuery(
        start=0, end=(returns.length // 21) * 21, window=63, step=21, threshold=0.5
    )
    streamed = list(session.stream(query, chunk_columns=21))
    batch = session.run(query)
    agree = sum(
        emitted.matrix.edge_set() == window.edge_set()
        for emitted, window in zip(streamed, batch.matrices)
    )
    print(
        f"\nsession.stream vs session.run on {query.describe()}: "
        f"{agree}/{len(streamed)} windows with identical edge sets"
    )


if __name__ == "__main__":
    main()
