"""Sharded parallel execution over the series-pair space.

The paper's sliding-window correlation problem is O(n²) in the number of
series but embarrassingly parallel across *pairs*: with temporal pruning,
each pair's evaluation schedule depends only on its own correlation
trajectory.  This package exploits that:

:mod:`repro.parallel.partition`
    Splits the canonical pair enumeration into contiguous blocks.
:mod:`repro.parallel.executor`
    Runs a shardable engine (Dangoron, TSUBASA) once per block across a
    process pool — threads for small inputs — sharing one basic-window
    sketch build.
:mod:`repro.parallel.merge`
    Recombines per-block results into a result bit-identical to the serial
    run, for any partition of the pair space.

The usual entry point is not this package but ``workers=N`` on
:class:`repro.api.CorrelationSession` (or ``--workers`` on the CLI): the
query planner decides serial vs sharded execution from the pair count and
routes through :class:`ShardedExecutor` automatically.
"""

from repro.parallel.executor import (
    MODE_AUTO,
    MODE_PROCESS,
    MODE_SERIAL,
    MODE_THREAD,
    ShardedExecutor,
    available_workers,
)
from repro.parallel.merge import merge_shard_results, merge_shard_stats
from repro.parallel.partition import (
    PairBlock,
    pair_count,
    pair_slice,
    partition_pairs,
)

__all__ = [
    "MODE_AUTO",
    "MODE_PROCESS",
    "MODE_SERIAL",
    "MODE_THREAD",
    "PairBlock",
    "ShardedExecutor",
    "available_workers",
    "merge_shard_results",
    "merge_shard_stats",
    "pair_count",
    "pair_slice",
    "partition_pairs",
]
