"""Sharded parallel execution of pairwise correlation engines.

:class:`ShardedExecutor` splits the pair space into contiguous blocks
(:mod:`repro.parallel.partition`), runs the engine once per block — each run
restricted to its block via the engine's ``pairs=(rows, cols)`` keyword — and
merges the per-block results back into one
:class:`~repro.core.result.CorrelationSeriesResult`
(:mod:`repro.parallel.merge`).  Because shardable engines answer a pair
subset exactly as their full run would, the merged result is **bit-identical
to the serial run** for any worker count.

Execution modes
---------------
``process``
    A ``ProcessPoolExecutor``; the matrix, query, engine and (shared) sketch
    are shipped to each worker once through the pool initializer, and tasks
    carry only two integers (the block bounds).  This is the mode that scales
    with cores — the per-window recombination work is Python/NumPy code that
    holds the GIL for most of its time.
``thread``
    A ``ThreadPoolExecutor`` sharing the sketch in memory.  The fallback for
    small inputs (no fork/pickle cost) and for environments where process
    pools are unavailable; NumPy releases the GIL in large kernels, so big
    windows still overlap somewhat.
``auto``
    Picks ``process`` when the total pair-window count crosses
    :data:`~repro.config.DEFAULT_PROCESS_MIN_PAIR_WINDOWS`, else ``thread``.
``serial``
    Runs the engine unsharded (used by ``workers=1`` and as the planner's
    default); returns exactly what ``engine.run`` returns.

One sketch, many shards: when no prebuilt sketch is passed, the executor
builds the engine's planned layout once and hands the same sketch to every
shard — sharding never multiplies the γ·N² sketch-build cost.

The engine-less query families ride the same partition/merge machinery:
:meth:`ShardedExecutor.run_topk` merges per-shard top-k candidates to the
exact global answer, and :meth:`ShardedExecutor.run_lagged` scatters
per-shard lagged pair blocks back into dense matrices — both bit-identical
to their serial counterparts, including the streamed (``memory_budget``)
lagged path, which fans each buffered window's pair blocks across threads.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Sequence, Tuple

from repro.config import (
    DEFAULT_BASIC_WINDOW_SIZE,
    DEFAULT_PROCESS_MIN_PAIR_WINDOWS,
    DEFAULT_SHARDS_PER_WORKER,
)
from repro.core.basic_window import BasicWindowLayout
from repro.core.engine import SlidingCorrelationEngine, accepts_sketch_kwarg
from repro.core.lag import (
    LagMatrices,
    LagPairs,
    iter_query_windows,
    lagged_pair_stats,
    sliding_lagged_correlation,
    sliding_lagged_pairs,
)
from repro.core.query import THRESHOLD_ABSOLUTE, SlidingQuery
from repro.core.result import CorrelationSeriesResult
from repro.core.sketch import BasicWindowSketch
from repro.core.topk import TopKResult, sliding_top_k
from repro.exceptions import ParallelError
from repro.parallel.merge import (
    merge_lagged_results,
    merge_shard_results,
    merge_topk_results,
)
from repro.parallel.partition import (
    PairBlock,
    pair_count,
    pair_slice,
    partition_pairs,
)
from repro.timeseries.matrix import TimeSeriesMatrix

#: Execution mode names accepted by :class:`ShardedExecutor`.
MODE_AUTO = "auto"
MODE_THREAD = "thread"
MODE_PROCESS = "process"
MODE_SERIAL = "serial"

_MODES = (MODE_AUTO, MODE_THREAD, MODE_PROCESS, MODE_SERIAL)


def available_workers() -> int:
    """Number of CPUs this process may use (affinity-aware, at least 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# Process-pool plumbing.  The heavy objects travel once per worker through the
# initializer; each task is just the (start, stop) bounds of its pair block.
# ---------------------------------------------------------------------------

class _ProcessPoolUnavailable(Exception):
    """Internal: the pool infrastructure (fork, semaphores, pickling) failed.

    Distinguishes environment problems — which degrade to the thread pool —
    from real errors raised by the engine inside a worker, which propagate.
    """


_WORKER_CONTEXT: Optional[Tuple[SlidingCorrelationEngine, TimeSeriesMatrix,
                                SlidingQuery, Optional[BasicWindowSketch]]] = None


def _init_shard_worker(engine, matrix, query, sketch) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = (engine, matrix, query, sketch)


def _run_shard(bounds: Tuple[int, int]) -> CorrelationSeriesResult:
    engine, matrix, query, sketch = _WORKER_CONTEXT
    pairs = pair_slice(matrix.num_series, bounds[0], bounds[1])
    kwargs = {"pairs": pairs}
    if sketch is not None:
        kwargs["sketch"] = sketch
    return engine.run(matrix, query, **kwargs)


# The engine-less query families (top-k, lagged) share the same shape of
# plumbing, but their payloads differ; tasks are dispatched by kind so one
# initializer/worker pair serves both.

_TASK_CONTEXT: Optional[Tuple[str, tuple]] = None


def _init_task_worker(kind: str, payload: tuple) -> None:
    global _TASK_CONTEXT
    _TASK_CONTEXT = (kind, payload)


def _run_task_for(kind: str, payload: tuple, bounds: Tuple[int, int]):
    """Run one pair block of an engine-less task (thread and process entry)."""
    if kind == "topk":
        matrix, query, k, basic_window_size, absolute, sketch = payload
        pairs = pair_slice(matrix.num_series, bounds[0], bounds[1])
        return sliding_top_k(
            matrix,
            query,
            k,
            basic_window_size=basic_window_size,
            absolute=absolute,
            sketch=sketch,
            pairs=pairs,
        )
    matrix, query, max_lag, absolute = payload
    rows, cols = pair_slice(matrix.num_series, bounds[0], bounds[1])
    return sliding_lagged_pairs(matrix, query, max_lag, rows, cols, absolute=absolute)


def _run_task(bounds: Tuple[int, int]):
    kind, payload = _TASK_CONTEXT
    return _run_task_for(kind, payload, bounds)


class ShardedExecutor:
    """Runs one engine over a partitioned pair space with a pool of workers.

    Parameters
    ----------
    workers:
        Number of pool workers.  ``1`` always executes serially.
    mode:
        ``"auto"`` (default), ``"process"``, ``"thread"`` or ``"serial"``.
    num_shards:
        Number of pair blocks; defaults to ``workers *``
        :data:`~repro.config.DEFAULT_SHARDS_PER_WORKER` so uneven pruning
        across blocks still keeps every worker busy.
    process_min_pair_windows:
        ``auto``-mode cutover: total pair-windows below this use threads.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.dangoron import DangoronEngine
    >>> from repro.core.query import SlidingQuery
    >>> from repro.parallel import ShardedExecutor
    >>> from repro.timeseries.matrix import TimeSeriesMatrix
    >>> rng = np.random.default_rng(3)
    >>> matrix = TimeSeriesMatrix(rng.standard_normal((12, 256)))
    >>> query = SlidingQuery(start=0, end=256, window=64, step=32, threshold=0.2)
    >>> engine = DangoronEngine(basic_window_size=16)
    >>> executor = ShardedExecutor(workers=2, mode="thread")
    >>> sharded = executor.run(engine, matrix, query)
    >>> serial = engine.run(matrix, query)
    >>> all(np.array_equal(a.values, b.values)
    ...     for a, b in zip(sharded.matrices, serial.matrices))
    True
    """

    def __init__(
        self,
        workers: int,
        mode: str = MODE_AUTO,
        num_shards: Optional[int] = None,
        shards_per_worker: int = DEFAULT_SHARDS_PER_WORKER,
        process_min_pair_windows: int = DEFAULT_PROCESS_MIN_PAIR_WINDOWS,
    ) -> None:
        if workers < 1:
            raise ParallelError(f"workers must be at least 1, got {workers}")
        if mode not in _MODES:
            raise ParallelError(f"mode must be one of {_MODES}, got {mode!r}")
        if num_shards is not None and num_shards < 1:
            raise ParallelError(f"num_shards must be at least 1, got {num_shards}")
        if shards_per_worker < 1:
            raise ParallelError(
                f"shards_per_worker must be at least 1, got {shards_per_worker}"
            )
        self.workers = workers
        self.mode = mode
        self.num_shards = num_shards
        self.shards_per_worker = shards_per_worker
        self.process_min_pair_windows = process_min_pair_windows

    # ------------------------------------------------------------------ plan
    def resolve_mode(self, num_pairs: int, num_windows: int) -> str:
        """The concrete mode ``run`` will use for a given problem size."""
        if self.mode != MODE_AUTO:
            return self.mode
        if self.workers == 1 or num_pairs < 2:
            return MODE_SERIAL
        if num_pairs * num_windows >= self.process_min_pair_windows:
            return MODE_PROCESS
        return MODE_THREAD

    def describe(self) -> str:
        shards = self.num_shards or self.workers * self.shards_per_worker
        return f"sharded[{self.mode} x{self.workers} workers, {shards} shards]"

    # ------------------------------------------------------------------- run
    def run(
        self,
        engine: SlidingCorrelationEngine,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        sketch: Optional[BasicWindowSketch] = None,
    ) -> CorrelationSeriesResult:
        """Answer the query with the engine, sharded across the pair space.

        The result is bit-identical to ``engine.run(matrix, query)`` — same
        edges, same values, same per-window ordering — with work counters
        summed across shards and wall-clock ``query_seconds``.
        """
        query.validate_against_length(matrix.length)
        n = matrix.num_series
        total_pairs = pair_count(n)
        mode = self.resolve_mode(total_pairs, query.num_windows)
        if mode != MODE_SERIAL and not engine.supports_pair_subset():
            raise ParallelError(
                f"engine {engine.describe()!r} does not support pair subsets "
                f"and cannot be sharded; run it serially instead"
            )

        if mode != MODE_SERIAL and not accepts_sketch_kwarg(engine):
            # A shardable engine without the sketch keyword cannot share a
            # prebuilt sketch; run it sketch-less rather than exploding with
            # a TypeError inside a pool worker.
            sketch = None
        elif sketch is None and mode != MODE_SERIAL:
            layout = engine.plan_layout(query)
            if layout is not None:
                # One shared build instead of one per shard.
                sketch = BasicWindowSketch.build(
                    matrix.values,  # repro-lint: disable=RPR002 -- shared dense build is the explicit non-tiled fallback; tiled callers pass a prebuilt sketch
                    layout,
                )

        if mode == MODE_SERIAL:
            if sketch is not None:
                return engine.run(matrix, query, sketch=sketch)
            return engine.run(matrix, query)

        num_shards = self.num_shards or self.workers * self.shards_per_worker
        blocks = partition_pairs(n, num_shards)
        if len(blocks) < 2:
            if sketch is not None:
                return engine.run(matrix, query, sketch=sketch)
            return engine.run(matrix, query)

        if (
            sketch is not None
            and sketch.has_pairwise
            and getattr(engine, "use_temporal_pruning", False)
        ):
            # Materialize the lazy Eq. 2 prefix once before fan-out: thread
            # shards would otherwise each build a copy in a benign race, and
            # forked process workers would each build a private one instead
            # of inheriting it copy-on-write.  Engines that never read it
            # (TSUBASA) skip the cost entirely.
            sketch.corr_prefix

        fallback_from_process = False
        wall_start = time.perf_counter()
        if mode == MODE_PROCESS:
            try:
                shard_results = self._run_process_pool(
                    engine, matrix, query, sketch, blocks
                )
            except (_ProcessPoolUnavailable, BrokenProcessPool):
                # Sandboxes without fork/semaphores, unpicklable custom
                # engines, or workers killed by the environment: degrade to
                # threads rather than failing the query.  Errors raised *by
                # the engine* inside a worker propagate normally.
                fallback_from_process = True
                mode = MODE_THREAD
                wall_start = time.perf_counter()
                shard_results = self._run_thread_pool(
                    engine, matrix, query, sketch, blocks
                )
        else:
            shard_results = self._run_thread_pool(
                engine, matrix, query, sketch, blocks
            )
        wall_seconds = time.perf_counter() - wall_start

        merged = merge_shard_results(
            query,
            shard_results,
            series_ids=matrix.series_ids,
            engine_label=engine.describe(),
        )
        merged.stats.extra["parallel_shard_seconds_total"] = (
            merged.stats.query_seconds
        )
        merged.stats.query_seconds = wall_seconds
        if sketch is not None:
            merged.stats.sketch_build_seconds = sketch.build_seconds
        merged.stats.extra["parallel_workers"] = float(self.workers)
        merged.stats.extra["parallel_shards"] = float(len(blocks))
        merged.stats.extra["parallel_mode_process"] = float(mode == MODE_PROCESS)
        if fallback_from_process:
            merged.stats.extra["parallel_fallback_thread"] = 1.0
        return merged

    # -------------------------------------------------------------- run_topk
    def run_topk(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        k: int,
        basic_window_size: int = DEFAULT_BASIC_WINDOW_SIZE,
        absolute: Optional[bool] = None,
        sketch: Optional[BasicWindowSketch] = None,
    ) -> TopKResult:
        """Top-k per window, sharded across the pair space.

        Each shard reports its local top k over its pair block; because the
        selection order is a total order (rank descending, then canonical
        pair — :func:`repro.core.topk.select_top_k`), re-ranking the union
        of shard candidates yields the **exact** global top k, bit-identical
        to ``sliding_top_k(matrix, query, k)`` for any worker count.
        """
        query.validate_against_length(matrix.length)
        if absolute is None:
            absolute = query.threshold_mode == THRESHOLD_ABSOLUTE
        n = matrix.num_series
        mode = self.resolve_mode(pair_count(n), query.num_windows)
        num_shards = self.num_shards or self.workers * self.shards_per_worker
        blocks = partition_pairs(n, num_shards) if mode != MODE_SERIAL else []
        if mode == MODE_SERIAL or len(blocks) < 2:
            return sliding_top_k(
                matrix,
                query,
                k,
                basic_window_size=basic_window_size,
                absolute=absolute,
                sketch=sketch,
            )
        if sketch is None:
            layout = BasicWindowLayout.for_query(query, basic_window_size)
            # One shared build instead of one per shard.
            sketch = BasicWindowSketch.build(
                matrix.values,  # repro-lint: disable=RPR002 -- shared dense build is the explicit non-tiled fallback; tiled callers pass a prebuilt sketch
                layout,
            )
        shard_results = self._map_pair_blocks(
            mode, "topk", (matrix, query, k, basic_window_size, absolute, sketch),
            blocks,
        )
        return merge_topk_results(query, k, absolute, shard_results)

    # ------------------------------------------------------------ run_lagged
    def run_lagged(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        max_lag: int,
        absolute: Optional[bool] = None,
        memory_budget: Optional[int] = None,
    ) -> List[LagMatrices]:
        """Lagged correlations per window, sharded across the pair space.

        Every strategy reduces through the same per-pair primitive
        (:func:`repro.core.lag.lagged_pair_stats`), so scattering the
        shards' pair blocks back into dense matrices is bit-identical to
        ``sliding_lagged_correlation(matrix, query, max_lag)``.

        With ``memory_budget`` set the run streams: windows are assembled
        from the matrix's column-chunk source into one shared rolling
        buffer, and the pair blocks of each window fan out across a
        *thread* pool (window-major order, with a barrier before the buffer
        advances) — forked process workers could not share the buffer.
        """
        query.validate_against_length(matrix.length)
        if absolute is None:
            absolute = query.threshold_mode == THRESHOLD_ABSOLUTE
        n = matrix.num_series
        mode = self.resolve_mode(pair_count(n), query.num_windows)
        num_shards = self.num_shards or self.workers * self.shards_per_worker
        blocks = partition_pairs(n, num_shards) if mode != MODE_SERIAL else []
        if mode == MODE_SERIAL or len(blocks) < 2:
            return sliding_lagged_correlation(
                matrix, query, max_lag, absolute=absolute,
                memory_budget=memory_budget,
            )
        if memory_budget is not None:
            shard_windows = self._run_lagged_streamed(
                matrix, query, max_lag, absolute, memory_budget, blocks
            )
        else:
            shard_windows = self._map_pair_blocks(
                mode, "lagged", (matrix, query, max_lag, absolute), blocks
            )
        return merge_lagged_results(query, n, shard_windows)

    def _run_lagged_streamed(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        max_lag: int,
        absolute: bool,
        memory_budget: int,
        blocks: Sequence[PairBlock],
    ) -> List[List[LagPairs]]:
        """One streaming pass, pair blocks fanned out per window (threads).

        The per-window barrier (collecting every block's future before the
        iterator advances) is required for correctness: the rolling buffer
        is reused between windows, so no task may straddle the shift.
        """
        shard_windows: List[List[LagPairs]] = [[] for _ in blocks]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            for index, values in iter_query_windows(
                matrix, query, memory_budget=memory_budget
            ):
                futures = [
                    pool.submit(
                        lagged_pair_stats,
                        values,
                        max_lag,
                        block.rows,
                        block.cols,
                        absolute,
                        index,
                    )
                    for block in blocks
                ]
                for per_shard, future in zip(shard_windows, futures):
                    per_shard.append(future.result())
        return shard_windows

    def _map_pair_blocks(
        self, mode: str, kind: str, payload: tuple, blocks: Sequence[PairBlock]
    ) -> list:
        """Fan an engine-less task out over pair blocks (pool per ``mode``).

        Mirrors :meth:`run`'s degradation contract: infrastructure failures
        of the process pool fall back to threads, errors raised by the task
        itself propagate.
        """
        if mode == MODE_PROCESS:
            try:
                return self._run_task_process_pool(kind, payload, blocks)
            except (_ProcessPoolUnavailable, BrokenProcessPool):
                pass
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(_run_task_for, kind, payload, (block.start, block.stop))
                for block in blocks
            ]
            return [future.result() for future in futures]

    def _run_task_process_pool(
        self, kind: str, payload: tuple, blocks: Sequence[PairBlock]
    ) -> list:
        try:
            pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._process_context(),
                initializer=_init_task_worker,
                initargs=(kind, payload),
            )
        except (OSError, ValueError, ImportError) as error:
            raise _ProcessPoolUnavailable(str(error)) from error
        with pool:
            try:
                futures = [
                    pool.submit(_run_task, (block.start, block.stop))
                    for block in blocks
                ]
            except (OSError, pickle.PicklingError, TypeError) as error:
                raise _ProcessPoolUnavailable(str(error)) from error
            return [future.result() for future in futures]

    # ------------------------------------------------------------- internals
    def _run_thread_pool(
        self,
        engine: SlidingCorrelationEngine,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        sketch: Optional[BasicWindowSketch],
        blocks: Sequence[PairBlock],
    ) -> List[CorrelationSeriesResult]:
        kwargs = {} if sketch is None else {"sketch": sketch}
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(
                    engine.run, matrix, query,
                    pairs=(block.rows, block.cols), **kwargs,
                )
                for block in blocks
            ]
            return [future.result() for future in futures]

    @staticmethod
    def _process_context():
        """The multiprocessing context for shard pools.

        Prefers ``fork`` where available: the workers then inherit the
        matrix and the shared sketch through copy-on-write memory instead of
        pickling them, which keeps pool startup cost flat in the data size.
        """
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context()

    def _run_process_pool(
        self,
        engine: SlidingCorrelationEngine,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        sketch: Optional[BasicWindowSketch],
        blocks: Sequence[PairBlock],
    ) -> List[CorrelationSeriesResult]:
        # Pool creation and submission touch only infrastructure (fork,
        # semaphores, task pickling); failures there mean "no process pool in
        # this environment" and are translated for the thread fallback.
        # future.result() re-raises whatever the *engine* raised in the
        # worker, which must propagate untranslated.
        try:
            pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._process_context(),
                initializer=_init_shard_worker,
                initargs=(engine, matrix, query, sketch),
            )
        except (OSError, ValueError, ImportError) as error:
            raise _ProcessPoolUnavailable(str(error)) from error
        with pool:
            try:
                futures = [
                    pool.submit(_run_shard, (block.start, block.stop))
                    for block in blocks
                ]
            except (OSError, pickle.PicklingError, TypeError) as error:
                raise _ProcessPoolUnavailable(str(error)) from error
            return [future.result() for future in futures]
