"""Partitioning the series-pair space into blocks for sharded execution.

The O(n²) pair space is the natural scale-out axis of every pairwise
correlation engine (TSUBASA's distributed mode and the ParCorr system both
shard this way): each pair's sliding-window answer is independent of every
other pair's, so any partition of the strict upper triangle can be computed
by independent workers and merged back.

Pairs are enumerated in the *canonical order* of ``np.triu_indices(n, k=1)``
— row-major over the strict upper triangle, i.e. lexicographic in ``(i, j)``.
A :class:`PairBlock` is a contiguous slice ``[start, stop)`` of that
enumeration; :func:`partition_pairs` splits the full space into nearly equal
contiguous blocks.  Contiguity is what makes merging trivially deterministic:
concatenating per-block results in block order reproduces the serial
emission order exactly (see :mod:`repro.parallel.merge`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.config import INDEX_DTYPE
from repro.exceptions import ParallelError


def pair_count(num_series: int) -> int:
    """Number of pairs in the strict upper triangle: ``n * (n - 1) / 2``."""
    if num_series < 0:
        raise ParallelError(f"num_series must be non-negative, got {num_series}")
    return num_series * (num_series - 1) // 2


@dataclass(frozen=True)
class PairBlock:
    """One contiguous slice of the canonical pair enumeration.

    ``start``/``stop`` index into the flat ``np.triu_indices(n, k=1)``
    ordering; ``rows``/``cols`` are the materialized pair index arrays of the
    slice.  Blocks sort by ``start``, which is also their merge order.
    """

    index: int
    start: int
    stop: int
    rows: np.ndarray
    cols: np.ndarray

    @property
    def num_pairs(self) -> int:
        return self.stop - self.start

    def describe(self) -> str:
        return f"block[{self.index}] pairs [{self.start}, {self.stop})"


def pair_slice(num_series: int, start: int, stop: int) -> Tuple[np.ndarray, np.ndarray]:
    """The ``(rows, cols)`` arrays of canonical pairs ``[start, stop)``.

    Used by process workers to rematerialize their block from two integers
    instead of shipping index arrays through the task queue.
    """
    total = pair_count(num_series)
    if not 0 <= start <= stop <= total:
        raise ParallelError(
            f"pair slice [{start}, {stop}) outside [0, {total}) for "
            f"{num_series} series"
        )
    rows, cols = np.triu_indices(num_series, k=1)
    return (
        rows[start:stop].astype(INDEX_DTYPE, copy=False),
        cols[start:stop].astype(INDEX_DTYPE, copy=False),
    )


def partition_pairs(num_series: int, num_blocks: int) -> List[PairBlock]:
    """Split the pair space of ``num_series`` series into contiguous blocks.

    Block sizes differ by at most one pair (``np.array_split`` semantics).
    ``num_blocks`` is clamped to the number of pairs, so tiny inputs never
    produce empty blocks; at least one block is always returned (possibly
    empty when there are fewer than two series).
    """
    if num_blocks < 1:
        raise ParallelError(f"num_blocks must be at least 1, got {num_blocks}")
    total = pair_count(num_series)
    num_blocks = max(1, min(num_blocks, total))
    rows, cols = np.triu_indices(num_series, k=1)
    boundaries = np.linspace(0, total, num_blocks + 1).astype(int)
    blocks: List[PairBlock] = []
    for index in range(num_blocks):
        start, stop = int(boundaries[index]), int(boundaries[index + 1])
        blocks.append(
            PairBlock(
                index=index,
                start=start,
                stop=stop,
                rows=rows[start:stop].astype(INDEX_DTYPE, copy=False),
                cols=cols[start:stop].astype(INDEX_DTYPE, copy=False),
            )
        )
    return blocks
