"""Deterministic merging of per-block shard results.

Every shard answers the same sliding query over a disjoint subset of the
pair space, so merging is pure bookkeeping: per window, the union of the
shards' surviving entries *is* the serial answer.  The only care taken here
is ordering — serial engines emit each window's edges in ascending canonical
pair order (lexicographic ``(i, j)``), so the merged entries are sorted the
same way.  Because the shards partition the pair space, that sort is a
permutation with a unique fixed result: the merged
:class:`~repro.core.result.CorrelationSeriesResult` is bit-identical to the
serial run's for *any* partition, contiguous or not, whatever order the
shards finished in.

Work counters (exact evaluations, skips, candidate pairs) are additive across
shards and summed; ``extra`` entries are kept only when every shard agrees on
them (per-shard diagnostics like mean jump length are dropped rather than
misreported).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.query import SlidingQuery
from repro.core.result import (
    CorrelationSeriesResult,
    EngineStats,
    ThresholdedMatrix,
)
from repro.exceptions import ParallelError

#: ``EngineStats.extra`` keys that are per-shard work counters (summed on
#: merge); everything else is kept only when identical across shards.
_ADDITIVE_EXTRA_KEYS = ("pivot_evaluations",)


def merge_shard_stats(
    shard_stats: Sequence[EngineStats], engine_label: Optional[str] = None
) -> EngineStats:
    """Combine per-shard work counters into one :class:`EngineStats`.

    ``query_seconds`` is summed (total CPU-side work); the sharded executor
    overwrites it with the observed wall time and keeps the sum in
    ``extra["parallel_shard_seconds_total"]``.
    """
    if not shard_stats:
        raise ParallelError("cannot merge an empty list of shard stats")
    first = shard_stats[0]
    extra: Dict[str, float] = {}
    for key, value in first.extra.items():
        if key in _ADDITIVE_EXTRA_KEYS:
            extra[key] = float(sum(s.extra.get(key, 0.0) for s in shard_stats))
        elif all(s.extra.get(key) == value for s in shard_stats):
            extra[key] = value
    return EngineStats(
        engine=engine_label if engine_label is not None else first.engine,
        num_series=first.num_series,
        num_windows=first.num_windows,
        exact_evaluations=sum(s.exact_evaluations for s in shard_stats),
        skipped_by_jumping=sum(s.skipped_by_jumping for s in shard_stats),
        pruned_horizontally=sum(s.pruned_horizontally for s in shard_stats),
        candidate_pairs=sum(s.candidate_pairs for s in shard_stats),
        sketch_build_seconds=max(s.sketch_build_seconds for s in shard_stats),
        query_seconds=sum(s.query_seconds for s in shard_stats),
        extra=extra,
    )


def merge_shard_results(
    query: SlidingQuery,
    shard_results: Sequence[CorrelationSeriesResult],
    series_ids: Optional[Sequence[str]] = None,
    engine_label: Optional[str] = None,
) -> CorrelationSeriesResult:
    """Merge shard results over disjoint pair subsets into the serial answer.

    Requires every shard to cover the same query (same window count and
    matrix size).  The shards' pair subsets must partition whatever pair
    space the caller sharded — entries are re-sorted into canonical pair
    order, so the shard order and the partition shape are both irrelevant.
    """
    if not shard_results:
        raise ParallelError("cannot merge an empty list of shard results")
    num_windows = query.num_windows
    sizes = {r.num_windows for r in shard_results}
    if sizes != {num_windows}:
        raise ParallelError(
            f"shard results disagree with the query's window count "
            f"{num_windows}: got {sorted(sizes)}"
        )
    num_series = {r.num_series for r in shard_results}
    if len(num_series) > 1:
        raise ParallelError(
            f"shard results disagree on the matrix size: {sorted(num_series)}"
        )
    n = shard_results[0].num_series

    matrices: List[ThresholdedMatrix] = []
    for k in range(num_windows):
        rows = np.concatenate([r.matrices[k].rows for r in shard_results])
        cols = np.concatenate([r.matrices[k].cols for r in shard_results])
        values = np.concatenate([r.matrices[k].values for r in shard_results])
        # Canonical (i, j) order; unique per entry because shards are disjoint.
        order = np.lexsort((cols, rows))
        matrices.append(
            ThresholdedMatrix(n, rows[order], cols[order], values[order])
        )

    stats = merge_shard_stats(
        [r.stats for r in shard_results], engine_label=engine_label
    )
    if series_ids is None:
        series_ids = shard_results[0].series_ids
    return CorrelationSeriesResult(query, matrices, stats, series_ids=series_ids)
