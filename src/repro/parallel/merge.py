"""Deterministic merging of per-block shard results.

Every shard answers the same sliding query over a disjoint subset of the
pair space, so merging is pure bookkeeping: per window, the union of the
shards' surviving entries *is* the serial answer.  The only care taken here
is ordering — serial engines emit each window's edges in ascending canonical
pair order (lexicographic ``(i, j)``), so the merged entries are sorted the
same way.  Because the shards partition the pair space, that sort is a
permutation with a unique fixed result: the merged
:class:`~repro.core.result.CorrelationSeriesResult` is bit-identical to the
serial run's for *any* partition, contiguous or not, whatever order the
shards finished in.

Work counters (exact evaluations, skips, candidate pairs) are additive across
shards and summed; ``extra`` entries are kept only when every shard agrees on
them (per-shard diagnostics like mean jump length are dropped rather than
misreported).

The same disjointness argument covers the other query families:
:func:`merge_topk_results` re-ranks the union of per-shard top-k candidates
under the canonical total order, and :func:`merge_lagged_results` scatters
per-shard lagged pair blocks back into dense matrices — both bit-identical
to the corresponding serial run for any partition.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import FLOAT_DTYPE, INDEX_DTYPE
from repro.core.lag import LagMatrices, LagPairs
from repro.core.query import SlidingQuery
from repro.core.result import (
    CorrelationSeriesResult,
    EngineStats,
    ThresholdedMatrix,
)
from repro.core.topk import TopKResult, select_top_k
from repro.exceptions import ParallelError

#: ``EngineStats.extra`` keys that are per-shard work counters (summed on
#: merge); everything else is kept only when identical across shards.
_ADDITIVE_EXTRA_KEYS = ("pivot_evaluations",)


def merge_shard_stats(
    shard_stats: Sequence[EngineStats], engine_label: Optional[str] = None
) -> EngineStats:
    """Combine per-shard work counters into one :class:`EngineStats`.

    ``query_seconds`` is summed (total CPU-side work); the sharded executor
    overwrites it with the observed wall time and keeps the sum in
    ``extra["parallel_shard_seconds_total"]``.
    """
    if not shard_stats:
        raise ParallelError("cannot merge an empty list of shard stats")
    first = shard_stats[0]
    extra: Dict[str, float] = {}
    for key, value in first.extra.items():
        if key in _ADDITIVE_EXTRA_KEYS:
            extra[key] = float(sum(s.extra.get(key, 0.0) for s in shard_stats))
        elif all(s.extra.get(key) == value for s in shard_stats):
            extra[key] = value
    return EngineStats(
        engine=engine_label if engine_label is not None else first.engine,
        num_series=first.num_series,
        num_windows=first.num_windows,
        exact_evaluations=sum(s.exact_evaluations for s in shard_stats),
        skipped_by_jumping=sum(s.skipped_by_jumping for s in shard_stats),
        pruned_horizontally=sum(s.pruned_horizontally for s in shard_stats),
        candidate_pairs=sum(s.candidate_pairs for s in shard_stats),
        sketch_build_seconds=max(s.sketch_build_seconds for s in shard_stats),
        query_seconds=sum(s.query_seconds for s in shard_stats),
        extra=extra,
    )


def merge_shard_results(
    query: SlidingQuery,
    shard_results: Sequence[CorrelationSeriesResult],
    series_ids: Optional[Sequence[str]] = None,
    engine_label: Optional[str] = None,
) -> CorrelationSeriesResult:
    """Merge shard results over disjoint pair subsets into the serial answer.

    Requires every shard to cover the same query (same window count and
    matrix size).  The shards' pair subsets must partition whatever pair
    space the caller sharded — entries are re-sorted into canonical pair
    order, so the shard order and the partition shape are both irrelevant.
    """
    if not shard_results:
        raise ParallelError("cannot merge an empty list of shard results")
    num_windows = query.num_windows
    sizes = {r.num_windows for r in shard_results}
    if sizes != {num_windows}:
        raise ParallelError(
            f"shard results disagree with the query's window count "
            f"{num_windows}: got {sorted(sizes)}"
        )
    num_series = {r.num_series for r in shard_results}
    if len(num_series) > 1:
        raise ParallelError(
            f"shard results disagree on the matrix size: {sorted(num_series)}"
        )
    n = shard_results[0].num_series

    matrices: List[ThresholdedMatrix] = []
    for k in range(num_windows):
        rows = np.concatenate([r.matrices[k].rows for r in shard_results])
        cols = np.concatenate([r.matrices[k].cols for r in shard_results])
        values = np.concatenate([r.matrices[k].values for r in shard_results])
        # Canonical (i, j) order; unique per entry because shards are disjoint.
        order = np.lexsort((cols, rows))
        matrices.append(
            ThresholdedMatrix(n, rows[order], cols[order], values[order])
        )

    stats = merge_shard_stats(
        [r.stats for r in shard_results], engine_label=engine_label
    )
    if series_ids is None:
        series_ids = shard_results[0].series_ids
    return CorrelationSeriesResult(query, matrices, stats, series_ids=series_ids)


def _check_window_counts(query: SlidingQuery, counts: Sequence[int], what: str) -> int:
    num_windows = query.num_windows
    if set(counts) != {num_windows}:
        raise ParallelError(
            f"{what} disagree with the query's window count "
            f"{num_windows}: got {sorted(set(counts))}"
        )
    return num_windows


def _single_window_index(indices: Sequence[int], position: int) -> int:
    unique = set(int(i) for i in indices)
    if len(unique) != 1:
        raise ParallelError(
            f"shards disagree on the index of window #{position}: {sorted(unique)}"
        )
    return unique.pop()


def merge_topk_results(
    query: SlidingQuery,
    k: int,
    absolute: bool,
    shard_results: Sequence[TopKResult],
) -> TopKResult:
    """Exact global top-k per window from per-shard local top-k candidates.

    Correct because :func:`repro.core.topk.select_top_k` is a *total* order
    (rank descending, then ascending canonical pair): every member of the
    global top k necessarily ranks within its own shard's local top k, so
    re-ranking the union of the shards' candidates reproduces the serial
    selection exactly — including duplicate values at the k boundary, shards
    holding fewer than k pairs, and shards holding none at all.
    """
    if not shard_results:
        raise ParallelError("cannot merge an empty list of top-k shard results")
    num_windows = _check_window_counts(
        query, [r.num_windows for r in shard_results], "top-k shard results"
    )
    windows = []
    for position in range(num_windows):
        shard_windows = [r.windows[position] for r in shard_results]
        index = _single_window_index(
            [w.window_index for w in shard_windows], position
        )
        rows = np.concatenate([w.rows for w in shard_windows])
        cols = np.concatenate([w.cols for w in shard_windows])
        values = np.concatenate([w.values for w in shard_windows])
        windows.append(select_top_k(rows, cols, values, k, absolute, index))
    return TopKResult(query=query, k=k, absolute=absolute, windows=windows)


def merge_lagged_results(
    query: SlidingQuery,
    num_series: int,
    shard_windows: Sequence[Sequence[LagPairs]],
) -> List[LagMatrices]:
    """Scatter per-shard lagged pair blocks into dense per-window matrices.

    Each shard contributes one :class:`~repro.core.lag.LagPairs` per window
    over its disjoint pair block; both directions of every pair are carried
    in the block, so scattering all blocks into zeroed matrices (then
    setting the diagonal, exactly as :meth:`LagPairs.to_matrices` does for
    the full triangle) is bit-identical to the serial dense run for any
    partition.
    """
    if not shard_windows:
        raise ParallelError("cannot merge an empty list of lagged shard results")
    num_windows = _check_window_counts(
        query, [len(shard) for shard in shard_windows], "lagged shard results"
    )
    merged: List[LagMatrices] = []
    for position in range(num_windows):
        blocks = [shard[position] for shard in shard_windows]
        index = _single_window_index([b.window_index for b in blocks], position)
        best_corr = np.zeros((num_series, num_series), dtype=FLOAT_DTYPE)
        best_lag = np.zeros((num_series, num_series), dtype=INDEX_DTYPE)
        for block in blocks:
            block.scatter_into(best_corr, best_lag)
        np.fill_diagonal(best_corr, 1.0)
        merged.append(
            LagMatrices(window_index=index, best_corr=best_corr, best_lag=best_lag)
        )
    return merged
