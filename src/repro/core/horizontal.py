"""Horizontal computation pruning via pivot series and the triangle bound.

Given exact correlations of a handful of *pivot* series against every other
series in the current window (``P · N`` pairs), the triangle bound restricts
every remaining pair's correlation to an interval.  Pairs whose interval lies
entirely below the threshold cannot be edges and need no exact evaluation in
this window — the paper's "horizontal computation pruning".

The quality of the pruning depends on the pivots: a pivot highly correlated
with both members of a pair gives a tight interval.  Pivot selection
strategies provided here:

``"kcenter"``
    Greedy max-min selection in correlation distance (the first pivot is the
    series with the highest variance, each further pivot is the series least
    correlated with all pivots chosen so far).  Gives pivots that spread over
    the correlation structure.
``"variance"``
    The series with the largest variances in the window.
``"random"``
    Uniform random rows.
``"first"``
    Rows ``0 … P-1`` (deterministic, used in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.config import DEFAULT_NUM_PIVOTS, FLOAT_DTYPE
from repro.core.bounds import triangle_bounds_from_pivots
from repro.core.correlation import correlation_against
from repro.core.query import THRESHOLD_ABSOLUTE
from repro.exceptions import QueryValidationError

_STRATEGIES = ("kcenter", "variance", "random", "first")


def select_pivots(
    window_values: np.ndarray,
    num_pivots: int = DEFAULT_NUM_PIVOTS,
    strategy: str = "kcenter",
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Choose pivot row indices for horizontal pruning.

    ``window_values`` is the ``(N, l)`` slice of the current window.  Returns
    an array of at most ``num_pivots`` distinct row indices (fewer when the
    matrix has fewer rows).
    """
    if strategy not in _STRATEGIES:
        raise QueryValidationError(
            f"unknown pivot strategy {strategy!r}; expected one of {_STRATEGIES}"
        )
    window_values = np.asarray(window_values, dtype=FLOAT_DTYPE)
    if window_values.ndim != 2:
        raise QueryValidationError("window_values must be an (N, l) array")
    n = window_values.shape[0]
    num_pivots = max(1, min(num_pivots, n))

    if strategy == "first":
        return np.arange(num_pivots)
    if strategy == "random":
        rng = rng if rng is not None else np.random.default_rng()
        return rng.choice(n, size=num_pivots, replace=False)
    variances = window_values.var(axis=1)
    if strategy == "variance":
        return np.argsort(variances)[::-1][:num_pivots].copy()

    # kcenter: greedy max-min on correlation distance 1 - |c|.
    pivots = [int(np.argmax(variances))]
    closest = np.abs(
        correlation_against(window_values, window_values[pivots[-1]])
    ).ravel()
    while len(pivots) < num_pivots:
        candidate = int(np.argmin(closest))
        if candidate in pivots:
            break
        pivots.append(candidate)
        corr_to_new = np.abs(
            correlation_against(window_values, window_values[candidate])
        ).ravel()
        closest = np.maximum(closest, corr_to_new)
    return np.asarray(pivots, dtype=int)


@dataclass
class HorizontalPruneResult:
    """Output of one window's horizontal pruning pass."""

    pivots: np.ndarray
    pivot_correlations: np.ndarray
    lower: np.ndarray
    upper: np.ndarray

    def prunable_mask(self, beta: float, threshold_mode: str) -> np.ndarray:
        """Symmetric boolean matrix: ``True`` where the pair cannot be an edge.

        In signed mode a pair is prunable when its upper bound is below
        ``beta``; in absolute mode both the upper bound and the negated lower
        bound must be below ``beta``.
        """
        if threshold_mode == THRESHOLD_ABSOLUTE:
            mask = (self.upper < beta) & (-self.lower < beta)
        else:
            mask = self.upper < beta
        np.fill_diagonal(mask, False)
        return mask

    def surrogate_upper(self) -> np.ndarray:
        """Upper-bound matrix usable as a conservative stand-in for the exact value."""
        return self.upper


class HorizontalPruner:
    """Computes pivot correlations and triangle-bound intervals per window."""

    def __init__(
        self,
        num_pivots: int = DEFAULT_NUM_PIVOTS,
        strategy: str = "kcenter",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if num_pivots < 1:
            raise QueryValidationError(f"num_pivots must be >= 1, got {num_pivots}")
        self.num_pivots = num_pivots
        self.strategy = strategy
        self.rng = rng

    def analyze(
        self, window_values: np.ndarray, pivots: Optional[np.ndarray] = None
    ) -> HorizontalPruneResult:
        """Compute pivot correlations and per-pair bounds for one window.

        ``pivots`` overrides pivot selection (used when the engine wants to
        keep the same pivots across windows to amortize selection cost).
        """
        window_values = np.asarray(window_values, dtype=FLOAT_DTYPE)
        if pivots is None:
            pivots = select_pivots(
                window_values, self.num_pivots, self.strategy, self.rng
            )
        pivots = np.asarray(pivots, dtype=int)
        pivot_corrs = correlation_against(window_values, window_values[pivots])
        lower, upper = triangle_bounds_from_pivots(pivot_corrs)
        return HorizontalPruneResult(
            pivots=pivots,
            pivot_correlations=pivot_corrs,
            lower=lower,
            upper=upper,
        )

    def exact_pair_cost(self, num_series: int) -> int:
        """Number of exact pair evaluations the pruning pass itself spends."""
        return self.num_pivots * num_series


def prunable_pairs(
    result: HorizontalPruneResult,
    rows: np.ndarray,
    cols: np.ndarray,
    beta: float,
    threshold_mode: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """Split candidate pairs into (prunable, must-evaluate) position arrays.

    ``rows``/``cols`` enumerate the candidate pairs; the return value is a pair
    of index arrays *into that enumeration* (not into the series), so the
    caller can subset its own bookkeeping arrays directly.
    """
    mask_matrix = result.prunable_mask(beta, threshold_mode)
    mask = mask_matrix[rows, cols]
    positions = np.arange(len(rows))
    return positions[mask], positions[~mask]
