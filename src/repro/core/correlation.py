"""Exact Pearson correlation utilities.

These are the ground-truth primitives: a numerically careful pairwise Pearson
correlation, a full ``N x N`` correlation matrix for a window, and an
incremental (streaming) accumulator.  The sketch-based engines are tested
against these functions, and the brute-force baseline is built directly on
them.

Constant series (variance below :data:`repro.config.VARIANCE_EPSILON`) have an
undefined Pearson correlation; in line with the paper's network interpretation
("no edge"), every function here reports 0 for such pairs instead of NaN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import (
    FLOAT_DTYPE,
    VARIANCE_EPSILON,
    clamp_correlation,
    clamp_correlation_array,
)
from repro.exceptions import DataValidationError


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Exact Pearson correlation between two 1-D series of equal length."""
    x = np.asarray(x, dtype=FLOAT_DTYPE)
    y = np.asarray(y, dtype=FLOAT_DTYPE)
    if x.ndim != 1 or y.ndim != 1:
        raise DataValidationError("pearson() expects 1-D arrays")
    if x.shape != y.shape:
        raise DataValidationError(
            f"series lengths differ: {x.shape[0]} vs {y.shape[0]}"
        )
    if x.shape[0] < 2:
        raise DataValidationError("pearson() needs at least two observations")
    xc = x - x.mean()
    yc = y - y.mean()
    var_x = float(np.dot(xc, xc))
    var_y = float(np.dot(yc, yc))
    if var_x < VARIANCE_EPSILON * len(x) or var_y < VARIANCE_EPSILON * len(y):
        return 0.0
    return clamp_correlation(float(np.dot(xc, yc)) / np.sqrt(var_x * var_y))


def correlation_matrix(window: np.ndarray) -> np.ndarray:
    """Exact ``N x N`` Pearson correlation matrix of an ``(N, L)`` window.

    Rows with (near-)zero variance produce zero correlations against every
    other row and a diagonal entry of 1.
    """
    window = np.asarray(window, dtype=FLOAT_DTYPE)
    if window.ndim != 2:
        raise DataValidationError(
            f"correlation_matrix() expects an (N, L) array, got shape {window.shape}"
        )
    n, length = window.shape
    if length < 2:
        raise DataValidationError("windows must contain at least two columns")
    centered = window - window.mean(axis=1, keepdims=True)
    norms = np.sqrt(np.einsum("ij,ij->i", centered, centered))
    degenerate = norms < np.sqrt(VARIANCE_EPSILON * length)
    safe_norms = np.where(degenerate, 1.0, norms)
    normalized = centered / safe_norms[:, None]
    corr = normalized @ normalized.T
    corr = clamp_correlation_array(corr)
    if np.any(degenerate):
        corr[degenerate, :] = 0.0
        corr[:, degenerate] = 0.0
    np.fill_diagonal(corr, 1.0)
    return corr


def correlation_against(window: np.ndarray, pivot_rows: np.ndarray) -> np.ndarray:
    """Correlations of every row of ``window`` against each row of ``pivot_rows``.

    Returns an array of shape ``(num_pivots, N)``.  Used by horizontal pruning,
    which only needs pivot-to-everything correlations.
    """
    window = np.asarray(window, dtype=FLOAT_DTYPE)
    pivot_rows = np.asarray(pivot_rows, dtype=FLOAT_DTYPE)
    if pivot_rows.ndim == 1:
        pivot_rows = pivot_rows.reshape(1, -1)
    if window.ndim != 2 or pivot_rows.ndim != 2:
        raise DataValidationError("correlation_against() expects 2-D arrays")
    if window.shape[1] != pivot_rows.shape[1]:
        raise DataValidationError(
            "window and pivot rows must cover the same number of time steps"
        )
    length = window.shape[1]

    def _normalize(rows: np.ndarray) -> np.ndarray:
        centered = rows - rows.mean(axis=1, keepdims=True)
        norms = np.sqrt(np.einsum("ij,ij->i", centered, centered))
        degenerate = norms < np.sqrt(VARIANCE_EPSILON * length)
        safe = np.where(degenerate, 1.0, norms)
        normalized = centered / safe[:, None]
        normalized[degenerate, :] = 0.0
        return normalized

    return clamp_correlation_array(_normalize(pivot_rows) @ _normalize(window).T)


@dataclass
class RunningPairCorrelation:
    """Incremental Pearson correlation over a growing pair of series.

    Maintains sums, sums of squares, and the sum of products so new
    observations can be appended in O(1); used by the streaming substrate to
    keep pair correlations current as data arrives.
    """

    count: int = 0
    sum_x: float = 0.0
    sum_y: float = 0.0
    sum_xx: float = 0.0
    sum_yy: float = 0.0
    sum_xy: float = 0.0

    def update(self, x: float, y: float) -> None:
        """Add one simultaneous observation of both series."""
        self.count += 1
        self.sum_x += x
        self.sum_y += y
        self.sum_xx += x * x
        self.sum_yy += y * y
        self.sum_xy += x * y

    def update_many(self, xs: np.ndarray, ys: np.ndarray) -> None:
        """Add a batch of simultaneous observations."""
        xs = np.asarray(xs, dtype=FLOAT_DTYPE)
        ys = np.asarray(ys, dtype=FLOAT_DTYPE)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise DataValidationError("update_many() expects equal-length 1-D arrays")
        self.count += len(xs)
        self.sum_x += float(xs.sum())
        self.sum_y += float(ys.sum())
        self.sum_xx += float(np.dot(xs, xs))
        self.sum_yy += float(np.dot(ys, ys))
        self.sum_xy += float(np.dot(xs, ys))

    def remove_many(self, xs: np.ndarray, ys: np.ndarray) -> None:
        """Remove a batch of old observations (for sliding-window maintenance)."""
        xs = np.asarray(xs, dtype=FLOAT_DTYPE)
        ys = np.asarray(ys, dtype=FLOAT_DTYPE)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise DataValidationError("remove_many() expects equal-length 1-D arrays")
        if len(xs) > self.count:
            raise DataValidationError("cannot remove more observations than were added")
        self.count -= len(xs)
        self.sum_x -= float(xs.sum())
        self.sum_y -= float(ys.sum())
        self.sum_xx -= float(np.dot(xs, xs))
        self.sum_yy -= float(np.dot(ys, ys))
        self.sum_xy -= float(np.dot(xs, ys))

    def correlation(self) -> Optional[float]:
        """The current correlation, or ``None`` with fewer than two points."""
        if self.count < 2:
            return None
        n = float(self.count)
        cov = self.sum_xy - self.sum_x * self.sum_y / n
        var_x = self.sum_xx - self.sum_x * self.sum_x / n
        var_y = self.sum_yy - self.sum_y * self.sum_y / n
        if var_x < VARIANCE_EPSILON * n or var_y < VARIANCE_EPSILON * n:
            return 0.0
        return clamp_correlation(cov / np.sqrt(var_x * var_y))


def correlation_from_sums(
    count: np.ndarray,
    sum_x: np.ndarray,
    sum_y: np.ndarray,
    sum_xx: np.ndarray,
    sum_yy: np.ndarray,
    sum_xy: np.ndarray,
) -> np.ndarray:
    """Vectorized Pearson correlation from raw sufficient statistics.

    All arguments broadcast together; degenerate (near-constant) entries map to
    zero.  This is the workhorse the sketch combination uses after it has
    aggregated per-basic-window sums over a query window.
    """
    count = np.asarray(count, dtype=FLOAT_DTYPE)
    cov = sum_xy - sum_x * sum_y / count
    var_x = sum_xx - sum_x * sum_x / count
    var_y = sum_yy - sum_y * sum_y / count
    # Degeneracy must be judged relative to the uncentred energy as well as in
    # absolute terms: for a constant series the two sums cancel and the
    # floating point residue scales with the magnitude of the data, so a purely
    # absolute epsilon would let catastrophic cancellation masquerade as signal.
    degenerate = (
        (var_x < VARIANCE_EPSILON * count)
        | (var_y < VARIANCE_EPSILON * count)
        | (var_x < 1e-10 * np.abs(sum_xx))
        | (var_y < 1e-10 * np.abs(sum_yy))
    )
    safe = np.sqrt(np.where(degenerate, 1.0, var_x * var_y))
    corr = np.where(degenerate, 0.0, cov / safe)
    return clamp_correlation_array(corr)
