"""The basic-window sketch: precomputed statistics shared by Dangoron and TSUBASA.

The sketch stores, for every basic window of the layout,

* per-series sums and sums of squares (equivalently means and population
  standard deviations), and
* for every pair of series, the sum of products and the basic-window
  correlation ``c_j`` used both by Eq. 1 and by the Eq. 2 temporal bound.

With these statistics the exact Pearson correlation of any query window that
is a union of basic windows can be recombined without touching the raw data.
The recombination exposed here comes in two flavours:

``exact_*_scan``
    Sums the per-basic-window statistics of the window (cost ``O(n_s)`` per
    pair).  This is the combination step whose repeated cost Dangoron's
    jumping structure avoids, and the one the TSUBASA baseline performs for
    every pair in every window.

``exact_matrix_fast``
    Uses prefix sums along the basic-window axis for an ``O(1)`` per-pair
    combination.  This is *not* part of the paper; it is provided as an
    ablation point (see DESIGN.md, decision 2) and for fast ground-truth
    generation in tests.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from repro.config import (
    FLOAT_DTYPE,
    VARIANCE_EPSILON,
    clamp_correlation_array,
)
from repro.core.basic_window import BasicWindowLayout
from repro.core.correlation import correlation_from_sums
from repro.exceptions import SketchError


def _contiguous_array(array: Optional[np.ndarray]) -> Optional[np.ndarray]:
    """Normalize a statistics array to one canonical (C-contiguous) layout.

    The *same bits* reduced from differently-laid-out memory can differ in
    the last ulp, because NumPy picks its traversal and pairwise-summation
    blocking from the strides.  Sketches are produced by ``einsum`` (which
    returns transposed views), loaded from ``.npz`` archives (C-contiguous)
    and merged by the streaming extension — so the bit-identity contract
    (stored statistics answer exactly like freshly built ones) requires one
    canonical layout at construction time.
    """
    if array is None:
        return None
    return np.ascontiguousarray(array, dtype=FLOAT_DTYPE)


def _pairwise_window_sum(block: np.ndarray) -> np.ndarray:
    """Sum a ``(count, ...)`` statistics block over its window axis.

    Moves the window axis last (copying into the canonical contiguous
    layout) so every output element is reduced independently along
    contiguous memory.  NumPy's deterministic pairwise summation then makes
    the result a function of *(that pair's values, count)* alone — the same
    bits whether the block came from a dense ``(count, N, N)`` slice or a
    ``(count, P)`` pair gather, whatever the subset size, provenance or
    heap layout.  This is the primitive that keeps serial, sharded and
    seeded-from-disk executions bit-identical.
    """
    return np.ascontiguousarray(np.moveaxis(block, 0, -1)).sum(axis=-1)


def pair_corrs_from_stats(
    series_sums: np.ndarray,
    series_sumsqs: np.ndarray,
    pair_sumprods: np.ndarray,
    size: int,
) -> np.ndarray:
    """Per-basic-window pair correlations from the raw per-window statistics.

    ``series_sums``/``series_sumsqs`` have shape ``(N, count)`` and
    ``pair_sumprods`` has shape ``(count, N, N)``; the result matches
    ``pair_sumprods``.  Every operation is element-wise per basic window, so
    the function is shared by the dense :meth:`BasicWindowSketch.build` and
    the tiled out-of-core builder (:mod:`repro.core.tiled`) — computing a
    window's correlations from its statistics gives the same bits whether the
    window arrived in one dense build or in a tile.
    """
    means = series_sums / size
    variances = series_sumsqs / size - means**2
    # Flag near-constant basic windows both absolutely and relative to
    # the uncentred energy (cancellation noise grows with magnitude).
    degenerate_window = (variances < VARIANCE_EPSILON) | (
        variances < 1e-10 * np.abs(series_sumsqs / size)
    )
    variances = np.maximum(variances, 0.0)
    stds = np.sqrt(variances)
    # Covariance per basic window: E[xy] - E[x]E[y].
    cov = pair_sumprods / size - means.T[:, :, None] * means.T[:, None, :]
    denom = stds.T[:, :, None] * stds.T[:, None, :]
    degenerate = (
        (denom < VARIANCE_EPSILON)
        | degenerate_window.T[:, :, None]
        | degenerate_window.T[:, None, :]
    )
    pair_corrs = np.where(degenerate, 0.0, cov / np.where(degenerate, 1.0, denom))
    return clamp_correlation_array(pair_corrs)


def ensure_sketch_layout(sketch: "BasicWindowSketch", layout) -> "BasicWindowSketch":
    """Validate that a prebuilt sketch matches the layout an execution plans.

    Shared by every path accepting a planner-supplied sketch (Dangoron,
    TSUBASA, ``sliding_top_k``), so a stale or mismatched sketch always fails
    the same way: a :class:`SketchError`.
    """
    if sketch.layout != layout:
        raise SketchError(
            f"prebuilt sketch layout {sketch.layout} does not match the "
            f"layout {layout} planned for the query"
        )
    return sketch


class BasicWindowSketch:
    """Precomputed per-basic-window statistics for an ``(N, L)`` matrix."""

    def __init__(
        self,
        layout: BasicWindowLayout,
        series_sums: np.ndarray,
        series_sumsqs: np.ndarray,
        pair_sumprods: Optional[np.ndarray],
        pair_corrs: Optional[np.ndarray],
        build_seconds: float = 0.0,
    ) -> None:
        self.layout = layout
        self.series_sums = _contiguous_array(series_sums)
        self.series_sumsqs = _contiguous_array(series_sumsqs)
        self.pair_sumprods = _contiguous_array(pair_sumprods)
        self.pair_corrs = _contiguous_array(pair_corrs)
        self.build_seconds = build_seconds

        self._sum_prefix = np.concatenate(
            [np.zeros((series_sums.shape[0], 1), dtype=FLOAT_DTYPE),
             np.cumsum(series_sums, axis=1)],
            axis=1,
        )
        self._sumsq_prefix = np.concatenate(
            [np.zeros((series_sumsqs.shape[0], 1), dtype=FLOAT_DTYPE),
             np.cumsum(series_sumsqs, axis=1)],
            axis=1,
        )
        self._corr_prefix: Optional[np.ndarray] = None
        self._sumprod_prefix: Optional[np.ndarray] = None
        self._scan_memo: Optional["OrderedDict[Tuple[int, int], np.ndarray]"] = None
        self._scan_memo_max = 0
        self.scan_memo_hits = 0

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        values: np.ndarray,
        layout: BasicWindowLayout,
        pairwise: bool = True,
    ) -> "BasicWindowSketch":
        """Compute the sketch of ``values`` (shape ``(N, L)``) for ``layout``.

        ``pairwise=False`` skips the ``O(N^2 L)`` pair statistics; the sketch
        then supports only per-series queries (used by memory-constrained
        scenarios and by the ParCorr/StatStream baselines, which bring their
        own sketches).
        """
        started = time.perf_counter()
        values = np.asarray(values, dtype=FLOAT_DTYPE)
        if values.ndim != 2:
            raise SketchError(f"sketch input must be 2-D, got shape {values.shape}")
        if layout.covered_end > values.shape[1]:
            raise SketchError(
                f"layout covers columns up to {layout.covered_end} but the matrix "
                f"has only {values.shape[1]} columns"
            )
        num_series = values.shape[0]
        size = layout.size
        count = layout.count
        blocks = values[:, layout.covered_start : layout.covered_end].reshape(
            num_series, count, size
        )

        series_sums = blocks.sum(axis=2)
        series_sumsqs = np.einsum("nws,nws->nw", blocks, blocks)

        pair_sumprods = None
        pair_corrs = None
        if pairwise:
            # (count, N, N) tensor of per-basic-window sums of products.
            pair_sumprods = np.einsum("iws,jws->wij", blocks, blocks)
            pair_corrs = pair_corrs_from_stats(
                series_sums, series_sumsqs, pair_sumprods, size
            )

        return cls(
            layout=layout,
            series_sums=series_sums,
            series_sumsqs=series_sumsqs,
            pair_sumprods=pair_sumprods,
            pair_corrs=pair_corrs,
            build_seconds=time.perf_counter() - started,
        )

    # ----------------------------------------------------------------- extend
    def extend(self, columns: np.ndarray) -> "BasicWindowSketch":
        """Absorb appended columns as new basic windows (O(Δ), bit-identical).

        ``columns`` are the raw values of the columns immediately following
        this sketch's coverage (``[covered_end, covered_end + k)``) and must
        form whole basic windows (``k`` a positive multiple of
        ``layout.size``); callers buffer sub-window residuals until a window
        completes (see ``SketchCache.extend_chain``).  Appends never change
        *existing* basic windows, so extension computes the delta windows'
        statistics with the dense build's exact element-wise operations and
        concatenates — splitting the basic-window axis is the same
        reduction-safe cut the tiled builder makes at every tile boundary, so
        the returned sketch is **bit-identical** to
        ``BasicWindowSketch.build`` over the grown matrix (property-tested in
        ``tests/property/test_incremental_maintenance_property.py``).

        Returns a *new* sketch; the receiver stays valid for its own range
        (cached sketches are treated as immutable after publication).
        """
        started = time.perf_counter()
        columns = np.ascontiguousarray(columns, dtype=FLOAT_DTYPE)
        if columns.ndim != 2:
            raise SketchError(
                f"extension columns must be 2-D, got shape {columns.shape}"
            )
        if columns.shape[0] != self.num_series:
            raise SketchError(
                f"extension columns cover {columns.shape[0]} series but the "
                f"sketch has {self.num_series}"
            )
        size = self.layout.size
        if columns.shape[1] == 0 or columns.shape[1] % size:
            raise SketchError(
                f"extension must supply whole basic windows: got "
                f"{columns.shape[1]} columns for basic windows of size {size} "
                f"(buffer sub-window residuals until a window completes)"
            )
        delta_count = columns.shape[1] // size
        blocks = columns.reshape(self.num_series, delta_count, size)

        delta_sums = blocks.sum(axis=2)
        delta_sumsqs = np.einsum("nws,nws->nw", blocks, blocks)
        series_sums = np.concatenate([self.series_sums, delta_sums], axis=1)
        series_sumsqs = np.concatenate([self.series_sumsqs, delta_sumsqs], axis=1)

        pair_sumprods = None
        pair_corrs = None
        if self.has_pairwise:
            delta_sumprods = np.einsum("iws,jws->wij", blocks, blocks)
            delta_corrs = pair_corrs_from_stats(
                delta_sums, delta_sumsqs, delta_sumprods, size
            )
            pair_sumprods = np.concatenate([self.pair_sumprods, delta_sumprods])
            pair_corrs = np.concatenate([self.pair_corrs, delta_corrs])

        return BasicWindowSketch(
            layout=BasicWindowLayout(
                offset=self.layout.offset,
                size=size,
                count=self.layout.count + delta_count,
            ),
            series_sums=series_sums,
            series_sumsqs=series_sumsqs,
            pair_sumprods=pair_sumprods,
            pair_corrs=pair_corrs,
            build_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ shape
    @property
    def num_series(self) -> int:
        return self.series_sums.shape[0]

    @property
    def num_basic_windows(self) -> int:
        return self.layout.count

    @property
    def has_pairwise(self) -> bool:
        return self.pair_sumprods is not None

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the stored statistics."""
        total = self.series_sums.nbytes + self.series_sumsqs.nbytes
        total += self._sum_prefix.nbytes + self._sumsq_prefix.nbytes
        for tensor in (self.pair_sumprods, self.pair_corrs, self._corr_prefix,
                       self._sumprod_prefix):
            if tensor is not None:
                total += tensor.nbytes
        return int(total)

    def _require_pairwise(self) -> None:
        if not self.has_pairwise:
            raise SketchError(
                "this sketch was built with pairwise=False and cannot answer "
                "pairwise correlation queries"
            )

    # ---------------------------------------------------------------- prefixes
    @property
    def corr_prefix(self) -> np.ndarray:
        """Prefix sums of the per-basic-window pair correlations.

        ``corr_prefix[w]`` is the sum of ``pair_corrs[0:w]``; shape
        ``(count + 1, N, N)``.  Used by the Eq. 2 bound in O(1) per check.
        """
        self._require_pairwise()
        if self._corr_prefix is None:
            count, n, _ = self.pair_corrs.shape
            prefix = np.zeros((count + 1, n, n), dtype=FLOAT_DTYPE)
            np.cumsum(self.pair_corrs, axis=0, out=prefix[1:])
            self._corr_prefix = prefix
        return self._corr_prefix

    def attach_corr_prefix(self, prefix: np.ndarray) -> None:
        """Adopt a precomputed :attr:`corr_prefix` tensor.

        Used when the prefix was materialized elsewhere — e.g. exported once
        by the service parent into an mmap-backed shared segment — so that
        attaching processes answer Eq. 2 bound checks from the shared pages
        instead of each allocating a private ``(count+1, N, N)`` tensor.
        """
        self._require_pairwise()
        count, n, _ = self.pair_corrs.shape
        if tuple(prefix.shape) != (count + 1, n, n):
            raise SketchError(
                f"corr prefix shape {tuple(prefix.shape)} does not match the "
                f"sketch's ({count + 1}, {n}, {n})"
            )
        self._corr_prefix = _contiguous_array(prefix)

    @property
    def sumprod_prefix(self) -> np.ndarray:
        """Prefix sums of the per-basic-window pair sums of products."""
        self._require_pairwise()
        if self._sumprod_prefix is None:
            count, n, _ = self.pair_sumprods.shape
            prefix = np.zeros((count + 1, n, n), dtype=FLOAT_DTYPE)
            np.cumsum(self.pair_sumprods, axis=0, out=prefix[1:])
            self._sumprod_prefix = prefix
        return self._sumprod_prefix

    # ------------------------------------------------------------ range sums
    def _check_range(self, first: int, count: int) -> None:
        if count < 1 or first < 0 or first + count > self.num_basic_windows:
            raise SketchError(
                f"basic-window range [{first}, {first + count}) outside "
                f"[0, {self.num_basic_windows})"
            )

    def series_range_sums(self, first: int, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-series ``(sum, sum of squares)`` over a basic-window range (O(1))."""
        self._check_range(first, count)
        sums = self._sum_prefix[:, first + count] - self._sum_prefix[:, first]
        sumsqs = self._sumsq_prefix[:, first + count] - self._sumsq_prefix[:, first]
        return sums, sumsqs

    def pair_corr_range_sum(
        self, rows: np.ndarray, cols: np.ndarray, first: int, count: int
    ) -> np.ndarray:
        """Sum of basic-window correlations over a range, per requested pair (O(1))."""
        self._check_range(first, count)
        prefix = self.corr_prefix
        return prefix[first + count, rows, cols] - prefix[first, rows, cols]

    # -------------------------------------------------------------- exact scan
    def enable_scan_memo(self, max_entries: int = 16) -> None:
        """Memoize :meth:`exact_matrix_scan` results per basic-window range.

        Off by default: a single query never scans the same range twice.  The
        planner enables it on sketches it *shares* across queries (threshold
        sweeps, batched top-k), where different queries rescan identical
        ranges.  Entries are LRU-bounded; hits return defensive copies.
        """
        if max_entries < 1:
            raise SketchError(f"max_entries must be at least 1, got {max_entries}")
        if self._scan_memo is None:
            self._scan_memo = OrderedDict()
        self._scan_memo_max = max_entries
        while len(self._scan_memo) > self._scan_memo_max:
            self._scan_memo.popitem(last=False)

    def exact_matrix_scan(self, first: int, count: int) -> np.ndarray:
        """Exact correlation matrix of a basic-window range by scanning it.

        This is the faithful TSUBASA-style combination: the per-pair cost is
        proportional to ``count`` (the ``n_s`` of Eq. 1).
        """
        self._require_pairwise()
        self._check_range(first, count)
        if self._scan_memo is not None:
            cached = self._scan_memo.get((first, count))
            if cached is not None:
                try:
                    self._scan_memo.move_to_end((first, count))
                except KeyError:
                    # Concurrently evicted by another thread-mode shard
                    # between get() and move_to_end(); the hit is still valid.
                    pass
                self.scan_memo_hits += 1
                return cached.copy()
        n_points = count * self.layout.size
        sums = self.series_sums[:, first : first + count].sum(axis=1)
        sumsqs = self.series_sumsqs[:, first : first + count].sum(axis=1)
        sumprods = _pairwise_window_sum(self.pair_sumprods[first : first + count])
        corr = correlation_from_sums(
            np.full_like(sumprods, float(n_points)),
            sums[:, None],
            sums[None, :],
            sumsqs[:, None],
            sumsqs[None, :],
            sumprods,
        )
        np.fill_diagonal(corr, 1.0)
        if self._scan_memo is not None:
            self._scan_memo[(first, count)] = corr.copy()
            while len(self._scan_memo) > self._scan_memo_max:
                try:
                    self._scan_memo.popitem(last=False)
                except KeyError:
                    break  # another thread already evicted past the bound
        return corr

    def exact_pairs_scan(
        self, rows: np.ndarray, cols: np.ndarray, first: int, count: int
    ) -> np.ndarray:
        """Exact correlations of selected pairs over a basic-window range.

        ``rows``/``cols`` are parallel index arrays selecting the pairs.  The
        per-pair cost is ``O(count)`` — this is the work Dangoron performs for
        the pairs that were *not* pruned in a given window.
        """
        self._require_pairwise()
        self._check_range(first, count)
        rows = np.asarray(rows)
        cols = np.asarray(cols)
        n_points = count * self.layout.size
        sums, sumsqs = (
            self.series_sums[:, first : first + count].sum(axis=1),
            self.series_sumsqs[:, first : first + count].sum(axis=1),
        )
        # Fancy-indexed scan over the range: a (count, P) gather reduced with
        # the same per-pair primitive as the dense scan, so subset results are
        # bit-identical to gathering them from exact_matrix_scan.
        sumprods = _pairwise_window_sum(
            self.pair_sumprods[first : first + count, rows, cols]
        )
        return correlation_from_sums(
            np.full(len(rows), float(n_points)),
            sums[rows],
            sums[cols],
            sumsqs[rows],
            sumsqs[cols],
            sumprods,
        )

    # -------------------------------------------------------------- exact fast
    def exact_pairs_fast(
        self, rows: np.ndarray, cols: np.ndarray, first: int, count: int
    ) -> np.ndarray:
        """Exact correlations of selected pairs via prefix sums (O(1) per pair).

        The pair-subset counterpart of :meth:`exact_matrix_fast`, used by
        sharded runs of the prefix-combination ablation so a shard's cost
        stays proportional to its subset instead of the full N² matrix.
        Bit-identical to gathering the same pairs from
        :meth:`exact_matrix_fast` (same element-wise operations, no
        reductions over a different axis).
        """
        self._require_pairwise()
        self._check_range(first, count)
        rows = np.asarray(rows)
        cols = np.asarray(cols)
        n_points = count * self.layout.size
        sums, sumsqs = self.series_range_sums(first, count)
        prefix = self.sumprod_prefix
        sumprods = prefix[first + count, rows, cols] - prefix[first, rows, cols]
        return correlation_from_sums(
            np.full(len(rows), float(n_points)),
            sums[rows],
            sums[cols],
            sumsqs[rows],
            sumsqs[cols],
            sumprods,
        )

    def exact_matrix_fast(self, first: int, count: int) -> np.ndarray:
        """Exact correlation matrix via prefix sums (O(1) per pair; ablation path)."""
        self._require_pairwise()
        self._check_range(first, count)
        n_points = count * self.layout.size
        sums, sumsqs = self.series_range_sums(first, count)
        prefix = self.sumprod_prefix
        sumprods = prefix[first + count] - prefix[first]
        corr = correlation_from_sums(
            np.full_like(sumprods, float(n_points)),
            sums[:, None],
            sums[None, :],
            sumsqs[:, None],
            sumsqs[None, :],
            sumprods,
        )
        np.fill_diagonal(corr, 1.0)
        return corr

    # --------------------------------------------------------------- unaligned
    def exact_matrix_range(
        self,
        start: int,
        end: int,
        values: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Exact correlation matrix of an arbitrary column range ``[start, end)``.

        Aligned ranges inside the sketch coverage are answered from the sketch
        alone.  Any other range (unaligned edges, or columns beyond the last
        complete basic window) combines the covered aligned core with directly
        computed statistics of the remaining edge columns, which requires the
        raw ``values`` matrix (TSUBASA's arbitrary-window capability).
        """
        self._require_pairwise()
        if start < 0 or end <= start:
            raise SketchError(f"invalid column range [{start}, {end})")
        if self.layout.is_aligned(start, end):
            first, count = self.layout.covering(start, end)
            return self.exact_matrix_scan(first, count)
        if values is None:
            raise SketchError(
                "ranges not aligned to the sketch require the raw values matrix "
                "for edge correction"
            )
        values = np.asarray(values, dtype=FLOAT_DTYPE)
        if end > values.shape[1]:
            raise SketchError(
                f"column range [{start}, {end}) exceeds the matrix length "
                f"{values.shape[1]}"
            )
        n_points = float(end - start)

        # Aligned core: the complete basic windows fully inside the requested
        # range *and* inside the sketch coverage.
        size = self.layout.size
        offset = self.layout.offset
        inner_start = max(start, self.layout.covered_start)
        inner_end = min(end, self.layout.covered_end)
        first = -(-(inner_start - offset) // size) if inner_end > inner_start else 0
        last = (inner_end - offset) // size if inner_end > inner_start else 0

        n = self.num_series
        if last > first:
            count = last - first
            sums = self.series_sums[:, first : first + count].sum(axis=1)
            sumsqs = self.series_sumsqs[:, first : first + count].sum(axis=1)
            sumprods = _pairwise_window_sum(self.pair_sumprods[first : first + count])
            core_start = offset + first * size
            core_end = offset + last * size
        else:
            sums = np.zeros(n, dtype=FLOAT_DTYPE)
            sumsqs = np.zeros(n, dtype=FLOAT_DTYPE)
            sumprods = np.zeros((n, n), dtype=FLOAT_DTYPE)
            core_start = core_end = start

        for edge_start, edge_end in ((start, core_start), (core_end, end)):
            if edge_end <= edge_start:
                continue
            edge = values[:, edge_start:edge_end]
            sums = sums + edge.sum(axis=1)
            sumsqs = sumsqs + np.einsum("ij,ij->i", edge, edge)
            sumprods = sumprods + edge @ edge.T

        corr = correlation_from_sums(
            np.full_like(sumprods, n_points),
            sums[:, None],
            sums[None, :],
            sumsqs[:, None],
            sumsqs[None, :],
            sumprods,
        )
        np.fill_diagonal(corr, 1.0)
        return corr
