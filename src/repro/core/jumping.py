"""The jumping structure of Fig. 2: per-pair scheduling of exact evaluations.

Dangoron keeps, for every pair of series, the index of the next sliding window
at which the pair's correlation must be recomputed exactly.  Pairs whose
current correlation is below the threshold and whose Eq. 2 upper bound stays
below the threshold for the next ``m - 1`` windows are scheduled ``m`` windows
ahead; every window they skip is reported as "no edge" without any Eq. 1
combination work.

The scheduler is deliberately engine-agnostic: it only tracks *when* each pair
is due, not *why* (temporal bound, horizontal bound, or initial state), so the
Dangoron engine can compose both pruning mechanisms on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.config import INDEX_DTYPE
from repro.exceptions import QueryValidationError


@dataclass
class JumpStats:
    """Counters describing how much work the scheduler avoided."""

    exact_evaluations: int = 0
    skipped_evaluations: int = 0
    jumps_scheduled: int = 0
    total_jump_length: int = 0

    def mean_jump_length(self) -> float:
        if self.jumps_scheduled == 0:
            return 0.0
        return self.total_jump_length / self.jumps_scheduled


class JumpScheduler:
    """Tracks, per pair, the next window index that requires exact evaluation.

    Pairs are identified by their position ``0 … num_pairs-1`` in whatever
    pair enumeration the engine uses (the engine keeps the mapping to
    ``(i, j)`` index arrays).  All pairs start due at window 0.
    """

    def __init__(self, num_pairs: int, num_windows: int) -> None:
        if num_pairs < 0:
            raise QueryValidationError(f"num_pairs must be >= 0, got {num_pairs}")
        if num_windows < 1:
            raise QueryValidationError(f"num_windows must be >= 1, got {num_windows}")
        self.num_pairs = num_pairs
        self.num_windows = num_windows
        self._next_due = np.zeros(num_pairs, dtype=INDEX_DTYPE)
        self.stats = JumpStats()

    # ------------------------------------------------------------------ state
    @property
    def next_due(self) -> np.ndarray:
        """Read-only view of the per-pair next-due window indices."""
        view = self._next_due.view()
        view.setflags(write=False)
        return view

    def due_mask(self, window_index: int) -> np.ndarray:
        """Boolean mask of pairs that must be evaluated exactly at this window."""
        self._check_window(window_index)
        return self._next_due <= window_index

    def due_indices(self, window_index: int) -> np.ndarray:
        """Indices of pairs due at this window (ascending order)."""
        return np.flatnonzero(self.due_mask(window_index))

    # -------------------------------------------------------------- scheduling
    def record_evaluations(self, window_index: int, pair_indices: np.ndarray) -> None:
        """Note that the given pairs were evaluated exactly at this window.

        By default their next evaluation is the immediately following window;
        :meth:`schedule_jumps` may push it further out.
        """
        self._check_window(window_index)
        pair_indices = np.asarray(pair_indices, dtype=INDEX_DTYPE)
        self._next_due[pair_indices] = window_index + 1
        self.stats.exact_evaluations += int(len(pair_indices))

    def schedule_jumps(
        self,
        window_index: int,
        pair_indices: np.ndarray,
        jump_lengths: np.ndarray,
    ) -> None:
        """Schedule the given pairs ``jump_lengths`` windows ahead.

        A jump length of 1 means "re-evaluate at the very next window" (no
        skipping); a length of ``m`` skips ``m - 1`` windows.  Lengths that
        run past the final window park the pair beyond the query (it is never
        evaluated again).
        """
        self._check_window(window_index)
        pair_indices = np.asarray(pair_indices, dtype=INDEX_DTYPE)
        jump_lengths = np.asarray(jump_lengths, dtype=INDEX_DTYPE)
        if pair_indices.shape != jump_lengths.shape:
            raise QueryValidationError(
                "pair_indices and jump_lengths must have the same shape"
            )
        if len(jump_lengths) and jump_lengths.min() < 1:
            raise QueryValidationError("jump lengths must be at least 1")
        self._next_due[pair_indices] = window_index + jump_lengths
        skipped = np.minimum(window_index + jump_lengths, self.num_windows) - (
            window_index + 1
        )
        skipped = np.maximum(skipped, 0)
        self.stats.skipped_evaluations += int(skipped.sum())
        jumps = jump_lengths[jump_lengths > 1]
        self.stats.jumps_scheduled += int(len(jumps))
        self.stats.total_jump_length += int(jumps.sum())

    def park(self, pair_indices: np.ndarray, window_index: int) -> None:
        """Remove pairs from consideration for the remainder of the query."""
        self._check_window(window_index)
        pair_indices = np.asarray(pair_indices, dtype=INDEX_DTYPE)
        remaining = self.num_windows - (window_index + 1)
        self._next_due[pair_indices] = self.num_windows
        self.stats.skipped_evaluations += int(remaining) * int(len(pair_indices))

    def _check_window(self, window_index: int) -> None:
        if not 0 <= window_index < self.num_windows:
            raise QueryValidationError(
                f"window index {window_index} out of range [0, {self.num_windows})"
            )


def simulate_pair_schedule(
    correlations: np.ndarray,
    beta: float,
    jump_lengths_when_below: np.ndarray,
) -> Tuple[np.ndarray, int]:
    """Reference simulation of one pair's schedule across all windows (Fig. 2).

    ``correlations[k]`` is the pair's true correlation at window ``k`` and
    ``jump_lengths_when_below[k]`` the jump the bound would prescribe if the
    pair is evaluated at window ``k`` and found below ``beta``.  Returns the
    boolean array of windows at which an exact evaluation happens and the
    number of skipped windows.  Used by unit tests to validate
    :class:`JumpScheduler` against a transparent scalar model.
    """
    correlations = np.asarray(correlations, dtype=float)
    jump_lengths_when_below = np.asarray(jump_lengths_when_below, dtype=int)
    if correlations.shape != jump_lengths_when_below.shape:
        raise QueryValidationError("inputs must have the same length")
    num_windows = len(correlations)
    evaluated = np.zeros(num_windows, dtype=bool)
    k = 0
    skipped = 0
    while k < num_windows:
        evaluated[k] = True
        if correlations[k] >= beta:
            k += 1
            continue
        jump = max(1, int(jump_lengths_when_below[k]))
        skipped += min(jump - 1, num_windows - k - 1)
        k += jump
    return evaluated, skipped
