"""Top-k correlated pair queries across sliding windows.

The paper's problem definition fixes a correlation threshold ``beta`` in
advance; in exploratory analysis the analyst often wants the *k most
correlated pairs* per window instead and derives a threshold from them.  The
functions here answer that query on top of the same basic-window sketch
(Eq. 1), and expose the per-window effective threshold (the k-th value) so a
top-k run can seed a threshold query.

Two paths are provided:

``sliding_top_k``
    Sketch-based: one exact recombined matrix per window, partial-sorted for
    the top k (exact, cost comparable to TSUBASA's per-window work).
``top_k_brute_force``
    Direct Pearson computation per window (ground truth for tests).

Both report positively largest correlations by default, or largest absolute
correlations with ``absolute=True`` (mirroring the query's two threshold
modes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.config import DEFAULT_BASIC_WINDOW_SIZE, FLOAT_DTYPE, INDEX_DTYPE
from repro.core.basic_window import BasicWindowLayout
from repro.core.correlation import correlation_matrix
from repro.core.engine import validate_pair_subset
from repro.core.query import SlidingQuery
from repro.core.result import Edge
from repro.core.sketch import BasicWindowSketch, ensure_sketch_layout
from repro.exceptions import QueryValidationError
from repro.timeseries.matrix import TimeSeriesMatrix


@dataclass(frozen=True)
class TopKWindow:
    """The k most correlated pairs of one sliding window (descending order)."""

    window_index: int
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", np.asarray(self.rows, dtype=INDEX_DTYPE))
        object.__setattr__(self, "cols", np.asarray(self.cols, dtype=INDEX_DTYPE))
        object.__setattr__(self, "values", np.asarray(self.values, dtype=FLOAT_DTYPE))

    @property
    def k(self) -> int:
        """How many pairs this window reports (may be fewer than requested)."""
        return int(len(self.values))

    def pairs(self) -> List[Tuple[int, int, float]]:
        """``(i, j, correlation)`` triples in descending correlation order."""
        return [
            (int(i), int(j), float(v))
            for i, j, v in zip(self.rows, self.cols, self.values)
        ]

    def effective_threshold(self) -> float:
        """The smallest reported correlation (a data-driven ``beta`` candidate)."""
        if self.k == 0:
            return float("nan")
        return float(self.values[-1])


@dataclass(frozen=True)
class TopKResult:
    """Top-k answers for every window of a sliding query."""

    #: Wire-schema discriminator used by :mod:`repro.service.wire`.
    kind = "topk"

    query: SlidingQuery
    k: int
    absolute: bool
    windows: List[TopKWindow]

    @property
    def num_windows(self) -> int:
        return len(self.windows)

    def __iter__(self):
        return iter(self.windows)

    def __getitem__(self, index: int) -> TopKWindow:
        return self.windows[index]

    def effective_thresholds(self) -> np.ndarray:
        """Per-window k-th correlation values (NaN for empty windows)."""
        return np.array(
            [w.effective_threshold() for w in self.windows], dtype=FLOAT_DTYPE
        )

    def suggested_threshold(self) -> float:
        """A single threshold that would have captured the top k in most windows.

        Defined as the minimum of the per-window effective thresholds (ignoring
        empty windows), i.e. the loosest of the per-window cut-offs.
        """
        thresholds = self.effective_thresholds()
        finite = thresholds[np.isfinite(thresholds)]
        if len(finite) == 0:
            raise QueryValidationError("no windows reported any pairs")
        return float(finite.min())

    # ------------------------------------------------------- result protocol
    def iter_windows(self) -> Iterator[Tuple[int, TopKWindow]]:
        """Yield ``(window_index, payload)`` per window (result protocol)."""
        return ((w.window_index, w) for w in self.windows)

    def to_edges(self) -> List[Edge]:
        """Flatten the result to the protocol's uniform edge list (lag 0)."""
        edges: List[Edge] = []
        for window in self.windows:
            edges.extend(
                Edge(window.window_index, i, j, v) for i, j, v in window.pairs()
            )
        return edges

    def describe(self) -> str:
        """One-line summary used by reports (result protocol)."""
        ranking = "|c|" if self.absolute else "c"
        return (
            f"top-{self.k} by {ranking}: {self.num_windows} windows, "
            f"{sum(w.k for w in self.windows)} reported pairs"
        )

    def persistent_pairs(self, min_fraction: float = 0.5) -> List[Tuple[int, int]]:
        """Pairs appearing in the top k of at least ``min_fraction`` of windows."""
        if not 0.0 <= min_fraction <= 1.0:
            raise QueryValidationError(
                f"min_fraction must lie in [0, 1], got {min_fraction}"
            )
        counts: dict = {}
        for window in self.windows:
            for i, j, _ in window.pairs():
                counts[(i, j)] = counts.get((i, j), 0) + 1
        needed = min_fraction * max(1, self.num_windows)
        return sorted(pair for pair, count in counts.items() if count >= needed)


def select_top_k(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    k: int,
    absolute: bool,
    window_index: int,
) -> TopKWindow:
    """Canonical top-k selection: rank descending, ties by ascending ``(i, j)``.

    The tie-break makes the selection a *total order* over pairs, so which
    pairs survive a tie at the k-th value never depends on how the candidates
    were enumerated.  That partition-independence is what lets per-shard
    candidate lists merge to the exact serial answer
    (:func:`repro.parallel.merge.merge_topk_results`): any global top-k
    member necessarily ranks in its own shard's local top k under the same
    order, so re-ranking the union of shard candidates reproduces the serial
    selection bit for bit.
    """
    ranking = np.abs(values) if absolute else values
    k = min(k, len(values))
    if k == 0:
        empty = np.zeros(0)
        return TopKWindow(window_index, empty, empty, empty)
    # lexsort keys run least- to most-significant: rank first, then (i, j).
    order = np.lexsort((cols, rows, -ranking))[:k]
    return TopKWindow(window_index, rows[order], cols[order], values[order])


def _top_k_from_dense(
    corr: np.ndarray, k: int, absolute: bool, window_index: int
) -> TopKWindow:
    """Select the k largest upper-triangle entries of a dense correlation matrix."""
    n = corr.shape[0]
    iu, ju = np.triu_indices(n, k=1)
    return select_top_k(iu, ju, corr[iu, ju], k, absolute, window_index)


def _validate_k(k: int, num_series: int) -> None:
    if k < 1:
        raise QueryValidationError(f"k must be at least 1, got {k}")
    if num_series < 2:
        raise QueryValidationError("top-k queries need at least two series")


def sliding_top_k(
    matrix: TimeSeriesMatrix,
    query: SlidingQuery,
    k: int,
    basic_window_size: int = DEFAULT_BASIC_WINDOW_SIZE,
    absolute: Optional[bool] = None,
    sketch: Optional[BasicWindowSketch] = None,
    pairs: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> TopKResult:
    """The k most correlated pairs of every window, from the basic-window sketch.

    .. note::
       Prefer the unified front door: ``CorrelationSession(matrix).run(
       TopKQuery(..., k=k))`` (see :mod:`repro.api`) plans the sketch once and
       reuses it across queries.  This free function is kept as a thin
       compatibility shim and may be removed in a future major version.

    Parameters
    ----------
    matrix, query:
        The data and the sliding windows to evaluate.  The query's threshold is
        ignored (top-k replaces it); its ``threshold_mode`` provides the default
        for ``absolute``.
    k:
        Number of pairs per window.
    basic_window_size:
        Requested basic-window size for the sketch (aligned with the query the
        same way the Dangoron engine aligns it).
    absolute:
        Rank by ``|c|`` instead of ``c``.  Defaults to the query's mode.
    sketch:
        Prebuilt sketch whose layout matches what this function would build
        (``BasicWindowLayout.for_query(query, basic_window_size)``); supplied
        by the planner for cross-query reuse.
    pairs:
        Optional ``(rows, cols)`` pair subset; only these pairs compete for
        the window's top k.  Used by the sharded executor — per-pair
        recombination is documented bit-identical to gathering from the
        dense scan (:meth:`BasicWindowSketch.exact_pairs_scan`), and the
        canonical selection order is partition-independent, so merged shard
        candidates reproduce the full run exactly.
    """
    _validate_k(k, matrix.num_series)
    query.validate_against_length(matrix.length)
    if absolute is None:
        absolute = query.threshold_mode == "absolute"
    if pairs is not None:
        rows, cols = validate_pair_subset(pairs, matrix.num_series)

    layout = BasicWindowLayout.for_query(query, basic_window_size)
    if sketch is not None:
        ensure_sketch_layout(sketch, layout)
    else:
        sketch = BasicWindowSketch.build(matrix.values, layout)
    window_bw = query.window // layout.size

    windows: List[TopKWindow] = []
    for index, begin, _ in query.iter_windows():
        first, _ = layout.covering(begin, begin + query.window)
        if pairs is None:
            corr = sketch.exact_matrix_scan(first, window_bw)
            windows.append(_top_k_from_dense(corr, k, absolute, index))
        else:
            values = sketch.exact_pairs_scan(rows, cols, first, window_bw)
            windows.append(select_top_k(rows, cols, values, k, absolute, index))
    return TopKResult(query=query, k=k, absolute=absolute, windows=windows)


def top_k_brute_force(
    matrix: TimeSeriesMatrix,
    query: SlidingQuery,
    k: int,
    absolute: Optional[bool] = None,
) -> TopKResult:
    """Ground-truth top-k per window via direct Pearson computation."""
    _validate_k(k, matrix.num_series)
    query.validate_against_length(matrix.length)
    if absolute is None:
        absolute = query.threshold_mode == "absolute"

    windows: List[TopKWindow] = []
    for index, begin, end in query.iter_windows():
        corr = correlation_matrix(matrix.values[:, begin:end])
        windows.append(_top_k_from_dense(corr, k, absolute, index))
    return TopKResult(query=query, k=k, absolute=absolute, windows=windows)


def top_k_overlap(result_a: TopKResult, result_b: TopKResult) -> np.ndarray:
    """Per-window Jaccard overlap of the reported pair sets of two top-k runs.

    Used by tests and the E12 experiment to confirm the sketch-based path
    reports the same pairs as the brute-force path (overlap 1.0 everywhere,
    up to ties at the k-th value).
    """
    if result_a.num_windows != result_b.num_windows:
        raise QueryValidationError(
            f"window counts differ: {result_a.num_windows} vs {result_b.num_windows}"
        )
    overlaps = np.zeros(result_a.num_windows, dtype=FLOAT_DTYPE)
    for index, (wa, wb) in enumerate(zip(result_a.windows, result_b.windows)):
        set_a = {(int(i), int(j)) for i, j in zip(wa.rows, wa.cols)}
        set_b = {(int(i), int(j)) for i, j in zip(wb.rows, wb.cols)}
        union = set_a | set_b
        overlaps[index] = len(set_a & set_b) / len(union) if union else 1.0
    return overlaps
