"""The Dangoron engine: pruned sliding-window correlation matrix computation.

Per query the engine

1. chooses a basic-window size that divides both the window length ``l`` and
   the sliding step ``eta`` (so every sliding window is a union of whole basic
   windows) and builds the :class:`BasicWindowSketch` over the query range;
2. walks the windows in order, keeping for every pair the index of the next
   window at which it must be evaluated exactly (:class:`JumpScheduler`);
3. at each window, optionally applies **horizontal pruning** (pivot
   correlations plus the triangle bound) to drop pairs that cannot reach the
   threshold, evaluates the remaining due pairs exactly with the Eq. 1
   combination, emits the above-threshold values, and uses the Eq. 2 temporal
   bound to schedule the next evaluation of each below-threshold pair as far
   in the future as the bound allows (Fig. 2's jumping structure).

Pairs never evaluated in a window are reported as "no edge" for that window,
which is where the accuracy-for-speed trade-off of the paper comes from: the
Eq. 2 bound holds under a per-basic-window stationarity assumption, so a pair
whose correlation rises faster than the bound predicts is caught late.  The
``slack`` option tightens the effective threshold used by the bound to buy
recall back at the cost of fewer skips.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.config import (
    DEFAULT_BASIC_WINDOW_SIZE,
    DEFAULT_NUM_PIVOTS,
    FLOAT_DTYPE,
)
from repro.core.basic_window import BasicWindowLayout
from repro.core.bounds import (
    first_possible_crossing,
    first_possible_crossing_absolute,
    triangle_bounds_from_pivots,
)
from repro.core.engine import (
    SlidingCorrelationEngine,
    register_engine,
    validate_pair_subset,
)
from repro.core.horizontal import select_pivots
from repro.core.jumping import JumpScheduler
from repro.core.query import THRESHOLD_ABSOLUTE, SlidingQuery
from repro.core.result import (
    CorrelationSeriesResult,
    EngineStats,
    ThresholdedMatrix,
)
from repro.core.sketch import BasicWindowSketch, ensure_sketch_layout
from repro.exceptions import ParallelError, QueryValidationError
from repro.timeseries.matrix import TimeSeriesMatrix


@register_engine
class DangoronEngine(SlidingCorrelationEngine):
    """Sliding correlation computation with temporal jumping and horizontal pruning.

    Parameters
    ----------
    basic_window_size:
        Requested basic-window size; the engine uses the largest divisor of
        ``gcd(l, eta)`` not exceeding it (see
        :func:`repro.core.basic_window.choose_basic_window_size`).
    use_temporal_pruning:
        Enable the Eq. 2 jumping structure (Fig. 2).
    use_horizontal_pruning:
        Enable pivot-based triangle pruning inside each window.
    num_pivots, pivot_strategy:
        Horizontal-pruning configuration (ignored when it is disabled).
    slack:
        Subtracted from the threshold inside the temporal bound; ``0`` uses the
        paper's bound as-is, larger values skip less aggressively and recover
        recall on non-stationary data.
    prefix_combination:
        Use the O(1) prefix-sum combination instead of the faithful O(n_s)
        scan when evaluating pairs exactly (ablation; not part of the paper).
    seed:
        Seed for the pivot-selection RNG (only used by the random strategy).
    """

    name = "dangoron"
    exact = True

    def __init__(
        self,
        basic_window_size: int = DEFAULT_BASIC_WINDOW_SIZE,
        use_temporal_pruning: bool = True,
        use_horizontal_pruning: bool = False,
        num_pivots: int = DEFAULT_NUM_PIVOTS,
        pivot_strategy: str = "kcenter",
        slack: float = 0.0,
        prefix_combination: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        if slack < 0:
            raise QueryValidationError(f"slack must be non-negative, got {slack}")
        self.basic_window_size = basic_window_size
        self.use_temporal_pruning = use_temporal_pruning
        self.use_horizontal_pruning = use_horizontal_pruning
        self.num_pivots = num_pivots
        self.pivot_strategy = pivot_strategy
        self.slack = slack
        self.prefix_combination = prefix_combination
        self.seed = seed

    # ------------------------------------------------------------------ public
    def describe(self) -> str:
        features = []
        if self.use_temporal_pruning:
            features.append("temporal")
        if self.use_horizontal_pruning:
            features.append(f"horizontal({self.num_pivots})")
        suffix = "+".join(features) if features else "no-pruning"
        return f"{self.name}[{suffix}, b<={self.basic_window_size}]"

    def plan_layout(self, query: SlidingQuery) -> BasicWindowLayout:
        """The layout ``run`` builds its sketch for (see the planner protocol)."""
        return BasicWindowLayout.for_query(query, self.basic_window_size)

    def needs_raw_values(self, query: SlidingQuery) -> bool:
        """Raw values are only read for pivot selection (horizontal pruning).

        With temporal pruning alone, a planner-supplied sketch makes the run
        sketch-only, so out-of-core (tiled) execution never materializes the
        matrix.
        """
        return self.use_horizontal_pruning

    def supports_pair_subset(self) -> bool:
        """Shardable whenever per-pair decisions are partition-independent.

        With temporal pruning every pair's evaluation schedule depends only
        on its own values and the Eq. 2 bound.  Horizontal pruning is
        per-pair too: the pivot bounds are computed from the full pivot
        rows against *all* series (identically in every shard, from the
        shared sketch), and each due pair is kept or pruned purely from its
        own bound entry — so a run restricted to any pair subset reproduces
        exactly the schedule (and therefore the edges) of the full run.

        The single exception is unseeded random pivot selection: each shard
        would draw its own pivots and the per-shard bounds — hence schedules
        — would diverge from the serial run.
        """
        return not (
            self.use_horizontal_pruning
            and self.pivot_strategy == "random"
            and self.seed is None
        )

    def run(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        *,
        sketch: Optional[BasicWindowSketch] = None,
        pairs: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> CorrelationSeriesResult:
        # Raw values are read lazily (sketch build, pivot selection): with a
        # planner-supplied sketch and no horizontal pruning, the whole run is
        # sketch-only — which is what lets out-of-core sessions answer without
        # ever materializing a dense matrix (see repro.core.tiled).
        query.validate_against_length(matrix.length)
        n = matrix.num_series
        if pairs is not None and not self.supports_pair_subset():
            raise ParallelError(
                "dangoron with horizontal pruning and unseeded random pivots "
                "cannot run on a pair subset: each shard would draw different "
                "pivots and diverge from the serial run; pass seed=... or a "
                "deterministic pivot_strategy"
            )

        layout = self.plan_layout(query)
        if sketch is not None:
            ensure_sketch_layout(sketch, layout)
            # Reused sketch: report the original (one-off) build cost so the
            # precompute/query split of the paper's tables stays meaningful.
            sketch_seconds = sketch.build_seconds
            sketch_reused = 1.0
        else:
            build_start = time.perf_counter()
            sketch = BasicWindowSketch.build(matrix.values, layout)
            sketch_seconds = time.perf_counter() - build_start
            sketch_reused = 0.0

        step_bw = query.step // layout.size
        window_bw = query.window // layout.size
        num_windows = query.num_windows

        if pairs is not None:
            rows, cols = validate_pair_subset(pairs, n)
        else:
            rows, cols = np.triu_indices(n, k=1)
        scheduler = JumpScheduler(len(rows), num_windows)

        pivots: Optional[np.ndarray] = None
        if self.use_horizontal_pruning:
            rng = np.random.default_rng(self.seed)
            first_window = matrix.values[:, query.start : query.start + query.window]
            pivots = select_pivots(
                first_window, self.num_pivots, self.pivot_strategy, rng
            )

        corr_prefix = sketch.corr_prefix if self.use_temporal_pruning else None
        absolute = query.threshold_mode == THRESHOLD_ABSOLUTE

        matrices: List[ThresholdedMatrix] = []
        pruned_horizontally = 0
        pivot_evaluations = 0

        query_start_time = time.perf_counter()
        for k in range(num_windows):
            window_start_col = query.start + k * query.step
            bw_first, _ = layout.covering(
                window_start_col, window_start_col + query.window
            )
            due = scheduler.due_indices(k)
            eval_positions = due
            max_steps = num_windows - 1 - k

            # ---------------------------------------------- horizontal pruning
            # Runs whenever any pair is due.  The decision per pair is a pure
            # function of its own bound entry, so serial and sharded runs
            # prune — and schedule — identically for any pair partition
            # (a shard with no due pairs skips only the pivot evaluations).
            if pivots is not None and len(due) > 0:
                pivot_rows = np.repeat(pivots, n)
                pivot_cols = np.tile(np.arange(n), len(pivots))
                pivot_corrs = sketch.exact_pairs_scan(
                    pivot_rows, pivot_cols, bw_first, window_bw
                ).reshape(len(pivots), n)
                pivot_evaluations += len(pivots) * n
                lower, upper = triangle_bounds_from_pivots(pivot_corrs)
                if absolute:
                    cannot_be_edge = (
                        upper[rows[due], cols[due]] < query.threshold
                    ) & (-lower[rows[due], cols[due]] < query.threshold)
                else:
                    cannot_be_edge = upper[rows[due], cols[due]] < query.threshold
                pruned = due[cannot_be_edge]
                eval_positions = due[~cannot_be_edge]
                pruned_horizontally += int(len(pruned))
                if len(pruned):
                    if (
                        self.use_temporal_pruning
                        and not absolute
                        and max_steps >= 1
                    ):
                        # The triangle upper bound is >= the true correlation,
                        # so it is a valid (conservative) stand-in for Eq. 2.
                        surrogate = upper[rows[pruned], cols[pruned]]
                        jumps = first_possible_crossing(
                            surrogate,
                            query.threshold,
                            corr_prefix,
                            rows[pruned],
                            cols[pruned],
                            bw_first,
                            step_bw,
                            window_bw,
                            max_steps,
                            slack=self.slack,
                        )
                    else:
                        jumps = np.ones(len(pruned), dtype=np.int64)
                    scheduler.schedule_jumps(k, pruned, jumps)

            # ---------------------------------------------------- exact values
            window_rows = np.empty(0, dtype=np.int64)
            window_cols = np.empty(0, dtype=np.int64)
            window_vals = np.empty(0, dtype=FLOAT_DTYPE)
            if len(eval_positions):
                pair_rows = rows[eval_positions]
                pair_cols = cols[eval_positions]
                if self.prefix_combination:
                    if pairs is None:
                        dense = sketch.exact_matrix_fast(bw_first, window_bw)
                        exact_vals = dense[pair_rows, pair_cols]
                    else:
                        exact_vals = sketch.exact_pairs_fast(
                            pair_rows, pair_cols, bw_first, window_bw
                        )
                elif pairs is None and len(eval_positions) * 2 > len(rows):
                    # When most pairs are due (typically the first window) the
                    # dense recombination is cheaper than per-pair gathers and
                    # performs exactly the same amount of Eq. 1 work.  Pair
                    # subsets never take this path: a shard computing the full
                    # N x N matrix would multiply the window's work by the
                    # shard count.
                    dense = sketch.exact_matrix_scan(bw_first, window_bw)
                    exact_vals = dense[pair_rows, pair_cols]
                else:
                    exact_vals = sketch.exact_pairs_scan(
                        pair_rows, pair_cols, bw_first, window_bw
                    )
                scheduler.record_evaluations(k, eval_positions)

                keep = query.keep_mask(exact_vals)
                window_rows = pair_rows[keep]
                window_cols = pair_cols[keep]
                window_vals = exact_vals[keep]

                below = eval_positions[~keep]
                if (
                    self.use_temporal_pruning
                    and len(below)
                    and max_steps >= 1
                ):
                    below_vals = exact_vals[~keep]
                    if absolute:
                        jumps = first_possible_crossing_absolute(
                            below_vals,
                            query.threshold,
                            corr_prefix,
                            rows[below],
                            cols[below],
                            bw_first,
                            step_bw,
                            window_bw,
                            max_steps,
                            slack=self.slack,
                        )
                    else:
                        jumps = first_possible_crossing(
                            below_vals,
                            query.threshold,
                            corr_prefix,
                            rows[below],
                            cols[below],
                            bw_first,
                            step_bw,
                            window_bw,
                            max_steps,
                            slack=self.slack,
                        )
                    scheduler.schedule_jumps(k, below, jumps)

            matrices.append(
                ThresholdedMatrix(n, window_rows, window_cols, window_vals)
            )
        query_seconds = time.perf_counter() - query_start_time

        stats = EngineStats(
            engine=self.describe(),
            num_series=n,
            num_windows=num_windows,
            exact_evaluations=scheduler.stats.exact_evaluations,
            skipped_by_jumping=scheduler.stats.skipped_evaluations,
            pruned_horizontally=pruned_horizontally,
            candidate_pairs=len(rows),
            sketch_build_seconds=sketch_seconds,
            query_seconds=query_seconds,
            extra={
                "sketch_reused": sketch_reused,
                "pivot_evaluations": float(pivot_evaluations),
                "basic_window_size": float(layout.size),
                "num_basic_windows_per_window": float(window_bw),
                "mean_jump_length": scheduler.stats.mean_jump_length(),
                "sketch_memory_bytes": float(sketch.memory_bytes()),
            },
        )
        return CorrelationSeriesResult(
            query, matrices, stats, series_ids=matrix.series_ids
        )
