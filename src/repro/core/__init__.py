"""Dangoron core: sketches, bounds, pruning, and the sliding-query engine (S2, S3).

The public entry points are :class:`SlidingQuery` (what to compute),
:class:`DangoronEngine` (how Dangoron computes it) and
:class:`CorrelationSeriesResult` (the answer).  The lower-level pieces —
basic-window layouts, the sketch, the Eq. 2 / triangle bounds and the jump
scheduler — are exported for tests, ablations, and users who want to build
their own pruning policies.
"""

from repro.core.basic_window import (
    BasicWindowLayout,
    basic_window_correlations,
    basic_window_statistics,
    choose_basic_window_size,
    combine_pair_eq1,
    combine_pair_from_series,
)
from repro.core.bounds import (
    first_possible_crossing,
    first_possible_crossing_absolute,
    max_skippable_steps_scalar,
    temporal_lower_bound,
    temporal_upper_bound,
    triangle_bounds,
    triangle_bounds_from_pivots,
)
from repro.core.correlation import (
    RunningPairCorrelation,
    correlation_against,
    correlation_from_sums,
    correlation_matrix,
    pearson,
)
from repro.core.dangoron import DangoronEngine
from repro.core.engine import (
    SlidingCorrelationEngine,
    available_engines,
    create_engine,
    engine_options,
    register_engine,
)
from repro.core.horizontal import (
    HorizontalPruner,
    HorizontalPruneResult,
    prunable_pairs,
    select_pivots,
)
from repro.core.incremental import IncrementalEngine
from repro.core.jumping import JumpScheduler, JumpStats, simulate_pair_schedule
from repro.core.lag import (
    LagMatrices,
    best_lag,
    lagged_correlation,
    lagged_correlation_matrix,
    lead_lag_graph_edges,
    sliding_lagged_correlation,
)
from repro.core.query import (
    THRESHOLD_ABSOLUTE,
    THRESHOLD_SIGNED,
    SlidingQuery,
)
from repro.core.result import (
    CorrelationSeriesResult,
    Edge,
    EngineStats,
    ThresholdedMatrix,
)
from repro.core.sketch import BasicWindowSketch
from repro.core.tiled import (
    ChunkBackedMatrix,
    TilePlan,
    build_sketch_tiled,
    plan_tiles,
)
from repro.core.topk import (
    TopKResult,
    TopKWindow,
    sliding_top_k,
    top_k_brute_force,
    top_k_overlap,
)

__all__ = [
    "BasicWindowLayout",
    "BasicWindowSketch",
    "ChunkBackedMatrix",
    "CorrelationSeriesResult",
    "DangoronEngine",
    "Edge",
    "EngineStats",
    "HorizontalPruneResult",
    "HorizontalPruner",
    "IncrementalEngine",
    "JumpScheduler",
    "JumpStats",
    "LagMatrices",
    "RunningPairCorrelation",
    "SlidingCorrelationEngine",
    "SlidingQuery",
    "TilePlan",
    "THRESHOLD_ABSOLUTE",
    "THRESHOLD_SIGNED",
    "ThresholdedMatrix",
    "TopKResult",
    "TopKWindow",
    "available_engines",
    "basic_window_correlations",
    "basic_window_statistics",
    "best_lag",
    "build_sketch_tiled",
    "choose_basic_window_size",
    "combine_pair_eq1",
    "combine_pair_from_series",
    "correlation_against",
    "correlation_from_sums",
    "correlation_matrix",
    "create_engine",
    "engine_options",
    "first_possible_crossing",
    "first_possible_crossing_absolute",
    "lagged_correlation",
    "lagged_correlation_matrix",
    "lead_lag_graph_edges",
    "max_skippable_steps_scalar",
    "pearson",
    "plan_tiles",
    "prunable_pairs",
    "register_engine",
    "select_pivots",
    "simulate_pair_schedule",
    "sliding_lagged_correlation",
    "sliding_top_k",
    "temporal_lower_bound",
    "temporal_upper_bound",
    "top_k_brute_force",
    "top_k_overlap",
    "triangle_bounds",
    "triangle_bounds_from_pivots",
]
