"""Bounded-memory (out-of-core) sketch builds over column-chunked sources.

Every execution path of the library recombines answers from the
:class:`~repro.core.sketch.BasicWindowSketch` — per-basic-window sufficient
statistics that are computed *independently per basic window*.  That
independence is exactly what out-of-core systems exploit (StatStream's grid
statistics and ParCorr's projection sketches both stream fixed-size blocks
through bounded state): the sketch of a catalog that does not fit in RAM can
be assembled tile by tile, where a *tile* is a contiguous run of whole basic
windows whose raw columns are resident at once.

This module provides that path:

``build_sketch_tiled(source, layout, memory_budget)``
    Streams canonical-layout column blocks from a chunk source (a
    :class:`~repro.storage.chunk_store.ChunkStore`, its lazy on-disk
    :class:`~repro.storage.chunk_store.ChunkStoreReader`, or any object with
    the same ``num_series``/``length``/``iter_chunks()`` surface), computes
    each tile's statistics with the *same element-wise operations as the
    dense build*, and returns a sketch **bit-identical** to
    ``BasicWindowSketch.build(dense_values, layout)`` (property-tested across
    random tile boundaries in ``tests/property/test_tiled_property.py``).

``ChunkBackedMatrix``
    A :class:`~repro.timeseries.matrix.TimeSeriesMatrix` facade over a chunk
    source that defers materializing the dense ``(N, L)`` array until
    something actually reads raw values.  Sketch-only executions (aligned
    threshold and top-k queries with a planner-supplied sketch) never do, so
    a whole query can run without the matrix ever existing in RAM.

The resident working set of a tiled build is one tile buffer
(``N x tile_columns x 8`` bytes, bounded by ``memory_budget``) plus the one
source chunk currently being copied in; the output statistics arrays are the
sketch itself and are identical for dense and tiled builds.

The module deliberately has no dependency on :mod:`repro.storage` (which
imports :mod:`repro.core`): sources are duck-typed.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.core.basic_window import BasicWindowLayout
from repro.core.sketch import BasicWindowSketch, pair_corrs_from_stats
from repro.exceptions import DataValidationError, SketchError
from repro.timeseries.matrix import TimeAxis, TimeSeriesMatrix

#: Bytes per stored value (everything internal is ``float64``).
VALUE_ITEMSIZE = np.dtype(FLOAT_DTYPE).itemsize


def tile_source_for(matrix: TimeSeriesMatrix):
    """The chunk source behind a matrix (itself, for in-RAM matrices).

    :class:`ChunkBackedMatrix` exposes its backing store; a plain
    :class:`TimeSeriesMatrix` is adapted so its columns stream as canonical
    blocks — tiled builds then bound the *build working set* even when the
    data itself is resident.
    """
    source = getattr(matrix, "tile_source", None)
    if source is not None:
        return source
    return _MatrixTileSource(matrix)


class _MatrixTileSource:
    """Adapter presenting an in-RAM matrix through the chunk-source protocol."""

    #: Columns per yielded block; sized so one block stays small relative to
    #: any realistic memory budget.
    BLOCK_COLUMNS = 4096

    def __init__(self, matrix: TimeSeriesMatrix) -> None:
        self._matrix = matrix

    @property
    def num_series(self) -> int:
        return self._matrix.num_series

    @property
    def length(self) -> int:
        return self._matrix.length

    def iter_chunks(self) -> Iterator[np.ndarray]:
        yield from self._matrix.iter_column_blocks(self.BLOCK_COLUMNS)

    def chunk_byte_sizes(self) -> List[int]:
        n = self._matrix.num_series
        return [
            min(self.BLOCK_COLUMNS, self._matrix.length - start)
            * n
            * VALUE_ITEMSIZE
            for start in range(0, self._matrix.length, self.BLOCK_COLUMNS)
        ]


# ---------------------------------------------------------------------------
# Tile planning
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TilePlan:
    """How a tiled build will walk a layout under a memory budget."""

    layout: BasicWindowLayout
    num_series: int
    memory_budget: int
    windows_per_tile: int

    @property
    def tile_columns(self) -> int:
        return self.windows_per_tile * self.layout.size

    @property
    def tile_bytes(self) -> int:
        """Bytes of the resident raw-data tile buffer."""
        return self.num_series * self.tile_columns * VALUE_ITEMSIZE

    @property
    def num_tiles(self) -> int:
        return -(-self.layout.count // self.windows_per_tile)

    def describe(self) -> str:
        return (
            f"tiles[{self.num_tiles} x {self.windows_per_tile} basic windows, "
            f"{self.tile_bytes} B resident / {self.memory_budget} B budget]"
        )


def plan_tiles(
    layout: BasicWindowLayout, num_series: int, memory_budget: int
) -> TilePlan:
    """Choose the largest whole-basic-window tile that fits the budget.

    ``memory_budget`` bounds the resident raw-data tile (the statistics
    arrays are the sketch itself, identical for dense and tiled builds; one
    source chunk additionally rides along while it is copied into the tile).
    A budget below one basic window's columns cannot be honoured and raises
    :class:`SketchError` naming the minimum.
    """
    if num_series < 1:
        raise SketchError(f"num_series must be positive, got {num_series}")
    if memory_budget < 1:
        raise SketchError(f"memory_budget must be positive, got {memory_budget}")
    window_bytes = num_series * layout.size * VALUE_ITEMSIZE
    if memory_budget < window_bytes:
        raise SketchError(
            f"memory_budget of {memory_budget} bytes is below one basic-window "
            f"tile: {window_bytes} bytes ({num_series} series x {layout.size} "
            f"columns x {VALUE_ITEMSIZE} bytes)"
        )
    windows_per_tile = min(layout.count, memory_budget // window_bytes)
    return TilePlan(
        layout=layout,
        num_series=num_series,
        memory_budget=memory_budget,
        windows_per_tile=int(windows_per_tile),
    )


def _iter_aligned_tiles(
    source, layout: BasicWindowLayout, windows_per_tile: int
) -> Iterator[Tuple[int, np.ndarray]]:
    """Assemble the source's chunk stream into layout-aligned tiles.

    Yields ``(first_basic_window, values)`` where ``values`` is an
    ``(N, k * size)`` block covering basic windows ``[first, first + k)``.
    The same preallocated buffer is reused for every full tile, so callers
    must consume a tile before advancing the iterator.
    """
    n = source.num_series
    tile_columns = windows_per_tile * layout.size
    buffer = np.empty((n, tile_columns), dtype=FLOAT_DTYPE)
    filled = 0
    emitted_windows = 0
    position = 0  # absolute column index of the next chunk's first column
    for chunk in source.iter_chunks():
        width = chunk.shape[1]
        chunk_start = position
        position += width
        lo = max(chunk_start, layout.covered_start)
        hi = min(position, layout.covered_end)
        if hi <= lo:
            continue
        piece = chunk[:, lo - chunk_start : hi - chunk_start]
        while piece.shape[1]:
            take = min(tile_columns - filled, piece.shape[1])
            buffer[:, filled : filled + take] = piece[:, :take]
            filled += take
            piece = piece[:, take:]
            if filled == tile_columns:
                yield emitted_windows, buffer
                emitted_windows += windows_per_tile
                filled = 0
    if filled:
        if filled % layout.size:
            raise SketchError(
                f"chunk stream ended mid-basic-window: {filled} residual "
                f"columns are not a multiple of the basic window size "
                f"{layout.size}"
            )
        yield emitted_windows, buffer[:, :filled]
        emitted_windows += filled // layout.size
    if emitted_windows != layout.count:
        raise SketchError(
            f"chunk stream covered {emitted_windows} basic windows but the "
            f"layout expects {layout.count}"
        )


def _tile_pair_sumprods(
    blocks: np.ndarray, out: np.ndarray, workers: int
) -> None:
    """Fill ``out`` with the tile's per-window pair sums of products.

    ``workers > 1`` partitions the pair space by contiguous *row blocks* of
    the ``(i, j)`` plane — each worker computes
    ``einsum("iws,jws->wij")`` for its row slice into a disjoint slab of
    ``out``.  Per output element the reduction (over the basic-window axis
    ``s``) is identical to the single einsum's, so the parallel build stays
    bit-identical to the dense one.
    """
    n = blocks.shape[0]
    workers = max(1, min(int(workers), n))
    if workers == 1:
        np.einsum("iws,jws->wij", blocks, blocks, out=out)
        return
    boundaries = np.linspace(0, n, workers + 1).astype(int)
    spans = [
        (int(boundaries[k]), int(boundaries[k + 1]))
        for k in range(workers)
        if boundaries[k + 1] > boundaries[k]
    ]

    def fill(span: Tuple[int, int]) -> None:
        i0, i1 = span
        np.einsum("iws,jws->wij", blocks[i0:i1], blocks, out=out[:, i0:i1, :])

    with ThreadPoolExecutor(max_workers=len(spans)) as pool:
        for future in [pool.submit(fill, span) for span in spans]:
            future.result()


def build_sketch_tiled(
    source,
    layout: BasicWindowLayout,
    memory_budget: int,
    pairwise: bool = True,
    workers: Optional[int] = None,
) -> BasicWindowSketch:
    """Build a :class:`BasicWindowSketch` by streaming tiles through the budget.

    Parameters
    ----------
    source:
        Chunk source: ``num_series``, ``length`` and ``iter_chunks()``
        yielding C-contiguous float64 ``(N, k)`` column blocks in order.
    layout:
        The basic-window layout to sketch (must fit inside the source).
    memory_budget:
        Bytes allowed for the resident raw-data tile (see :func:`plan_tiles`).
    pairwise:
        As in :meth:`BasicWindowSketch.build`.
    workers:
        Partition the pair space of the resident tile across this many
        threads (``None``/``1`` computes it in one einsum).  Results are
        bit-identical either way.

    The returned sketch is bit-identical to
    ``BasicWindowSketch.build(dense, layout, pairwise)`` over the same data.
    """
    started = time.perf_counter()
    n = int(source.num_series)
    if layout.covered_end > source.length:
        raise SketchError(
            f"layout covers columns up to {layout.covered_end} but the source "
            f"has only {source.length} columns"
        )
    plan = plan_tiles(layout, n, memory_budget)
    size = layout.size
    count = layout.count

    series_sums = np.empty((n, count), dtype=FLOAT_DTYPE)
    series_sumsqs = np.empty((n, count), dtype=FLOAT_DTYPE)
    pair_sumprods = (
        np.empty((count, n, n), dtype=FLOAT_DTYPE) if pairwise else None
    )
    pair_corrs = np.empty((count, n, n), dtype=FLOAT_DTYPE) if pairwise else None

    for first, tile in _iter_aligned_tiles(source, layout, plan.windows_per_tile):
        tile_count = tile.shape[1] // size
        blocks = tile.reshape(n, tile_count, size)
        span = slice(first, first + tile_count)
        series_sums[:, span] = blocks.sum(axis=2)
        series_sumsqs[:, span] = np.einsum("nws,nws->nw", blocks, blocks)
        if pairwise:
            _tile_pair_sumprods(blocks, pair_sumprods[span], workers or 1)
            pair_corrs[span] = pair_corrs_from_stats(
                series_sums[:, span],
                series_sumsqs[:, span],
                pair_sumprods[span],
                size,
            )

    return BasicWindowSketch(
        layout=layout,
        series_sums=series_sums,
        series_sumsqs=series_sumsqs,
        pair_sumprods=pair_sumprods,
        pair_corrs=pair_corrs,
        build_seconds=time.perf_counter() - started,
    )


# ---------------------------------------------------------------------------
# Lazily-materialized matrix facade
# ---------------------------------------------------------------------------

class ChunkBackedMatrix(TimeSeriesMatrix):
    """A :class:`TimeSeriesMatrix` over a chunk source, materialized lazily.

    Shape, length and series ids come from the source's metadata; the dense
    ``(N, L)`` array is only assembled the first time something reads raw
    values (``.values``, ``window()``, unaligned edge correction, streaming).
    Sketch-only executions never do, which is what lets
    ``CorrelationSession.from_chunk_store(..., memory_budget=...)`` answer
    aligned queries over catalogs larger than RAM.

    ``materialized`` reports whether the dense view was ever built — the
    out-of-core benchmark asserts it stays ``False`` for tiled runs.
    """

    def __init__(self, source, time_axis: Optional[TimeAxis] = None) -> None:
        # Deliberately does NOT call TimeSeriesMatrix.__init__ (which copies a
        # dense array); only the metadata attributes are set up.
        if source.num_series < 1:
            raise DataValidationError(
                f"chunk source must hold at least one series, got "
                f"{source.num_series}"
            )
        if source.length < 2:
            raise DataValidationError(
                "each time series must contain at least two observations, "
                f"got length {source.length}"
            )
        self._source = source
        self._materialized: Optional[np.ndarray] = None
        series_ids = [str(s) for s in source.series_ids]
        if len(set(series_ids)) != len(series_ids):
            raise DataValidationError("series ids must be unique")
        self._series_ids = series_ids
        self._id_to_row = {sid: i for i, sid in enumerate(series_ids)}
        self._time_axis = time_axis if time_axis is not None else TimeAxis()

    # ------------------------------------------------------------------ source
    @property
    def tile_source(self):
        """The backing chunk source (consumed by the tiled sketch builder)."""
        return self._source

    @property
    def materialized(self) -> bool:
        """Whether the dense values array has been assembled."""
        return self._materialized is not None

    # ------------------------------------------------------------------ values
    @property
    def _values(self) -> np.ndarray:  # type: ignore[override]
        # Every inherited method that touches raw data goes through this
        # attribute; resolving it as a property makes materialization lazy
        # without overriding each method.
        if (
            self._materialized is not None
            and self._materialized.shape[1] != self._source.length
        ):
            # The source grew (columns appended to a live store) after
            # materialization; a stale dense view would silently truncate
            # windows that validation (against the live length) admits.
            self._materialized = None
        if self._materialized is None:
            pieces = list(self._source.iter_chunks())
            if not pieces:
                raise DataValidationError("chunk source contains no columns")
            dense = np.concatenate(pieces, axis=1)
            dense = np.ascontiguousarray(dense, dtype=FLOAT_DTYPE)
            dense.setflags(write=False)
            self._materialized = dense
        return self._materialized

    # ------------------------------------------------------------------- shape
    @property
    def num_series(self) -> int:
        return int(self._source.num_series)

    @property
    def length(self) -> int:
        return int(self._source.length)

    @property
    def shape(self) -> tuple:
        return (self.num_series, self.length)

    # ---------------------------------------------------------------- blocks
    def iter_column_blocks(self, block_columns: int = 1024) -> Iterator[np.ndarray]:
        """Canonical column blocks, streamed from the source when unmaterialized."""
        if (
            self._materialized is not None
            and self._materialized.shape[1] == self._source.length
        ):
            yield from super().iter_column_blocks(block_columns)
            return
        yield from reblock_columns(self._source.iter_chunks(), block_columns)

    def __repr__(self) -> str:
        state = "materialized" if self.materialized else "lazy"
        return (
            f"ChunkBackedMatrix(num_series={self.num_series}, "
            f"length={self.length}, {state})"
        )


class ColumnReblocker:
    """Incrementally re-chunk a column-block stream to fixed boundaries.

    ``feed(chunk)`` yields every completed ``block_columns``-wide block;
    ``flush()`` returns the final partial block (or ``None``).  The emitted
    blocks carry exactly the bytes the dense matrix's ``iter_column_blocks``
    would yield for the same data, whatever the input chunking — this is
    what keeps content fingerprints (and therefore sketch cache keys)
    identical between in-RAM matrices and chunk sources, and it lets the
    sketch cache hash a cold source *during* the tile pass instead of
    reading it twice.
    """

    def __init__(self, block_columns: int) -> None:
        if block_columns < 1:
            raise SketchError(f"block_columns must be positive, got {block_columns}")
        self.block_columns = block_columns
        self._pending: List[np.ndarray] = []
        self._pending_columns = 0

    def _stitched(self) -> np.ndarray:
        if len(self._pending) == 1:
            return self._pending[0]
        return np.concatenate(self._pending, axis=1)

    def feed(self, chunk: np.ndarray) -> Iterator[np.ndarray]:
        self._pending.append(chunk)
        self._pending_columns += chunk.shape[1]
        if self._pending_columns < self.block_columns:
            return
        stitched = self._stitched()
        emit = (self._pending_columns // self.block_columns) * self.block_columns
        for start in range(0, emit, self.block_columns):
            yield np.ascontiguousarray(stitched[:, start : start + self.block_columns])
        remainder = stitched[:, emit:]
        self._pending = [remainder] if remainder.shape[1] else []
        self._pending_columns = remainder.shape[1]

    def flush(self) -> Optional[np.ndarray]:
        if not self._pending_columns:
            return None
        block = np.ascontiguousarray(self._stitched())
        self._pending = []
        self._pending_columns = 0
        return block

    def peek(self) -> Optional[np.ndarray]:
        """The buffered partial block *without* consuming it (or ``None``).

        Fingerprint chaining (:mod:`repro.storage.cache`) finalizes a running
        digest after every append: the complete blocks are already hashed, and
        the pending tail must be hashed as the stream's final partial block —
        while staying buffered so the *next* append keeps extending it.
        """
        if not self._pending_columns:
            return None
        return np.ascontiguousarray(self._stitched())


def reblock_columns(
    chunks: Iterable[np.ndarray], block_columns: int
) -> Iterator[np.ndarray]:
    """Generator form of :class:`ColumnReblocker` over a whole chunk stream."""
    reblocker = ColumnReblocker(block_columns)
    for chunk in chunks:
        yield from reblocker.feed(chunk)
    tail = reblocker.flush()
    if tail is not None:
        yield tail
