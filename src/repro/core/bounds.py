"""Correlation bounds used for pruning.

Two families of bounds drive Dangoron's pruning:

* The **temporal bound** (Eq. 2 of the paper).  When the query window slides
  forward, the basic windows that *leave* the window are already known from
  the sketch while the incoming ones are bounded by 1.  Under the paper's
  assumption that basic windows are samples from a common distribution (so the
  window correlation is approximately the average of its basic-window
  correlations), the correlation after ``k`` basic windows have slid out
  satisfies

  .. math::  Corr_{t+k} \\le Corr_t + \\frac{1}{n_s}\\Big(k - \\sum_{i=1}^{k} c_i\\Big)

  where the :math:`c_i` are the basic-window correlations of the outgoing
  windows.  Because every increment adds :math:`(1 - c_i)/n_s \\ge 0`, the
  bound is non-decreasing in ``k`` and the first window whose bound reaches
  the threshold can be found by binary search (Fig. 2's jumping structure).

* The **horizontal (triangle) bound**.  Pearson correlations are cosines of
  angles between centred vectors, so for any pivot series ``z``

  .. math::  c_{xz} c_{yz} - \\sqrt{(1-c_{xz}^2)(1-c_{yz}^2)} \\;\\le\\; c_{xy}
             \\;\\le\\; c_{xz} c_{yz} + \\sqrt{(1-c_{xz}^2)(1-c_{yz}^2)}

  which is exact (no distributional assumption) and lets one window's pivot
  correlations prune many pairs without computing them.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.exceptions import QueryValidationError

ArrayOrFloat = Union[float, np.ndarray]


# ---------------------------------------------------------------------------
# Temporal (Eq. 2) bound
# ---------------------------------------------------------------------------

def temporal_upper_bound(
    corr_now: ArrayOrFloat,
    outgoing_count: ArrayOrFloat,
    outgoing_corr_sum: ArrayOrFloat,
    num_basic_windows: int,
) -> ArrayOrFloat:
    """Eq. 2: upper bound on the correlation after some basic windows slide out.

    Parameters
    ----------
    corr_now:
        Current exact window correlation(s).
    outgoing_count:
        How many basic windows will have left the window (``k`` in Eq. 2).
    outgoing_corr_sum:
        Sum of the basic-window correlations of those outgoing windows.
    num_basic_windows:
        ``n_s``, the number of basic windows per query window.
    """
    if num_basic_windows <= 0:
        raise QueryValidationError("num_basic_windows must be positive")
    return corr_now + (outgoing_count - outgoing_corr_sum) / float(num_basic_windows)


def temporal_lower_bound(
    corr_now: ArrayOrFloat,
    outgoing_count: ArrayOrFloat,
    outgoing_corr_sum: ArrayOrFloat,
    num_basic_windows: int,
) -> ArrayOrFloat:
    """Symmetric lower bound: each slide can decrease the correlation by at most
    ``(1 + c_i) / n_s`` (the outgoing window's contribution is replaced by one
    bounded below by -1)."""
    if num_basic_windows <= 0:
        raise QueryValidationError("num_basic_windows must be positive")
    return corr_now - (outgoing_count + outgoing_corr_sum) / float(num_basic_windows)


def first_possible_crossing(
    corr_now: np.ndarray,
    beta: float,
    corr_prefix: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    bw_start: int,
    step_bw: int,
    num_basic_windows: int,
    max_steps: int,
    slack: float = 0.0,
    negate: bool = False,
) -> np.ndarray:
    """Smallest number of *window* steps after which Eq. 2 allows crossing ``beta``.

    For each pair ``p`` (given by ``rows[p], cols[p]``) whose current window
    starts at basic window ``bw_start`` and whose correlation ``corr_now[p]``
    is below the threshold, returns the smallest ``m >= 1`` such that the
    Eq. 2 upper bound after ``m`` window slides (``m * step_bw`` outgoing basic
    windows) reaches ``beta - slack``.  If no ``m <= max_steps`` reaches the
    threshold, ``max_steps + 1`` is returned, meaning the pair can be skipped
    for the rest of the query.

    The caller interprets the result as: the pair's next exact evaluation is
    due at window ``current + m``; windows ``current+1 … current+m-1`` are
    skipped (reported as below threshold).

    ``corr_prefix`` is the sketch's ``(num_bw + 1, N, N)`` prefix-sum tensor of
    basic-window correlations; ``slack`` tightens the effective threshold to
    trade skipped work for recall (``slack > 0`` skips less aggressively).

    ``negate=True`` applies the bound to the *negated* correlation (used for
    absolute-value thresholds, where a pair may also become an edge by
    crossing ``-beta`` from above): the caller passes ``-corr_now`` and the
    outgoing basic-window correlations are negated internally.
    """
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    corr_now = np.asarray(corr_now, dtype=FLOAT_DTYPE)
    num_pairs = len(rows)
    if num_pairs == 0:
        return np.zeros(0, dtype=np.int64)
    if max_steps < 1:
        return np.ones(num_pairs, dtype=np.int64)

    effective_beta = beta - slack
    base = corr_prefix[bw_start, rows, cols]

    def bound_at(steps: np.ndarray) -> np.ndarray:
        outgoing = steps * step_bw
        outgoing_sum = corr_prefix[bw_start + outgoing, rows, cols] - base
        if negate:
            outgoing_sum = -outgoing_sum
        return temporal_upper_bound(
            corr_now, outgoing, outgoing_sum, num_basic_windows
        )

    lo = np.ones(num_pairs, dtype=np.int64)
    hi = np.full(num_pairs, max_steps + 1, dtype=np.int64)

    # Pairs whose bound never reaches the threshold keep hi = max_steps + 1.
    reaches = bound_at(np.full(num_pairs, max_steps, dtype=np.int64)) >= effective_beta
    hi = np.where(reaches, max_steps, hi)
    # Pairs that can already cross at the very next step need no search.
    crosses_immediately = bound_at(lo) >= effective_beta
    hi = np.where(crosses_immediately, 1, hi)

    active = (lo < hi) & reaches & ~crosses_immediately
    while np.any(active):
        mid = (lo + hi) // 2
        ub = bound_at(np.where(active, mid, 1))
        go_right = active & (ub < effective_beta)
        go_left = active & ~go_right
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(go_left, mid, hi)
        active = lo < hi
    return hi


def first_possible_crossing_absolute(
    corr_now: np.ndarray,
    beta: float,
    corr_prefix: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    bw_start: int,
    step_bw: int,
    num_basic_windows: int,
    max_steps: int,
    slack: float = 0.0,
) -> np.ndarray:
    """Jump lengths valid for absolute-value thresholds (``|c| >= beta``).

    A pair becomes an edge either by its correlation rising to ``beta`` or by
    falling to ``-beta``; the admissible jump is the minimum of the two
    crossing points (the negative side reuses Eq. 2 applied to ``-c``).
    """
    positive = first_possible_crossing(
        corr_now, beta, corr_prefix, rows, cols, bw_start, step_bw,
        num_basic_windows, max_steps, slack,
    )
    negative = first_possible_crossing(
        -np.asarray(corr_now, dtype=FLOAT_DTYPE), beta, corr_prefix, rows, cols,
        bw_start, step_bw, num_basic_windows, max_steps, slack, negate=True,
    )
    return np.minimum(positive, negative)


def max_skippable_steps_scalar(
    corr_now: float,
    beta: float,
    outgoing_corrs: np.ndarray,
    num_basic_windows: int,
) -> int:
    """Reference scalar implementation of the Fig. 2 jump computation.

    ``outgoing_corrs[i]`` is the basic-window correlation of the ``i``-th
    basic window that will leave the query window as it slides (one basic
    window per step here, i.e. ``step_bw = 1``).  Returns the number of slides
    after which the Eq. 2 bound first reaches ``beta`` (at least 1); if it
    never does within ``len(outgoing_corrs)`` slides, returns
    ``len(outgoing_corrs) + 1``.
    """
    outgoing_corrs = np.asarray(outgoing_corrs, dtype=FLOAT_DTYPE)
    running = 0.0
    for steps, c in enumerate(outgoing_corrs, start=1):
        running += float(c)
        ub = temporal_upper_bound(corr_now, steps, running, num_basic_windows)
        if ub >= beta:
            return steps
    return len(outgoing_corrs) + 1


# ---------------------------------------------------------------------------
# Horizontal (triangle) bound
# ---------------------------------------------------------------------------

def triangle_bounds(
    corr_xz: ArrayOrFloat, corr_yz: ArrayOrFloat
) -> Tuple[ArrayOrFloat, ArrayOrFloat]:
    """Exact bounds on ``c_xy`` from the correlations of ``x`` and ``y`` with ``z``.

    Returns ``(lower, upper)``.  Both inputs may be arrays (broadcast
    together).  Values are clipped into ``[-1, 1]`` to absorb floating point
    noise on the square root.
    """
    corr_xz = np.asarray(corr_xz, dtype=FLOAT_DTYPE)
    corr_yz = np.asarray(corr_yz, dtype=FLOAT_DTYPE)
    slack = np.sqrt(
        np.maximum(0.0, (1.0 - corr_xz**2)) * np.maximum(0.0, (1.0 - corr_yz**2))
    )
    product = corr_xz * corr_yz
    lower = np.clip(product - slack, -1.0, 1.0)
    upper = np.clip(product + slack, -1.0, 1.0)
    if lower.ndim == 0:
        return float(lower), float(upper)
    return lower, upper


def triangle_bounds_from_pivots(
    pivot_corrs: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Combine triangle bounds over several pivots into per-pair bounds.

    ``pivot_corrs`` has shape ``(P, N)``: the exact correlation of each pivot
    series with every series in the current window.  For every pair ``(i, j)``
    each pivot yields an interval for ``c_ij``; the intersection over pivots is
    the tightest available interval.  Returns ``(lower, upper)`` matrices of
    shape ``(N, N)`` (symmetric, diagonal equal to 1).
    """
    pivot_corrs = np.asarray(pivot_corrs, dtype=FLOAT_DTYPE)
    if pivot_corrs.ndim != 2:
        raise QueryValidationError(
            f"pivot_corrs must have shape (num_pivots, N), got {pivot_corrs.shape}"
        )
    num_pivots, n = pivot_corrs.shape
    lower = np.full((n, n), -1.0, dtype=FLOAT_DTYPE)
    upper = np.full((n, n), 1.0, dtype=FLOAT_DTYPE)
    for p in range(num_pivots):
        c = pivot_corrs[p]
        lo, up = triangle_bounds(c[:, None], c[None, :])
        lower = np.maximum(lower, lo)
        upper = np.minimum(upper, up)
    np.fill_diagonal(lower, 1.0)
    np.fill_diagonal(upper, 1.0)
    return lower, upper
