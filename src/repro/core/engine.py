"""Common interface implemented by Dangoron and every baseline engine.

All engines answer the same question (a :class:`SlidingQuery` over a
:class:`TimeSeriesMatrix`) and return the same result type, which is what
makes the paper's comparisons ("Dangoron is an order of magnitude faster than
TSUBASA … accuracy comparable to Parcorr") expressible as simple loops over a
list of engines in the benchmark harness.
"""

from __future__ import annotations

import abc
import inspect
from typing import Dict, Optional, Tuple, Type

import numpy as np

from repro.config import INDEX_DTYPE
from repro.core.basic_window import BasicWindowLayout
from repro.core.query import SlidingQuery
from repro.core.result import CorrelationSeriesResult
from repro.exceptions import ExperimentError, ParallelError
from repro.timeseries.matrix import TimeSeriesMatrix


def accepts_sketch_kwarg(engine: "SlidingCorrelationEngine") -> bool:
    """Whether ``engine.run`` accepts the prebuilt ``sketch`` keyword.

    Engines whose :meth:`SlidingCorrelationEngine.plan_layout` returns a
    layout promise this; the planner and the sharded executor verify the
    promise up front so a broken subclass fails with a named error instead
    of a raw ``TypeError`` from inside the call (or a pool worker).
    """
    parameters = inspect.signature(engine.run).parameters
    return "sketch" in parameters or any(
        parameter.kind == inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


def validate_pair_subset(
    pairs: Tuple[np.ndarray, np.ndarray], num_series: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate a ``pairs=(rows, cols)`` subset against the matrix size.

    Shared by every engine accepting pair subsets so a malformed subset
    always fails the same way: a :class:`ParallelError`.  Returns the pair
    index arrays as ``INDEX_DTYPE`` (validated to satisfy ``0 <= i < j < N``).
    """
    try:
        rows, cols = pairs
    except (TypeError, ValueError):
        raise ParallelError(
            f"pairs must be a (rows, cols) tuple of index arrays, got {pairs!r}"
        ) from None
    rows = np.asarray(rows, dtype=INDEX_DTYPE).ravel()
    cols = np.asarray(cols, dtype=INDEX_DTYPE).ravel()
    if rows.shape != cols.shape:
        raise ParallelError(
            f"pair rows and cols must have equal length, "
            f"got {len(rows)} and {len(cols)}"
        )
    if len(rows) and (
        rows.min() < 0 or cols.max() >= num_series or np.any(rows >= cols)
    ):
        raise ParallelError(
            f"pair subset entries must satisfy 0 <= i < j < {num_series}"
        )
    return rows, cols


class SlidingCorrelationEngine(abc.ABC):
    """Abstract base class for sliding correlation-matrix engines."""

    #: Short machine-readable engine name (used in reports and registries).
    name: str = "abstract"

    #: Whether the engine guarantees exact correlation values for reported
    #: edges (Dangoron, TSUBASA, brute force) or returns approximations
    #: (ParCorr / StatStream without verification).
    exact: bool = True

    @abc.abstractmethod
    def run(
        self, matrix: TimeSeriesMatrix, query: SlidingQuery
    ) -> CorrelationSeriesResult:
        """Answer the sliding query over the matrix."""

    def plan_layout(self, query: SlidingQuery) -> Optional[BasicWindowLayout]:
        """The basic-window layout this engine would build for the query.

        Engines whose ``run`` accepts a prebuilt ``sketch`` keyword (Dangoron,
        TSUBASA) return the layout here so a planner can build — or fetch from
        a cache — the matching :class:`~repro.core.sketch.BasicWindowSketch`
        once and share it across queries.  Engines that do not precompute a
        sketch return ``None``.
        """
        return None

    def needs_raw_values(self, query: SlidingQuery) -> bool:
        """Whether ``run`` reads ``matrix.values`` even given a prebuilt sketch.

        The planner's out-of-core path (``memory_budget=``) only pays off
        when the whole run is sketch-only; an engine (or engine
        configuration) that touches the raw matrix anyway — pivot selection,
        candidate generation from raw series, edge correction — would
        silently materialize a lazily-backed matrix and blow the budget in
        exactly the bigger-than-RAM scenario the knob exists for.  The
        default is conservatively ``True``; sketch-complete engines override
        it (the planner separately guarantees window alignment before
        choosing a tiled build, so overrides may assume aligned windows).
        """
        return True

    def supports_pair_subset(self) -> bool:
        """Whether ``run`` accepts a ``pairs=(rows, cols)`` keyword.

        An engine that answers a query restricted to an arbitrary subset of
        the series-pair space — producing for those pairs exactly the edges
        its full run would produce — can be sharded by
        :class:`repro.parallel.ShardedExecutor`: the pair space is split into
        blocks, each block runs independently, and the merged result is
        bit-identical to a serial run.  Engines whose per-pair work is coupled
        across pairs (or that never inspect pairs individually) return
        ``False`` and always execute serially.
        """
        return False

    def describe(self) -> str:
        """Human-readable engine description (engine name plus key options)."""
        return self.name

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}(name={self.name!r})"


_ENGINE_REGISTRY: Dict[str, Type[SlidingCorrelationEngine]] = {}


def register_engine(
    cls: Optional[Type[SlidingCorrelationEngine]] = None, *, replace: bool = False
):
    """Class decorator adding an engine to the global registry by its ``name``.

    Registering a second engine under an already-taken name raises
    :class:`ExperimentError` — silent overwrites made registry bugs (two
    plugins picking the same name) invisible.  Pass ``replace=True``
    (``@register_engine(replace=True)``) to overwrite deliberately.
    Re-registering the *same* class object is a no-op, so module reloads stay
    harmless.
    """

    def _register(engine_cls: Type[SlidingCorrelationEngine]):
        if not engine_cls.name or engine_cls.name == "abstract":
            raise ExperimentError(
                f"engine class {engine_cls.__name__} must define a name"
            )
        existing = _ENGINE_REGISTRY.get(engine_cls.name)
        # importlib.reload re-runs the decorator with a fresh class object, so
        # "the same class" means same definition site, not same identity.
        same_definition = existing is not None and (
            existing is engine_cls
            or (
                existing.__module__ == engine_cls.__module__
                and existing.__qualname__ == engine_cls.__qualname__
            )
        )
        if existing is not None and not same_definition and not replace:
            raise ExperimentError(
                f"engine name {engine_cls.name!r} is already registered to "
                f"{existing.__name__}; pass replace=True to overwrite it"
            )
        _ENGINE_REGISTRY[engine_cls.name] = engine_cls
        return engine_cls

    if cls is None:
        return _register
    return _register(cls)


def available_engines() -> Dict[str, Type[SlidingCorrelationEngine]]:
    """Mapping of registered engine names to their classes (copy)."""
    return dict(_ENGINE_REGISTRY)


def engine_options(name: str) -> Dict[str, inspect.Parameter]:
    """Constructor options accepted by a registered engine (name -> Parameter)."""
    try:
        cls = _ENGINE_REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown engine {name!r}; available: {sorted(_ENGINE_REGISTRY)}"
        ) from None
    parameters = dict(inspect.signature(cls.__init__).parameters)
    parameters.pop("self", None)
    # Engines without their own __init__ inherit object's (*args, **kwargs)
    # signature; those pseudo-parameters are not real options.
    return {
        name: parameter
        for name, parameter in parameters.items()
        if parameter.kind
        not in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
    }


def create_engine(name: str, **kwargs) -> SlidingCorrelationEngine:
    """Instantiate a registered engine by name with keyword options.

    Unknown names and unknown constructor options both raise
    :class:`ExperimentError` naming the engine and the options it accepts, so
    a typo like ``num_pivot=4`` fails with a message instead of a bare
    ``TypeError``.
    """
    try:
        cls = _ENGINE_REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown engine {name!r}; available: {sorted(_ENGINE_REGISTRY)}"
        ) from None
    try:
        return cls(**kwargs)
    except TypeError as error:
        accepted = sorted(engine_options(name))
        raise ExperimentError(
            f"invalid options for engine {name!r}: {error}; "
            f"accepted options: {accepted}"
        ) from error
