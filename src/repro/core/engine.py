"""Common interface implemented by Dangoron and every baseline engine.

All engines answer the same question (a :class:`SlidingQuery` over a
:class:`TimeSeriesMatrix`) and return the same result type, which is what
makes the paper's comparisons ("Dangoron is an order of magnitude faster than
TSUBASA … accuracy comparable to Parcorr") expressible as simple loops over a
list of engines in the benchmark harness.
"""

from __future__ import annotations

import abc
from typing import Dict, Type

from repro.core.query import SlidingQuery
from repro.core.result import CorrelationSeriesResult
from repro.exceptions import ExperimentError
from repro.timeseries.matrix import TimeSeriesMatrix


class SlidingCorrelationEngine(abc.ABC):
    """Abstract base class for sliding correlation-matrix engines."""

    #: Short machine-readable engine name (used in reports and registries).
    name: str = "abstract"

    #: Whether the engine guarantees exact correlation values for reported
    #: edges (Dangoron, TSUBASA, brute force) or returns approximations
    #: (ParCorr / StatStream without verification).
    exact: bool = True

    @abc.abstractmethod
    def run(
        self, matrix: TimeSeriesMatrix, query: SlidingQuery
    ) -> CorrelationSeriesResult:
        """Answer the sliding query over the matrix."""

    def describe(self) -> str:
        """Human-readable engine description (engine name plus key options)."""
        return self.name

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}(name={self.name!r})"


_ENGINE_REGISTRY: Dict[str, Type[SlidingCorrelationEngine]] = {}


def register_engine(cls: Type[SlidingCorrelationEngine]) -> Type[SlidingCorrelationEngine]:
    """Class decorator adding an engine to the global registry by its ``name``."""
    if not cls.name or cls.name == "abstract":
        raise ExperimentError(f"engine class {cls.__name__} must define a name")
    _ENGINE_REGISTRY[cls.name] = cls
    return cls


def available_engines() -> Dict[str, Type[SlidingCorrelationEngine]]:
    """Mapping of registered engine names to their classes (copy)."""
    return dict(_ENGINE_REGISTRY)


def create_engine(name: str, **kwargs) -> SlidingCorrelationEngine:
    """Instantiate a registered engine by name with keyword options."""
    try:
        cls = _ENGINE_REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown engine {name!r}; available: {sorted(_ENGINE_REGISTRY)}"
        ) from None
    return cls(**kwargs)
