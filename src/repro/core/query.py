"""Sliding-window query description and validation.

A query follows the paper's problem definition: a range ``r = (s, e)``, a
window size ``l``, a sliding step ``eta`` and a threshold ``beta``.  Window
``k`` covers columns ``[s + k*eta, s + k*eta + l)``; the last window is the
largest ``k`` for which the window still fits inside ``[s, e)``.

All engines (Dangoron and the baselines) accept the same
:class:`SlidingQuery`, which keeps benchmark comparisons honest: every engine
answers exactly the same question.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Tuple

import numpy as np

from repro.config import INDEX_DTYPE
from repro.exceptions import QueryValidationError

#: Keep entries with ``c >= beta`` (the paper's semantics).
THRESHOLD_SIGNED = "signed"
#: Keep entries with ``|c| >= beta`` (common in climate/fMRI practice).
THRESHOLD_ABSOLUTE = "absolute"

_THRESHOLD_MODES = (THRESHOLD_SIGNED, THRESHOLD_ABSOLUTE)


@dataclass(frozen=True)
class SlidingQuery:
    """A sliding correlation-matrix query.

    Parameters
    ----------
    start, end:
        The query range ``r = (s, e)`` in column indices, end-exclusive.
    window:
        The query window size ``l`` (number of columns per window).
    step:
        The sliding step ``eta`` (columns between consecutive window starts).
    threshold:
        The correlation threshold ``beta``; entries below it are reported as 0.
    threshold_mode:
        ``"signed"`` (keep ``c >= beta``, the paper's definition) or
        ``"absolute"`` (keep ``|c| >= beta``).
    """

    #: Wire-schema discriminator used by :mod:`repro.service.wire`; subclasses
    #: override it (``"topk"``, ``"lagged"``).  Not a dataclass field.
    mode = "threshold"

    start: int
    end: int
    window: int
    step: int
    threshold: float
    threshold_mode: str = THRESHOLD_SIGNED

    def __post_init__(self) -> None:
        if self.window <= 1:
            raise QueryValidationError(
                f"window size must be at least 2, got {self.window}"
            )
        if self.step <= 0:
            raise QueryValidationError(f"sliding step must be positive, got {self.step}")
        if self.start < 0 or self.end <= self.start:
            raise QueryValidationError(
                f"invalid query range [{self.start}, {self.end})"
            )
        if self.end - self.start < self.window:
            raise QueryValidationError(
                f"query range of length {self.end - self.start} is shorter than "
                f"the window size {self.window}"
            )
        if not -1.0 <= self.threshold <= 1.0:
            raise QueryValidationError(
                f"threshold must lie in [-1, 1], got {self.threshold}"
            )
        if self.threshold_mode not in _THRESHOLD_MODES:
            raise QueryValidationError(
                f"threshold_mode must be one of {_THRESHOLD_MODES}, "
                f"got {self.threshold_mode!r}"
            )

    # ------------------------------------------------------------------ windows
    @property
    def num_windows(self) -> int:
        """The number of windows ``gamma + 1`` that fit in the range."""
        return (self.end - self.start - self.window) // self.step + 1

    def window_starts(self) -> np.ndarray:
        """Column index of the first point of every window."""
        return self.start + self.step * np.arange(self.num_windows, dtype=INDEX_DTYPE)

    def window_bounds(self, k: int) -> Tuple[int, int]:
        """``(start, end)`` columns of window ``k`` (end-exclusive)."""
        if not 0 <= k < self.num_windows:
            raise QueryValidationError(
                f"window index {k} out of range [0, {self.num_windows})"
            )
        begin = self.start + k * self.step
        return begin, begin + self.window

    def iter_windows(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(k, start, end)`` for every window in order."""
        for k in range(self.num_windows):
            begin = self.start + k * self.step
            yield k, begin, begin + self.window

    # ------------------------------------------------------------------ helpers
    def validate_against_length(self, length: int) -> None:
        """Raise when the query range exceeds a series of ``length`` columns."""
        if self.end > length:
            raise QueryValidationError(
                f"query range end {self.end} exceeds series length {length}"
            )

    def keeps(self, value: float) -> bool:
        """``True`` when a correlation value survives the threshold."""
        if self.threshold_mode == THRESHOLD_ABSOLUTE:
            return abs(value) >= self.threshold
        return value >= self.threshold

    def keep_mask(self, values: np.ndarray) -> np.ndarray:
        """Vectorized version of :meth:`keeps`."""
        if self.threshold_mode == THRESHOLD_ABSOLUTE:
            return np.abs(values) >= self.threshold
        return values >= self.threshold

    def with_threshold(self, threshold: float) -> "SlidingQuery":
        """Return a copy of the query with a different threshold."""
        return replace(self, threshold=threshold)

    def describe(self) -> str:
        """Human-readable one-line description (used in reports)."""
        return (
            f"range=[{self.start},{self.end}) window={self.window} step={self.step} "
            f"beta={self.threshold} mode={self.threshold_mode} "
            f"windows={self.num_windows}"
        )
