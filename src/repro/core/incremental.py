"""Incremental sliding-window engine: rolling sufficient statistics.

An alternative exact strategy to Dangoron's jumping structure: instead of
skipping windows, keep the raw sufficient statistics (per-series sums and sums
of squares, per-pair sums of products) of the *current* window and update them
when the window slides by removing the outgoing columns and adding the
incoming ones.  Per slide the update costs ``O(N^2 * eta)`` instead of the
``O(N^2 * l)`` a full recombination costs, independent of the threshold.

This engine is not part of the paper; it is the natural "incremental
computation" point of comparison that ParCorr's related-work positioning
alludes to, and the E11 ablation measures where it beats or loses to the
pruned engine (small steps and low thresholds favour it, large steps and high
thresholds favour Dangoron, whose work shrinks with the edge density).

Because the statistics are updated by adding and subtracting long running
sums, floating point error accumulates slowly with the number of slides; the
``refresh_every`` option recomputes the statistics from scratch periodically to
keep the values bit-comparable with the exact answer.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.core.correlation import correlation_from_sums
from repro.core.engine import SlidingCorrelationEngine, register_engine
from repro.core.lag import iter_query_windows
from repro.core.query import SlidingQuery
from repro.core.result import (
    CorrelationSeriesResult,
    EngineStats,
    ThresholdedMatrix,
)
from repro.exceptions import QueryValidationError
from repro.timeseries.matrix import TimeSeriesMatrix


@register_engine
class IncrementalEngine(SlidingCorrelationEngine):
    """Exact sliding correlation via rolling sums updated column-by-column.

    Parameters
    ----------
    refresh_every:
        Recompute the sufficient statistics from scratch every this many
        windows to bound floating point drift.  ``0`` disables refreshing
        (the drift over a few thousand slides of well-scaled data stays far
        below :data:`repro.config.CORRELATION_ATOL`).
    memory_budget:
        When set (bytes), windows stream out of the matrix's column-chunk
        source through one rolling buffer
        (:func:`repro.core.lag.iter_query_windows`) instead of slicing a
        resident array, so the engine runs out-of-core over a lazy
        ``ChunkBackedMatrix``.  The planner injects its own budget here
        automatically.  Results are identical to the resident mode.
    """

    name = "incremental"
    exact = True

    def __init__(
        self, refresh_every: int = 256, memory_budget: Optional[int] = None
    ) -> None:
        if refresh_every < 0:
            raise QueryValidationError(
                f"refresh_every must be non-negative, got {refresh_every}"
            )
        if memory_budget is not None and memory_budget < 1:
            raise QueryValidationError(
                f"memory_budget must be a positive byte count, got {memory_budget}"
            )
        self.refresh_every = refresh_every
        self.memory_budget = memory_budget

    def describe(self) -> str:
        suffix = f"refresh={self.refresh_every}" if self.refresh_every else "no-refresh"
        return f"{self.name}[{suffix}]"

    # ------------------------------------------------------------------ running
    def run(
        self, matrix: TimeSeriesMatrix, query: SlidingQuery
    ) -> CorrelationSeriesResult:
        query.validate_against_length(matrix.length)
        n = matrix.num_series
        pairs = n * (n - 1) // 2
        overlapping = query.step < query.window

        matrices: List[ThresholdedMatrix] = []
        columns_added = 0
        columns_removed = 0

        sums = np.zeros(n, dtype=FLOAT_DTYPE)
        sumsqs = np.zeros(n, dtype=FLOAT_DTYPE)
        sumprods = np.zeros((n, n), dtype=FLOAT_DTYPE)

        started = time.perf_counter()
        # Windows stream through ``iter_query_windows`` in both modes: with a
        # ``memory_budget`` they assemble out of the matrix's column-chunk
        # source (a lazy ``ChunkBackedMatrix`` is never materialized), without
        # one they are copied out of the resident array — either way every
        # yielded buffer carries identical bytes and layout, so the two modes
        # compute identical statistics.  Streamed buffers are *reused*
        # between windows, hence the ``outgoing`` copy below.
        outgoing: np.ndarray = np.zeros((n, 0), dtype=FLOAT_DTYPE)
        for k, window in iter_query_windows(
            matrix, query, memory_budget=self.memory_budget
        ):
            refresh = (
                k == 0
                or not overlapping
                or (self.refresh_every and k % self.refresh_every == 0)
            )
            if refresh:
                sums = window.sum(axis=1)
                sumprods = window @ window.T
                sumsqs = np.einsum("ij,ij->i", window, window)
                columns_added += query.window
            else:
                incoming = window[:, query.window - query.step :]
                sums = sums - outgoing.sum(axis=1) + incoming.sum(axis=1)
                sumsqs = (
                    sumsqs
                    - np.einsum("ij,ij->i", outgoing, outgoing)
                    + np.einsum("ij,ij->i", incoming, incoming)
                )
                sumprods = sumprods - outgoing @ outgoing.T + incoming @ incoming.T
                columns_added += query.step
                columns_removed += query.step
            if overlapping:
                # The columns that leave when the window next slides; copied
                # because the streamed buffer is overwritten in place.
                outgoing = np.ascontiguousarray(window[:, : query.step])

            corr = correlation_from_sums(
                np.full((n, n), float(query.window), dtype=FLOAT_DTYPE),
                sums[:, None],
                sums[None, :],
                sumsqs[:, None],
                sumsqs[None, :],
                sumprods,
            )
            np.fill_diagonal(corr, 1.0)
            matrices.append(ThresholdedMatrix.from_dense(corr, query=query))
        elapsed = time.perf_counter() - started

        stats = EngineStats(
            engine=self.describe(),
            num_series=n,
            num_windows=query.num_windows,
            exact_evaluations=pairs * query.num_windows,
            candidate_pairs=pairs,
            sketch_build_seconds=0.0,
            query_seconds=elapsed,
            extra={
                "columns_added": float(columns_added),
                "columns_removed": float(columns_removed),
                "refresh_every": float(self.refresh_every),
            },
        )
        return CorrelationSeriesResult(
            query, matrices, stats, series_ids=matrix.series_ids
        )
