"""Result containers shared by every sliding-correlation engine.

A sliding query produces one thresholded correlation matrix per window.  The
matrices are sparse by construction (entries below ``beta`` are zero), so the
result stores only the surviving entries of the strict upper triangle plus
enough metadata to reconstruct dense matrices, edge sets, or networkx graphs.

Engines also report an :class:`EngineStats` describing how much work they did
(pairs evaluated exactly, evaluations skipped by jumping, pairs pruned
horizontally) — this is what the pruning-effectiveness experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Set, Tuple

import numpy as np

from repro.config import FLOAT_DTYPE, INDEX_DTYPE
from repro.core.query import SlidingQuery
from repro.exceptions import DataValidationError


class Edge(NamedTuple):
    """One edge of the unified result protocol: a pair in one window.

    Every result type — thresholded series, top-k, lagged — flattens to a list
    of these via ``to_edges()``, which is what the network builders, report
    helpers and the CLI consume uniformly.  ``lag`` is 0 for zero-lag queries.

    Examples
    --------
    >>> edge = Edge(window=3, source=0, target=5, weight=0.91)
    >>> edge.lag                      # zero-lag queries leave the default
    0
    >>> window, i, j, weight, lag = edge   # unpacks as a plain tuple
    >>> (window, i, j)
    (3, 0, 5)
    """

    window: int
    source: int
    target: int
    weight: float
    lag: int = 0


@dataclass(frozen=True)
class ThresholdedMatrix:
    """The surviving entries of one window's correlation matrix.

    Only strict upper-triangle entries (``i < j``) are stored; the matrix is
    symmetric and the diagonal is implicitly 1 (a series always correlates
    perfectly with itself, and the paper's networks carry no self loops).
    """

    num_series: int
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", np.asarray(self.rows, dtype=INDEX_DTYPE))
        object.__setattr__(self, "cols", np.asarray(self.cols, dtype=INDEX_DTYPE))
        object.__setattr__(self, "values", np.asarray(self.values, dtype=FLOAT_DTYPE))
        if not (len(self.rows) == len(self.cols) == len(self.values)):
            raise DataValidationError("rows, cols and values must have equal length")
        if len(self.rows) and (
            self.rows.min() < 0
            or self.cols.max() >= self.num_series
            or np.any(self.rows >= self.cols)
        ):
            raise DataValidationError(
                "thresholded matrix entries must satisfy 0 <= i < j < num_series"
            )

    @property
    def num_edges(self) -> int:
        """Number of surviving (above-threshold) pairs."""
        return int(len(self.values))

    def to_dense(self, include_diagonal: bool = True) -> np.ndarray:
        """Materialize the symmetric ``N x N`` matrix (zeros below threshold)."""
        dense = np.zeros((self.num_series, self.num_series), dtype=FLOAT_DTYPE)
        dense[self.rows, self.cols] = self.values
        dense[self.cols, self.rows] = self.values
        if include_diagonal:
            np.fill_diagonal(dense, 1.0)
        return dense

    def edge_set(self) -> Set[Tuple[int, int]]:
        """The surviving pairs as a set of ``(i, j)`` tuples with ``i < j``."""
        return {(int(i), int(j)) for i, j in zip(self.rows, self.cols)}

    def edge_dict(self) -> Dict[Tuple[int, int], float]:
        """Mapping from ``(i, j)`` to the correlation value."""
        return {
            (int(i), int(j)): float(v)
            for i, j, v in zip(self.rows, self.cols, self.values)
        }

    def density(self) -> float:
        """Fraction of all ``N*(N-1)/2`` pairs that survive the threshold."""
        total_pairs = self.num_series * (self.num_series - 1) // 2
        if total_pairs == 0:
            return 0.0
        return self.num_edges / total_pairs

    @classmethod
    def from_dense(
        cls, matrix: np.ndarray, query: Optional[SlidingQuery] = None, threshold: float = 0.0,
        threshold_mode: str = "signed",
    ) -> "ThresholdedMatrix":
        """Build from a dense correlation matrix, applying a threshold.

        When ``query`` is given its threshold and mode are used; otherwise the
        explicit ``threshold``/``threshold_mode`` arguments apply.
        """
        matrix = np.asarray(matrix, dtype=FLOAT_DTYPE)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise DataValidationError(
                f"expected a square matrix, got shape {matrix.shape}"
            )
        n = matrix.shape[0]
        iu, ju = np.triu_indices(n, k=1)
        values = matrix[iu, ju]
        if query is not None:
            keep = query.keep_mask(values)
        elif threshold_mode == "absolute":
            keep = np.abs(values) >= threshold
        else:
            keep = values >= threshold
        return cls(n, iu[keep], ju[keep], values[keep])


@dataclass
class EngineStats:
    """Work counters and timings reported by an engine run."""

    engine: str = "unknown"
    num_series: int = 0
    num_windows: int = 0
    exact_evaluations: int = 0
    skipped_by_jumping: int = 0
    pruned_horizontally: int = 0
    candidate_pairs: int = 0
    sketch_build_seconds: float = 0.0
    query_seconds: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def total_pair_windows(self) -> int:
        """The amount of work brute force would do: pairs times windows."""
        pairs = self.num_series * (self.num_series - 1) // 2
        return pairs * self.num_windows

    @property
    def evaluation_fraction(self) -> float:
        """Fraction of pair-windows that were evaluated exactly."""
        total = self.total_pair_windows
        if total == 0:
            return 0.0
        return self.exact_evaluations / total

    def as_dict(self) -> Dict[str, float]:
        """Flatten the stats to a plain dict (used by reports and benchmarks)."""
        base = {
            "engine": self.engine,
            "num_series": self.num_series,
            "num_windows": self.num_windows,
            "exact_evaluations": self.exact_evaluations,
            "skipped_by_jumping": self.skipped_by_jumping,
            "pruned_horizontally": self.pruned_horizontally,
            "candidate_pairs": self.candidate_pairs,
            "sketch_build_seconds": self.sketch_build_seconds,
            "query_seconds": self.query_seconds,
            "evaluation_fraction": self.evaluation_fraction,
        }
        base.update(self.extra)
        return base


class CorrelationSeriesResult:
    """The full answer to a sliding query: one thresholded matrix per window.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.query import SlidingQuery
    >>> query = SlidingQuery(start=0, end=12, window=8, step=4, threshold=0.5)
    >>> windows = [
    ...     ThresholdedMatrix(3, rows=[0], cols=[1], values=[0.9]),
    ...     ThresholdedMatrix(3, rows=[0, 1], cols=[1, 2], values=[0.8, 0.6]),
    ... ]
    >>> result = CorrelationSeriesResult(query, windows)
    >>> result.num_windows, result.total_edges()
    (2, 3)
    >>> result.edge_sets()[1] == {(0, 1), (1, 2)}
    True
    >>> [tuple(edge)[:4] for edge in result.to_edges()]
    [(0, 0, 1, 0.9), (1, 0, 1, 0.8), (1, 1, 2, 0.6)]
    """

    #: Wire-schema discriminator used by :mod:`repro.service.wire`.
    kind = "threshold"

    def __init__(
        self,
        query: SlidingQuery,
        matrices: Sequence[ThresholdedMatrix],
        stats: Optional[EngineStats] = None,
        series_ids: Optional[Sequence[str]] = None,
    ) -> None:
        matrices = list(matrices)
        if len(matrices) != query.num_windows:
            raise DataValidationError(
                f"expected {query.num_windows} matrices for the query, "
                f"got {len(matrices)}"
            )
        sizes = {m.num_series for m in matrices}
        if len(sizes) > 1:
            raise DataValidationError(
                f"all window matrices must have the same size, got {sorted(sizes)}"
            )
        self.query = query
        self.matrices: List[ThresholdedMatrix] = matrices
        self.stats = stats if stats is not None else EngineStats()
        self.series_ids = list(series_ids) if series_ids is not None else None

    # ------------------------------------------------------------------ access
    @property
    def num_windows(self) -> int:
        return len(self.matrices)

    @property
    def num_series(self) -> int:
        if not self.matrices:
            return 0
        return self.matrices[0].num_series

    def __len__(self) -> int:
        return self.num_windows

    def __getitem__(self, k: int) -> ThresholdedMatrix:
        return self.matrices[k]

    def __iter__(self) -> Iterator[ThresholdedMatrix]:
        return iter(self.matrices)

    def window_starts(self) -> np.ndarray:
        return self.query.window_starts()

    def dense(self, k: int) -> np.ndarray:
        """Dense thresholded correlation matrix of window ``k``."""
        return self.matrices[k].to_dense()

    def dense_series(self) -> np.ndarray:
        """All windows stacked into a ``(num_windows, N, N)`` array."""
        return np.stack([m.to_dense() for m in self.matrices], axis=0)

    def edge_sets(self) -> List[Set[Tuple[int, int]]]:
        """Edge set (above-threshold pairs) of every window."""
        return [m.edge_set() for m in self.matrices]

    def total_edges(self) -> int:
        """Total number of above-threshold entries across all windows."""
        return int(sum(m.num_edges for m in self.matrices))

    def edge_count_series(self) -> np.ndarray:
        """Number of edges per window (the network's temporal density profile)."""
        return np.array([m.num_edges for m in self.matrices], dtype=INDEX_DTYPE)

    # ------------------------------------------------------- result protocol
    def iter_windows(self) -> Iterator[Tuple[int, ThresholdedMatrix]]:
        """Yield ``(window_index, payload)`` per window (result protocol)."""
        return enumerate(self.matrices)

    def to_edges(self) -> List[Edge]:
        """Flatten the result to the protocol's uniform edge list (lag 0)."""
        edges: List[Edge] = []
        for k, window_edges in enumerate(self.matrices):
            edges.extend(
                Edge(k, int(i), int(j), float(v))
                for i, j, v in zip(
                    window_edges.rows, window_edges.cols, window_edges.values
                )
            )
        return edges

    def describe(self) -> str:
        """One-line summary used by reports."""
        return (
            f"{self.stats.engine}: {self.num_windows} windows x {self.num_series} "
            f"series, {self.total_edges()} edges, "
            f"query {self.stats.query_seconds:.4f}s"
        )
