"""Lagged (cross-) correlation across sliding windows.

Climate teleconnections and market lead–lag effects (the Braid and FilCorr
lines of work the paper's related-work section cites) correlate one series
against a *shifted* copy of another: the edge between ``x`` and ``y`` carries
both the strongest correlation over a lag range and the lag at which it is
attained.  This module extends the repository's window machinery with that
query type; it is an extension beyond the paper's zero-lag problem definition
and is exercised by the E13 experiment and the ``topk_lag_analysis`` example.

Sign conventions: a *positive* lag ``d`` correlates ``x[t]`` with ``y[t + d]``
(``x`` leads ``y`` by ``d`` steps); a negative lag means ``y`` leads ``x``.

Execution strategies share one primitive: :func:`lagged_pair_stats` reduces an
explicit ``(rows, cols)`` pair subset of one window with per-pair ``einsum``
rows over the same normalized arrays, so the dense matrix path (the full upper
triangle), a shard's pair block, and the streamed out-of-core path all produce
bit-identical entries for any partition of the pair space.  Windows themselves
come from :func:`iter_query_windows`, which either slices the resident matrix
or — under a ``memory_budget`` — assembles each window from the matrix's
column-chunk source into a bounded rolling buffer without ever materializing
the dense matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.config import FLOAT_DTYPE, INDEX_DTYPE, VARIANCE_EPSILON
from repro.core.query import THRESHOLD_ABSOLUTE, SlidingQuery
from repro.core.result import Edge
from repro.exceptions import DataValidationError, QueryValidationError
from repro.timeseries.matrix import TimeSeriesMatrix

#: Pairs reduced per chunk by :func:`lagged_pair_stats`.  Bounds the gathered
#: ``(chunk, l)`` working arrays; per-pair reductions are independent, so the
#: chunk size never changes the resulting bits.
_PAIR_CHUNK = 8192


def _normalize_rows(rows: np.ndarray) -> np.ndarray:
    """Centre every row and scale to unit norm (constant rows become zero)."""
    centered = rows - rows.mean(axis=1, keepdims=True)
    norms = np.sqrt(np.einsum("ij,ij->i", centered, centered))
    degenerate = norms < np.sqrt(VARIANCE_EPSILON * rows.shape[1])
    safe = np.where(degenerate, 1.0, norms)
    normalized = centered / safe[:, None]
    normalized[degenerate, :] = 0.0
    return normalized


def lagged_correlation(x: np.ndarray, y: np.ndarray, max_lag: int) -> np.ndarray:
    """Pearson correlation of ``x[t]`` with ``y[t + d]`` for ``d`` in ``[-max_lag, max_lag]``.

    Returns an array of length ``2 * max_lag + 1`` indexed by ``d + max_lag``.
    Each lag's correlation is computed over the overlapping portion of the two
    series only (no zero padding), so every entry is a genuine Pearson
    correlation of ``len(x) - |d|`` points.
    """
    x = np.asarray(x, dtype=FLOAT_DTYPE)
    y = np.asarray(y, dtype=FLOAT_DTYPE)
    if x.ndim != 1 or y.ndim != 1 or x.shape != y.shape:
        raise DataValidationError("lagged_correlation() expects equal-length 1-D arrays")
    if max_lag < 0:
        raise QueryValidationError(f"max_lag must be non-negative, got {max_lag}")
    if len(x) - max_lag < 2:
        raise QueryValidationError(
            f"series of length {len(x)} cannot support max_lag={max_lag}"
        )

    result = np.zeros(2 * max_lag + 1, dtype=FLOAT_DTYPE)
    for lag in range(-max_lag, max_lag + 1):
        if lag >= 0:
            a, b = x[: len(x) - lag], y[lag:]
        else:
            a, b = x[-lag:], y[: len(y) + lag]
        ac = a - a.mean()
        bc = b - b.mean()
        var_a = float(np.dot(ac, ac))
        var_b = float(np.dot(bc, bc))
        if var_a < VARIANCE_EPSILON * len(a) or var_b < VARIANCE_EPSILON * len(b):
            result[lag + max_lag] = 0.0
        else:
            result[lag + max_lag] = np.clip(
                float(np.dot(ac, bc)) / np.sqrt(var_a * var_b), -1.0, 1.0
            )
    return result


def best_lag(
    x: np.ndarray, y: np.ndarray, max_lag: int, absolute: bool = True
) -> Tuple[int, float]:
    """The lag with the strongest correlation and that correlation's value."""
    correlations = lagged_correlation(x, y, max_lag)
    ranking = np.abs(correlations) if absolute else correlations
    index = int(np.argmax(ranking))
    return index - max_lag, float(correlations[index])


@dataclass(frozen=True)
class LagMatrices:
    """Per-pair best lagged correlation of one window.

    ``best_corr[i, j]`` is the strongest correlation of series ``i`` against a
    shifted series ``j`` over the lag range and ``best_lag[i, j]`` the lag at
    which it is attained (``best_lag[i, j] = -best_lag[j, i]``).
    """

    window_index: int
    best_corr: np.ndarray
    best_lag: np.ndarray

    @property
    def num_series(self) -> int:
        return int(self.best_corr.shape[0])

    def edges(
        self, threshold: float, threshold_mode: str = "signed"
    ) -> List[Tuple[int, int, float, int]]:
        """Above-threshold pairs as ``(i, j, correlation, lag)`` with ``i < j``."""
        n = self.num_series
        iu, ju = np.triu_indices(n, k=1)
        values = self.best_corr[iu, ju]
        lags = self.best_lag[iu, ju]
        if threshold_mode == THRESHOLD_ABSOLUTE:
            keep = np.abs(values) >= threshold
        else:
            keep = values >= threshold
        return [
            (int(i), int(j), float(v), int(d))
            for i, j, v, d in zip(iu[keep], ju[keep], values[keep], lags[keep])
        ]

    # ------------------------------------------------------- result protocol
    @property
    def num_windows(self) -> int:
        """A single :class:`LagMatrices` describes exactly one window."""
        return 1

    def iter_windows(self) -> Iterator[Tuple[int, "LagMatrices"]]:
        """Yield ``(window_index, payload)`` — itself (result protocol)."""
        yield self.window_index, self

    def to_edges(
        self, threshold: Optional[float] = None, threshold_mode: str = "signed"
    ) -> List[Edge]:
        """This window's pairs as protocol edges carrying the best lag.

        With no ``threshold`` every pair is reported (a lagged query keeps the
        full matrix); pass one to keep only the surviving pairs.
        """
        effective = -1.0 if threshold is None else threshold
        mode = "signed" if threshold is None else threshold_mode
        return [
            Edge(self.window_index, i, j, v, d)
            for i, j, v, d in self.edges(effective, mode)
        ]

    def describe(self) -> str:
        """One-line summary used by reports (result protocol)."""
        return (
            f"lagged window #{self.window_index}: {self.num_series} series, "
            f"lags in [{int(self.best_lag.min())}, {int(self.best_lag.max())}]"
        )


@dataclass(frozen=True)
class LagPairs:
    """Best lagged correlations of an explicit pair subset of one window.

    The shard-sized sibling of :class:`LagMatrices`: where that class holds
    the dense ``(N, N)`` matrices, this one holds only the pairs a shard was
    asked about.  Both directions of every unordered pair ``(i, j)`` are
    tracked — ``forward`` is the dense entry ``(i, j)`` (positive lag: ``i``
    leads ``j``), ``backward`` the mirrored entry ``(j, i)`` — so scattering
    a partition's blocks into zeroed matrices rebuilds the dense result
    exactly (:func:`repro.parallel.merge.merge_lagged_results`).
    """

    window_index: int
    rows: np.ndarray
    cols: np.ndarray
    corr_forward: np.ndarray
    lag_forward: np.ndarray
    corr_backward: np.ndarray
    lag_backward: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", np.asarray(self.rows, dtype=INDEX_DTYPE))
        object.__setattr__(self, "cols", np.asarray(self.cols, dtype=INDEX_DTYPE))
        for field in ("corr_forward", "corr_backward"):
            object.__setattr__(
                self, field, np.asarray(getattr(self, field), dtype=FLOAT_DTYPE)
            )
        for field in ("lag_forward", "lag_backward"):
            object.__setattr__(
                self, field, np.asarray(getattr(self, field), dtype=INDEX_DTYPE)
            )

    @property
    def num_pairs(self) -> int:
        return int(len(self.rows))

    def scatter_into(self, best_corr: np.ndarray, best_lag: np.ndarray) -> None:
        """Write this block's entries into dense matrices (both directions)."""
        best_corr[self.rows, self.cols] = self.corr_forward
        best_lag[self.rows, self.cols] = self.lag_forward
        best_corr[self.cols, self.rows] = self.corr_backward
        best_lag[self.cols, self.rows] = self.lag_backward

    def to_matrices(self, num_series: int) -> LagMatrices:
        """Dense :class:`LagMatrices` with this block's pairs filled in."""
        best_corr = np.zeros((num_series, num_series), dtype=FLOAT_DTYPE)
        best_lag_matrix = np.zeros((num_series, num_series), dtype=INDEX_DTYPE)
        self.scatter_into(best_corr, best_lag_matrix)
        np.fill_diagonal(best_corr, 1.0)
        return LagMatrices(
            window_index=self.window_index,
            best_corr=best_corr,
            best_lag=best_lag_matrix,
        )


def lagged_pair_stats(
    window: np.ndarray,
    max_lag: int,
    rows: np.ndarray,
    cols: np.ndarray,
    absolute: bool = True,
    window_index: int = 0,
) -> LagPairs:
    """Best lagged correlation of selected row pairs of one window.

    This is the single reduction behind every lagged execution strategy: the
    dense path enumerates the full upper triangle through it, shards pass
    their pair block, and the streamed path calls it per buffered window.
    Every correlation is one per-pair ``einsum`` row over the same normalized
    arrays, so any partition of the pair space reproduces the dense entries
    bit for bit — unlike a matrix product, whose BLAS reduction order would
    depend on the block shape.

    Candidates are ranked exactly as the dense formulation does: per lag
    ``d`` from 0 to ``max_lag``, the forward direction sees ``(corr(i→j), +d)``
    then ``(corr(j→i), -d)``, the backward direction the mirror, and a strict
    ``>`` keeps the first-seen candidate on rank ties.
    """
    window = np.asarray(window, dtype=FLOAT_DTYPE)
    if window.ndim != 2:
        raise DataValidationError(
            f"lagged_pair_stats() expects an (N, l) array, got {window.shape}"
        )
    length = window.shape[1]
    if max_lag < 0:
        raise QueryValidationError(f"max_lag must be non-negative, got {max_lag}")
    if length - max_lag < 2:
        raise QueryValidationError(
            f"window of length {length} cannot support max_lag={max_lag}"
        )
    rows = np.asarray(rows, dtype=INDEX_DTYPE)
    cols = np.asarray(cols, dtype=INDEX_DTYPE)
    num = len(rows)

    corr_fwd = np.zeros(num, dtype=FLOAT_DTYPE)
    lag_fwd = np.zeros(num, dtype=INDEX_DTYPE)
    rank_fwd = np.full(num, -np.inf, dtype=FLOAT_DTYPE)
    corr_bwd = np.zeros(num, dtype=FLOAT_DTYPE)
    lag_bwd = np.zeros(num, dtype=INDEX_DTYPE)
    rank_bwd = np.full(num, -np.inf, dtype=FLOAT_DTYPE)
    directions = (
        (corr_fwd, lag_fwd, rank_fwd),
        (corr_bwd, lag_bwd, rank_bwd),
    )

    for lag in range(0, max_lag + 1):
        leading = _normalize_rows(window[:, : length - lag])
        trailing = _normalize_rows(window[:, lag:])
        for start in range(0, num, _PAIR_CHUNK):
            stop = min(start + _PAIR_CHUNK, num)
            sl = slice(start, stop)
            r, c = rows[sl], cols[sl]
            fwd = np.clip(np.einsum("ij,ij->i", leading[r], trailing[c]), -1.0, 1.0)
            if lag == 0:
                # leading == trailing at lag 0 and elementwise products
                # commute, so the backward value is bitwise the forward one.
                candidates = (((1, fwd),), ((1, fwd),))
            else:
                bwd = np.clip(
                    np.einsum("ij,ij->i", leading[c], trailing[r]), -1.0, 1.0
                )
                candidates = (((1, fwd), (-1, bwd)), ((1, bwd), (-1, fwd)))
            for (best_corr, best_lag_arr, best_rank), ordered in zip(
                directions, candidates
            ):
                for sign, values in ordered:
                    rank = np.abs(values) if absolute else values
                    better = rank > best_rank[sl]
                    best_rank[sl] = np.where(better, rank, best_rank[sl])
                    best_corr[sl] = np.where(better, values, best_corr[sl])
                    best_lag_arr[sl] = np.where(better, sign * lag, best_lag_arr[sl])

    return LagPairs(
        window_index=window_index,
        rows=rows,
        cols=cols,
        corr_forward=corr_fwd,
        lag_forward=lag_fwd,
        corr_backward=corr_bwd,
        lag_backward=lag_bwd,
    )


def lagged_correlation_matrix(
    window: np.ndarray, max_lag: int, absolute: bool = True, window_index: int = 0
) -> LagMatrices:
    """Best lagged correlation and its lag for every pair of rows of a window.

    The cost is ``O((2 * max_lag + 1) * P * l)`` over the ``P = N(N-1)/2``
    upper-triangle pairs.  For ``max_lag = 0`` this reduces to the ordinary
    correlation matrix.  Implemented as the full-triangle call of
    :func:`lagged_pair_stats`, which is what makes sharded and streamed
    lagged runs bit-identical to this dense one.
    """
    window = np.asarray(window, dtype=FLOAT_DTYPE)
    if window.ndim != 2:
        raise DataValidationError(
            f"lagged_correlation_matrix() expects an (N, l) array, got {window.shape}"
        )
    iu, ju = np.triu_indices(window.shape[0], k=1)
    pairs = lagged_pair_stats(
        window, max_lag, iu, ju, absolute=absolute, window_index=window_index
    )
    return pairs.to_matrices(window.shape[0])


def iter_query_windows(
    matrix: TimeSeriesMatrix,
    query: SlidingQuery,
    memory_budget: Optional[int] = None,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(window_index, values)`` with a C-contiguous ``(N, window)`` buffer.

    With no ``memory_budget`` each window is copied out of the resident
    matrix.  With a budget, windows are assembled from the matrix's
    column-chunk source instead (the same protocol the tiled sketch builder
    streams from, :func:`repro.core.tiled.tile_source_for`) into one rolling
    buffer, so a lazy ``ChunkBackedMatrix`` is never materialized.  Both
    paths yield buffers with identical bytes *and memory layout* — reduction
    order over a strided view can differ from a contiguous one by an ulp,
    which would break the bit-identity contract between strategies.

    Streamed buffers are reused between windows: consume each yielded array
    before advancing the iterator.
    """
    query.validate_against_length(matrix.length)
    if memory_budget is None:
        for index, begin, end in query.iter_windows():
            yield index, np.ascontiguousarray(matrix.values[:, begin:end])
        return

    from repro.core.tiled import VALUE_ITEMSIZE, tile_source_for

    window_bytes = matrix.num_series * query.window * VALUE_ITEMSIZE
    if window_bytes > memory_budget:
        raise QueryValidationError(
            f"lagged query cannot stream under memory_budget={memory_budget}: "
            f"one ({matrix.num_series}, {query.window}) window buffer needs "
            f"{window_bytes} bytes; raise the budget or shrink the window"
        )
    yield from _stream_query_windows(tile_source_for(matrix), query)


def _stream_query_windows(source, query: SlidingQuery) -> Iterator[Tuple[int, np.ndarray]]:
    """Assemble each query window from a column-chunk source into one buffer.

    The rolling ``(N, window)`` buffer keeps the ``window - step`` overlap
    between consecutive windows, skips gap columns when ``step > window``,
    and never holds more than one window of raw data — the bounded-memory
    core of the streamed lagged path.
    """
    width = query.window
    num_windows = query.num_windows
    if num_windows == 0:
        return
    buffer = np.empty((source.num_series, width), dtype=FLOAT_DTYPE)
    index = 0
    begin = query.start  # absolute start column of window `index`
    filled = 0  # leading columns of the current window already in the buffer
    position = 0  # absolute column where the next chunk starts
    for chunk in source.iter_chunks():
        chunk = np.asarray(chunk, dtype=FLOAT_DTYPE)
        chunk_stop = position + chunk.shape[1]
        while True:
            lo = max(begin + filled, position)
            hi = min(begin + width, chunk_stop)
            if lo < hi:
                buffer[:, lo - begin : hi - begin] = chunk[:, lo - position : hi - position]
                filled = hi - begin
            if filled < width:
                break  # the rest of this window lives in later chunks
            yield index, buffer
            index += 1
            if index == num_windows:
                return
            overlap = width - query.step
            if overlap > 0:
                # Source and target ranges overlap when step < window / 2;
                # the contiguous intermediate copy keeps the shift exact.
                buffer[:, :overlap] = buffer[:, width - overlap :].copy()
                filled = overlap
            else:
                filled = 0  # step > window: the gap columns are skipped below
            begin += query.step
        position = chunk_stop
    raise QueryValidationError(
        f"column-chunk source ended at column {position} before window "
        f"{index} ([{begin}, {begin + width})) completed"
    )


def sliding_lagged_pairs(
    matrix: TimeSeriesMatrix,
    query: SlidingQuery,
    max_lag: int,
    rows: np.ndarray,
    cols: np.ndarray,
    absolute: Optional[bool] = None,
    memory_budget: Optional[int] = None,
) -> List[LagPairs]:
    """Best lagged correlations of a pair subset, one :class:`LagPairs` per window.

    The shard-facing entry point: a sharded lagged run hands each shard a
    pair block and scatters the per-window blocks back into dense matrices
    (:func:`repro.parallel.merge.merge_lagged_results`) — bit-identical to
    the serial dense run, because every path reduces the same normalized
    arrays pair by pair.
    """
    if absolute is None:
        absolute = query.threshold_mode == THRESHOLD_ABSOLUTE
    return [
        lagged_pair_stats(
            values, max_lag, rows, cols, absolute=absolute, window_index=index
        )
        for index, values in iter_query_windows(
            matrix, query, memory_budget=memory_budget
        )
    ]


def sliding_lagged_correlation(
    matrix: TimeSeriesMatrix,
    query: SlidingQuery,
    max_lag: int,
    absolute: Optional[bool] = None,
    memory_budget: Optional[int] = None,
) -> List[LagMatrices]:
    """Best lagged correlations for every window of a sliding query.

    .. note::
       Prefer the unified front door: ``CorrelationSession(matrix).run(
       LaggedQuery(..., max_lag=max_lag))`` (see :mod:`repro.api`) returns a
       :class:`~repro.api.results.LaggedSeriesResult` implementing the common
       result protocol.  This free function is kept as a thin compatibility
       shim and may be removed in a future major version.

    The query's threshold is not applied here (call :meth:`LagMatrices.edges`
    per window); its ``threshold_mode`` provides the default ranking mode.
    With ``memory_budget`` set (bytes), windows stream out of the matrix's
    column-chunk source through a bounded rolling buffer instead of slicing a
    resident array (see :func:`iter_query_windows`) — same bits, bounded
    memory.
    """
    if absolute is None:
        absolute = query.threshold_mode == THRESHOLD_ABSOLUTE
    return [
        lagged_correlation_matrix(
            values, max_lag, absolute=absolute, window_index=index
        )
        for index, values in iter_query_windows(
            matrix, query, memory_budget=memory_budget
        )
    ]


def lead_lag_graph_edges(
    matrices: List[LagMatrices], threshold: float, min_persistence: float = 0.5
) -> List[Tuple[int, int, float, float]]:
    """Aggregate per-window lagged edges into persistent lead–lag relations.

    Returns ``(i, j, mean_correlation, mean_lag)`` for pairs above the
    threshold in at least ``min_persistence`` of the windows.  The mean lag's
    sign says who leads on average (positive: ``i`` leads ``j``).
    """
    if not matrices:
        raise DataValidationError("lead_lag_graph_edges() needs at least one window")
    if not 0.0 <= min_persistence <= 1.0:
        raise QueryValidationError(
            f"min_persistence must lie in [0, 1], got {min_persistence}"
        )
    counts: dict = {}
    corr_sums: dict = {}
    lag_sums: dict = {}
    for window in matrices:
        for i, j, value, lag in window.edges(threshold):
            counts[(i, j)] = counts.get((i, j), 0) + 1
            corr_sums[(i, j)] = corr_sums.get((i, j), 0.0) + value
            lag_sums[(i, j)] = lag_sums.get((i, j), 0.0) + lag
    needed = min_persistence * len(matrices)
    return [
        (i, j, corr_sums[(i, j)] / count, lag_sums[(i, j)] / count)
        for (i, j), count in sorted(counts.items())
        if count >= needed
    ]
