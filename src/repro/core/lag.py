"""Lagged (cross-) correlation across sliding windows.

Climate teleconnections and market lead–lag effects (the Braid and FilCorr
lines of work the paper's related-work section cites) correlate one series
against a *shifted* copy of another: the edge between ``x`` and ``y`` carries
both the strongest correlation over a lag range and the lag at which it is
attained.  This module extends the repository's window machinery with that
query type; it is an extension beyond the paper's zero-lag problem definition
and is exercised by the E13 experiment and the ``topk_lag_analysis`` example.

Sign conventions: a *positive* lag ``d`` correlates ``x[t]`` with ``y[t + d]``
(``x`` leads ``y`` by ``d`` steps); a negative lag means ``y`` leads ``x``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.config import FLOAT_DTYPE, INDEX_DTYPE, VARIANCE_EPSILON
from repro.core.query import THRESHOLD_ABSOLUTE, SlidingQuery
from repro.core.result import Edge
from repro.exceptions import DataValidationError, QueryValidationError
from repro.timeseries.matrix import TimeSeriesMatrix


def _normalize_rows(rows: np.ndarray) -> np.ndarray:
    """Centre every row and scale to unit norm (constant rows become zero)."""
    centered = rows - rows.mean(axis=1, keepdims=True)
    norms = np.sqrt(np.einsum("ij,ij->i", centered, centered))
    degenerate = norms < np.sqrt(VARIANCE_EPSILON * rows.shape[1])
    safe = np.where(degenerate, 1.0, norms)
    normalized = centered / safe[:, None]
    normalized[degenerate, :] = 0.0
    return normalized


def lagged_correlation(x: np.ndarray, y: np.ndarray, max_lag: int) -> np.ndarray:
    """Pearson correlation of ``x[t]`` with ``y[t + d]`` for ``d`` in ``[-max_lag, max_lag]``.

    Returns an array of length ``2 * max_lag + 1`` indexed by ``d + max_lag``.
    Each lag's correlation is computed over the overlapping portion of the two
    series only (no zero padding), so every entry is a genuine Pearson
    correlation of ``len(x) - |d|`` points.
    """
    x = np.asarray(x, dtype=FLOAT_DTYPE)
    y = np.asarray(y, dtype=FLOAT_DTYPE)
    if x.ndim != 1 or y.ndim != 1 or x.shape != y.shape:
        raise DataValidationError("lagged_correlation() expects equal-length 1-D arrays")
    if max_lag < 0:
        raise QueryValidationError(f"max_lag must be non-negative, got {max_lag}")
    if len(x) - max_lag < 2:
        raise QueryValidationError(
            f"series of length {len(x)} cannot support max_lag={max_lag}"
        )

    result = np.zeros(2 * max_lag + 1, dtype=FLOAT_DTYPE)
    for lag in range(-max_lag, max_lag + 1):
        if lag >= 0:
            a, b = x[: len(x) - lag], y[lag:]
        else:
            a, b = x[-lag:], y[: len(y) + lag]
        ac = a - a.mean()
        bc = b - b.mean()
        var_a = float(np.dot(ac, ac))
        var_b = float(np.dot(bc, bc))
        if var_a < VARIANCE_EPSILON * len(a) or var_b < VARIANCE_EPSILON * len(b):
            result[lag + max_lag] = 0.0
        else:
            result[lag + max_lag] = np.clip(
                float(np.dot(ac, bc)) / np.sqrt(var_a * var_b), -1.0, 1.0
            )
    return result


def best_lag(
    x: np.ndarray, y: np.ndarray, max_lag: int, absolute: bool = True
) -> Tuple[int, float]:
    """The lag with the strongest correlation and that correlation's value."""
    correlations = lagged_correlation(x, y, max_lag)
    ranking = np.abs(correlations) if absolute else correlations
    index = int(np.argmax(ranking))
    return index - max_lag, float(correlations[index])


@dataclass(frozen=True)
class LagMatrices:
    """Per-pair best lagged correlation of one window.

    ``best_corr[i, j]`` is the strongest correlation of series ``i`` against a
    shifted series ``j`` over the lag range and ``best_lag[i, j]`` the lag at
    which it is attained (``best_lag[i, j] = -best_lag[j, i]``).
    """

    window_index: int
    best_corr: np.ndarray
    best_lag: np.ndarray

    @property
    def num_series(self) -> int:
        return int(self.best_corr.shape[0])

    def edges(
        self, threshold: float, threshold_mode: str = "signed"
    ) -> List[Tuple[int, int, float, int]]:
        """Above-threshold pairs as ``(i, j, correlation, lag)`` with ``i < j``."""
        n = self.num_series
        iu, ju = np.triu_indices(n, k=1)
        values = self.best_corr[iu, ju]
        lags = self.best_lag[iu, ju]
        if threshold_mode == THRESHOLD_ABSOLUTE:
            keep = np.abs(values) >= threshold
        else:
            keep = values >= threshold
        return [
            (int(i), int(j), float(v), int(d))
            for i, j, v, d in zip(iu[keep], ju[keep], values[keep], lags[keep])
        ]

    # ------------------------------------------------------- result protocol
    @property
    def num_windows(self) -> int:
        """A single :class:`LagMatrices` describes exactly one window."""
        return 1

    def iter_windows(self) -> Iterator[Tuple[int, "LagMatrices"]]:
        """Yield ``(window_index, payload)`` — itself (result protocol)."""
        yield self.window_index, self

    def to_edges(
        self, threshold: Optional[float] = None, threshold_mode: str = "signed"
    ) -> List[Edge]:
        """This window's pairs as protocol edges carrying the best lag.

        With no ``threshold`` every pair is reported (a lagged query keeps the
        full matrix); pass one to keep only the surviving pairs.
        """
        effective = -1.0 if threshold is None else threshold
        mode = "signed" if threshold is None else threshold_mode
        return [
            Edge(self.window_index, i, j, v, d)
            for i, j, v, d in self.edges(effective, mode)
        ]

    def describe(self) -> str:
        """One-line summary used by reports (result protocol)."""
        return (
            f"lagged window #{self.window_index}: {self.num_series} series, "
            f"lags in [{int(self.best_lag.min())}, {int(self.best_lag.max())}]"
        )


def lagged_correlation_matrix(
    window: np.ndarray, max_lag: int, absolute: bool = True, window_index: int = 0
) -> LagMatrices:
    """Best lagged correlation and its lag for every pair of rows of a window.

    The cost is ``O((2 * max_lag + 1) * N^2 * l)``: one normalized matrix
    product per lag.  For ``max_lag = 0`` this reduces to the ordinary
    correlation matrix.
    """
    window = np.asarray(window, dtype=FLOAT_DTYPE)
    if window.ndim != 2:
        raise DataValidationError(
            f"lagged_correlation_matrix() expects an (N, l) array, got {window.shape}"
        )
    n, length = window.shape
    if max_lag < 0:
        raise QueryValidationError(f"max_lag must be non-negative, got {max_lag}")
    if length - max_lag < 2:
        raise QueryValidationError(
            f"window of length {length} cannot support max_lag={max_lag}"
        )

    best_corr = np.full((n, n), -np.inf, dtype=FLOAT_DTYPE)
    best_lag_matrix = np.zeros((n, n), dtype=INDEX_DTYPE)
    best_rank = np.full((n, n), -np.inf, dtype=FLOAT_DTYPE)

    for lag in range(0, max_lag + 1):
        # corr[i, j] at lag d >= 0 correlates row i's first (length - d) points
        # with row j's last (length - d) points.
        leading = _normalize_rows(window[:, : length - lag])
        trailing = _normalize_rows(window[:, lag:])
        corr = np.clip(leading @ trailing.T, -1.0, 1.0)

        for sign, matrix_at_lag in ((1, corr), (-1, corr.T)) if lag > 0 else ((1, corr),):
            rank = np.abs(matrix_at_lag) if absolute else matrix_at_lag
            better = rank > best_rank
            best_rank = np.where(better, rank, best_rank)
            best_corr = np.where(better, matrix_at_lag, best_corr)
            best_lag_matrix = np.where(better, sign * lag, best_lag_matrix)

    np.fill_diagonal(best_corr, 1.0)
    np.fill_diagonal(best_lag_matrix, 0)
    return LagMatrices(
        window_index=window_index, best_corr=best_corr, best_lag=best_lag_matrix
    )


def sliding_lagged_correlation(
    matrix: TimeSeriesMatrix,
    query: SlidingQuery,
    max_lag: int,
    absolute: Optional[bool] = None,
) -> List[LagMatrices]:
    """Best lagged correlations for every window of a sliding query.

    .. note::
       Prefer the unified front door: ``CorrelationSession(matrix).run(
       LaggedQuery(..., max_lag=max_lag))`` (see :mod:`repro.api`) returns a
       :class:`~repro.api.results.LaggedSeriesResult` implementing the common
       result protocol.  This free function is kept as a thin compatibility
       shim and may be removed in a future major version.

    The query's threshold is not applied here (call :meth:`LagMatrices.edges`
    per window); its ``threshold_mode`` provides the default ranking mode.
    """
    query.validate_against_length(matrix.length)
    if absolute is None:
        absolute = query.threshold_mode == THRESHOLD_ABSOLUTE
    results: List[LagMatrices] = []
    for index, begin, end in query.iter_windows():
        results.append(
            lagged_correlation_matrix(
                matrix.values[:, begin:end],
                max_lag,
                absolute=absolute,
                window_index=index,
            )
        )
    return results


def lead_lag_graph_edges(
    matrices: List[LagMatrices], threshold: float, min_persistence: float = 0.5
) -> List[Tuple[int, int, float, float]]:
    """Aggregate per-window lagged edges into persistent lead–lag relations.

    Returns ``(i, j, mean_correlation, mean_lag)`` for pairs above the
    threshold in at least ``min_persistence`` of the windows.  The mean lag's
    sign says who leads on average (positive: ``i`` leads ``j``).
    """
    if not matrices:
        raise DataValidationError("lead_lag_graph_edges() needs at least one window")
    if not 0.0 <= min_persistence <= 1.0:
        raise QueryValidationError(
            f"min_persistence must lie in [0, 1], got {min_persistence}"
        )
    counts: dict = {}
    corr_sums: dict = {}
    lag_sums: dict = {}
    for window in matrices:
        for i, j, value, lag in window.edges(threshold):
            counts[(i, j)] = counts.get((i, j), 0) + 1
            corr_sums[(i, j)] = corr_sums.get((i, j), 0.0) + value
            lag_sums[(i, j)] = lag_sums.get((i, j), 0.0) + lag
    needed = min_persistence * len(matrices)
    return [
        (i, j, corr_sums[(i, j)] / count, lag_sums[(i, j)] / count)
        for (i, j), count in sorted(counts.items())
        if count >= needed
    ]
