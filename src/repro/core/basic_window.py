"""Basic-window layout and the Eq. 1 statistics it induces.

Dangoron (like TSUBASA before it) divides every series into consecutive
*basic windows* of ``b`` time points.  For each basic window the sketch stores
per-series means and standard deviations and, for every pair, the basic-window
correlation.  Equation 1 of the paper recombines those statistics into the
exact Pearson correlation of any query window that is a union of basic
windows:

.. math::

    Corr(x, y) = \\frac{\\sum_j B_j (\\sigma_{x_j}\\sigma_{y_j} c_j
                 + \\delta_{x_j}\\delta_{y_j})}
                {\\sqrt{\\sum_i B_i(\\sigma_{x_i}^2 + \\delta_{x_i}^2)}
                 \\sqrt{\\sum_i B_i(\\sigma_{y_i}^2 + \\delta_{y_i}^2)}}

with :math:`\\delta_{x_i} = \\bar{x}_i - \\mathrm{mean}_k(\\bar{x}_k)`.  The
formula is the classical within/between decomposition of covariance; it is
exact when the grand mean is the *size-weighted* mean of the basic-window
means (which reduces to the paper's unweighted mean when all basic windows
have equal size, the layout this module produces).

This module contains the layout arithmetic (:class:`BasicWindowLayout`) and
scalar reference implementations of Eq. 1 (:func:`combine_pair_eq1`) used for
testing; the vectorised sketch lives in :mod:`repro.core.sketch`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.config import (
    DEFAULT_BASIC_WINDOW_SIZE,
    FLOAT_DTYPE,
    VARIANCE_EPSILON,
    clamp_correlation,
)
from repro.core.query import SlidingQuery
from repro.exceptions import SketchError


@dataclass(frozen=True)
class BasicWindowLayout:
    """A partition of the column range ``[offset, offset + size*count)``.

    Every basic window has exactly ``size`` columns; basic window ``w`` covers
    columns ``[offset + w*size, offset + (w+1)*size)``.  Query windows handled
    by the pruned engine must be unions of whole basic windows, which the
    layout checks with :meth:`covering`.
    """

    offset: int
    size: int
    count: int

    def __post_init__(self) -> None:
        if self.size < 2:
            raise SketchError(f"basic window size must be at least 2, got {self.size}")
        if self.count < 1:
            raise SketchError(f"layout must contain at least one basic window")
        if self.offset < 0:
            raise SketchError(f"layout offset must be non-negative, got {self.offset}")

    # ------------------------------------------------------------------ extent
    @property
    def covered_start(self) -> int:
        """First column covered by the layout."""
        return self.offset

    @property
    def covered_end(self) -> int:
        """One past the last column covered by the layout."""
        return self.offset + self.size * self.count

    def window_bounds(self, w: int) -> Tuple[int, int]:
        """Column range ``[start, end)`` of basic window ``w``."""
        if not 0 <= w < self.count:
            raise SketchError(f"basic window index {w} out of range [0, {self.count})")
        begin = self.offset + w * self.size
        return begin, begin + self.size

    # ------------------------------------------------------------------ mapping
    def is_aligned(self, start: int, end: int) -> bool:
        """``True`` when ``[start, end)`` is a union of whole basic windows."""
        if start < self.covered_start or end > self.covered_end or start >= end:
            return False
        return (start - self.offset) % self.size == 0 and (end - self.offset) % self.size == 0

    def covering(self, start: int, end: int) -> Tuple[int, int]:
        """Return ``(first_basic_window, num_basic_windows)`` covering ``[start, end)``.

        Raises :class:`SketchError` when the range is not aligned to the
        layout; the unaligned case is handled by the TSUBASA edge-correction
        path, not by the layout.
        """
        if not self.is_aligned(start, end):
            raise SketchError(
                f"column range [{start}, {end}) is not aligned to basic windows of "
                f"size {self.size} starting at {self.offset}"
            )
        first = (start - self.offset) // self.size
        count = (end - start) // self.size
        return first, count

    def enclosing(self, start: int, end: int) -> Tuple[int, int, int, int]:
        """Return the aligned core of an arbitrary range plus the raw edges.

        Returns ``(first_bw, num_bw, head_cols, tail_cols)`` where the aligned
        core covers ``num_bw`` basic windows starting at ``first_bw``,
        ``head_cols`` columns precede it and ``tail_cols`` columns follow it
        inside ``[start, end)``.  Used by the exact unaligned path.
        """
        if start < self.covered_start or end > self.covered_end or start >= end:
            raise SketchError(
                f"column range [{start}, {end}) is outside the sketch coverage "
                f"[{self.covered_start}, {self.covered_end})"
            )
        first = math.ceil((start - self.offset) / self.size)
        last = (end - self.offset) // self.size
        if last <= first:
            # Range fits inside fewer than one whole basic window.
            return first, 0, end - start, 0
        head = (self.offset + first * self.size) - start
        tail = end - (self.offset + last * self.size)
        return first, last - first, head, tail

    # ------------------------------------------------------------ construction
    @classmethod
    def for_range(cls, start: int, end: int, size: int) -> "BasicWindowLayout":
        """Layout covering as much of ``[start, end)`` as whole windows allow."""
        if end - start < size:
            raise SketchError(
                f"range [{start}, {end}) is shorter than one basic window ({size})"
            )
        count = (end - start) // size
        return cls(offset=start, size=size, count=count)

    @classmethod
    def for_query(
        cls,
        query: SlidingQuery,
        requested_size: int = DEFAULT_BASIC_WINDOW_SIZE,
    ) -> "BasicWindowLayout":
        """Layout aligned with a sliding query.

        The basic window size must divide both the query window ``l`` and the
        sliding step ``eta`` so that every sliding window is a union of whole
        basic windows.  The chosen size is the largest divisor of
        ``gcd(l, eta)`` that does not exceed ``requested_size`` (and is at
        least 2).
        """
        size = choose_basic_window_size(query.window, query.step, requested_size)
        return cls.for_range(query.start, query.end, size)


def choose_basic_window_size(window: int, step: int, requested: int) -> int:
    """Largest divisor of ``gcd(window, step)`` that is ``<= requested`` and ``>= 2``.

    Raises :class:`SketchError` when no such divisor exists (e.g. the gcd is 1),
    because the pruned engine then cannot align basic windows with the query.
    """
    if requested < 2:
        raise SketchError(f"requested basic window size must be >= 2, got {requested}")
    gcd = math.gcd(int(window), int(step))
    best = 0
    for candidate in range(2, min(gcd, requested) + 1):
        if gcd % candidate == 0:
            best = candidate
    if best == 0:
        raise SketchError(
            f"cannot align basic windows with window={window}, step={step}: "
            f"gcd={gcd} has no divisor in [2, {requested}]"
        )
    return best


# --------------------------------------------------------------------------
# Scalar reference implementation of Eq. 1 (used by tests and documentation).
# --------------------------------------------------------------------------

def basic_window_statistics(series: np.ndarray, size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-basic-window means and population standard deviations of one series.

    The series length must be a multiple of ``size``.  Returns ``(means, stds)``
    each of length ``len(series) // size``.
    """
    series = np.asarray(series, dtype=FLOAT_DTYPE)
    if series.ndim != 1:
        raise SketchError("basic_window_statistics() expects a 1-D series")
    if len(series) % size != 0:
        raise SketchError(
            f"series length {len(series)} is not a multiple of the basic window "
            f"size {size}"
        )
    blocks = series.reshape(-1, size)
    return blocks.mean(axis=1), blocks.std(axis=1)


def basic_window_correlations(x: np.ndarray, y: np.ndarray, size: int) -> np.ndarray:
    """Pearson correlation of each aligned basic-window pair of two series."""
    x = np.asarray(x, dtype=FLOAT_DTYPE)
    y = np.asarray(y, dtype=FLOAT_DTYPE)
    if x.shape != y.shape:
        raise SketchError("series must have equal length")
    if len(x) % size != 0:
        raise SketchError(
            f"series length {len(x)} is not a multiple of the basic window size {size}"
        )
    xb = x.reshape(-1, size)
    yb = y.reshape(-1, size)
    xc = xb - xb.mean(axis=1, keepdims=True)
    yc = yb - yb.mean(axis=1, keepdims=True)
    var_x = np.einsum("ij,ij->i", xc, xc)
    var_y = np.einsum("ij,ij->i", yc, yc)
    degenerate = (var_x < VARIANCE_EPSILON * size) | (var_y < VARIANCE_EPSILON * size)
    safe = np.sqrt(np.where(degenerate, 1.0, var_x * var_y))
    corr = np.where(degenerate, 0.0, np.einsum("ij,ij->i", xc, yc) / safe)
    return np.clip(corr, -1.0, 1.0)


def combine_pair_eq1(
    sizes: Sequence[int],
    means_x: Sequence[float],
    means_y: Sequence[float],
    stds_x: Sequence[float],
    stds_y: Sequence[float],
    corrs: Sequence[float],
    weighted_grand_mean: bool = True,
) -> float:
    """Equation 1: recombine basic-window statistics into a window correlation.

    Parameters mirror the paper's notation: ``sizes`` are the basic-window
    sizes ``B_j``, ``means_*``/``stds_*`` the per-basic-window means and
    population standard deviations, and ``corrs`` the per-basic-window
    correlations ``c_j``.

    ``weighted_grand_mean=True`` uses the size-weighted grand mean (exact for
    unequal basic windows); ``False`` uses the paper's plain average of
    basic-window means (identical when all sizes are equal).
    """
    sizes_arr = np.asarray(sizes, dtype=FLOAT_DTYPE)
    mx = np.asarray(means_x, dtype=FLOAT_DTYPE)
    my = np.asarray(means_y, dtype=FLOAT_DTYPE)
    sx = np.asarray(stds_x, dtype=FLOAT_DTYPE)
    sy = np.asarray(stds_y, dtype=FLOAT_DTYPE)
    c = np.asarray(corrs, dtype=FLOAT_DTYPE)
    if not (len(sizes_arr) == len(mx) == len(my) == len(sx) == len(sy) == len(c)):
        raise SketchError("Eq. 1 inputs must all have the same number of basic windows")
    if len(sizes_arr) == 0:
        raise SketchError("Eq. 1 needs at least one basic window")

    if weighted_grand_mean:
        grand_x = float(np.dot(sizes_arr, mx) / sizes_arr.sum())
        grand_y = float(np.dot(sizes_arr, my) / sizes_arr.sum())
    else:
        grand_x = float(mx.mean())
        grand_y = float(my.mean())

    delta_x = mx - grand_x
    delta_y = my - grand_y
    numerator = float(np.dot(sizes_arr, sx * sy * c + delta_x * delta_y))
    denom_x = float(np.dot(sizes_arr, sx * sx + delta_x * delta_x))
    denom_y = float(np.dot(sizes_arr, sy * sy + delta_y * delta_y))
    if denom_x < VARIANCE_EPSILON * sizes_arr.sum() or denom_y < VARIANCE_EPSILON * sizes_arr.sum():
        return 0.0
    return clamp_correlation(numerator / math.sqrt(denom_x * denom_y))


def combine_pair_from_series(x: np.ndarray, y: np.ndarray, size: int) -> float:
    """Convenience wrapper: run Eq. 1 end-to-end on two raw series.

    Splits both series into basic windows of ``size`` points, computes the
    per-window statistics and recombines them.  Tests compare the output with
    :func:`repro.core.correlation.pearson` to validate the decomposition.
    """
    mx, sx = basic_window_statistics(x, size)
    my, sy = basic_window_statistics(y, size)
    c = basic_window_correlations(x, y, size)
    sizes = [size] * len(c)
    return combine_pair_eq1(sizes, mx, my, sx, sy, c)
