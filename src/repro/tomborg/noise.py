"""Noise and corruption models for robustness testing.

Tomborg's purpose is "to test framework robustness" on "datasets with varying
distributions".  Distribution and spectrum shape cover the clean-signal axis;
this module adds the measurement axis: white observation noise, autocorrelated
(AR(1)) sensor drift, per-series heteroscedastic noise, impulsive outliers,
and missing values.  Every model is a small object applied to a generated
matrix (or any :class:`~repro.timeseries.matrix.TimeSeriesMatrix`), so a
robustness sweep can combine any generator configuration with any corruption.

Noise attenuates realized correlations in a predictable way — for
unit-variance signals and independent noise of variance ``sigma^2`` the
expected correlation shrinks by ``1 / (1 + sigma^2)`` — which
:func:`expected_attenuation` exposes so tests and experiments can set
thresholds consciously.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.exceptions import GenerationError
from repro.timeseries.matrix import TimeSeriesMatrix
from repro.tomborg.generator import TomborgDataset

MatrixOrDataset = Union[TimeSeriesMatrix, TomborgDataset]


class NoiseModel(abc.ABC):
    """A corruption applied to an ``(N, L)`` values array."""

    @abc.abstractmethod
    def apply(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a corrupted copy of ``values`` (the input is not modified)."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Short name used in experiment reports."""

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}({self.describe()})"


@dataclass
class WhiteNoise(NoiseModel):
    """Independent Gaussian measurement noise added to every observation."""

    sigma: float = 0.1

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise GenerationError(f"sigma must be non-negative, got {self.sigma}")

    def apply(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return values + rng.normal(0.0, self.sigma, size=values.shape)

    def describe(self) -> str:
        return f"white(sigma={self.sigma})"


@dataclass
class AR1Noise(NoiseModel):
    """Autocorrelated (AR(1)) additive noise — slow sensor drift.

    Unlike white noise, AR(1) noise is itself correlated in time, so it
    inflates short-window correlation *estimates'* variance as well as
    attenuating their mean.
    """

    sigma: float = 0.1
    coefficient: float = 0.9

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise GenerationError(f"sigma must be non-negative, got {self.sigma}")
        if not -1.0 < self.coefficient < 1.0:
            raise GenerationError(
                f"AR(1) coefficient must lie strictly inside (-1, 1), got "
                f"{self.coefficient}"
            )

    def apply(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n, length = values.shape
        innovation_scale = self.sigma * np.sqrt(1.0 - self.coefficient**2)
        innovations = rng.normal(0.0, innovation_scale, size=(n, length))
        noise = np.zeros_like(values)
        noise[:, 0] = rng.normal(0.0, self.sigma, size=n)
        for t in range(1, length):
            noise[:, t] = self.coefficient * noise[:, t - 1] + innovations[:, t]
        return values + noise

    def describe(self) -> str:
        return f"ar1(sigma={self.sigma},phi={self.coefficient})"


@dataclass
class HeteroscedasticNoise(NoiseModel):
    """White noise whose standard deviation differs per series.

    Each series draws its own sigma uniformly from ``[sigma_low, sigma_high]``,
    modelling sensor networks with mixed instrument quality.
    """

    sigma_low: float = 0.0
    sigma_high: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 <= self.sigma_low <= self.sigma_high:
            raise GenerationError(
                f"need 0 <= sigma_low <= sigma_high, got "
                f"({self.sigma_low}, {self.sigma_high})"
            )

    def apply(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = values.shape[0]
        sigmas = rng.uniform(self.sigma_low, self.sigma_high, size=n)
        return values + sigmas[:, None] * rng.standard_normal(values.shape)

    def describe(self) -> str:
        return f"heteroscedastic[{self.sigma_low},{self.sigma_high}]"


@dataclass
class ImpulseNoise(NoiseModel):
    """Sparse large-magnitude outliers (sensor glitches, data-entry errors)."""

    probability: float = 0.01
    magnitude: float = 5.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise GenerationError(
                f"probability must lie in [0, 1], got {self.probability}"
            )
        if self.magnitude < 0:
            raise GenerationError(f"magnitude must be non-negative, got {self.magnitude}")

    def apply(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        corrupted = np.array(values, dtype=FLOAT_DTYPE, copy=True)
        mask = rng.random(values.shape) < self.probability
        signs = np.where(rng.random(values.shape) < 0.5, -1.0, 1.0)
        scale = np.std(values) if np.std(values) > 0 else 1.0
        corrupted[mask] += (signs * self.magnitude * scale)[mask]
        return corrupted

    def describe(self) -> str:
        return f"impulse(p={self.probability},m={self.magnitude})"


@dataclass
class MissingData(NoiseModel):
    """Randomly drop observations and repair them the way a loader would.

    ``fill="interpolate"`` replaces dropped values by linear interpolation
    along the series (the paper's synchronization-through-interpolation
    assumption); ``fill="nan"`` leaves NaNs for downstream preprocessing.
    """

    probability: float = 0.05
    fill: str = "interpolate"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise GenerationError(
                f"probability must lie in [0, 1], got {self.probability}"
            )
        if self.fill not in ("interpolate", "nan"):
            raise GenerationError(
                f"fill must be 'interpolate' or 'nan', got {self.fill!r}"
            )

    def apply(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        corrupted = np.array(values, dtype=FLOAT_DTYPE, copy=True)
        mask = rng.random(values.shape) < self.probability
        corrupted[mask] = np.nan
        if self.fill == "nan":
            return corrupted
        for row in range(corrupted.shape[0]):
            series = corrupted[row]
            missing = ~np.isfinite(series)
            if not missing.any():
                continue
            if missing.all():
                corrupted[row] = 0.0
                continue
            present = np.flatnonzero(~missing)
            corrupted[row, missing] = np.interp(
                np.flatnonzero(missing), present, series[present]
            )
        return corrupted

    def describe(self) -> str:
        return f"missing(p={self.probability},fill={self.fill})"


def expected_attenuation(noise_sigma: float, signal_variance: float = 1.0) -> float:
    """Expected multiplicative shrinkage of a correlation under independent noise.

    For two series with true correlation ``r``, signal variance ``v`` and
    independent additive noise of variance ``sigma^2`` on both, the expected
    sample correlation is ``r * v / (v + sigma^2)``.
    """
    if noise_sigma < 0:
        raise GenerationError(f"noise_sigma must be non-negative, got {noise_sigma}")
    if signal_variance <= 0:
        raise GenerationError(
            f"signal_variance must be positive, got {signal_variance}"
        )
    return signal_variance / (signal_variance + noise_sigma**2)


def apply_noise(
    data: MatrixOrDataset,
    model: NoiseModel,
    seed: Optional[int] = None,
) -> MatrixOrDataset:
    """Apply a noise model to a matrix or a Tomborg dataset.

    Returns the same type as the input: for a dataset the segments (ground
    truth targets) are preserved unchanged — the realized correlations now
    deviate from them, which is exactly what a robustness experiment measures.
    """
    rng = np.random.default_rng(seed)
    if isinstance(data, TomborgDataset):
        noisy_values = model.apply(data.matrix.values, rng)
        allow_nan = not np.all(np.isfinite(noisy_values))
        matrix = TimeSeriesMatrix(
            noisy_values,
            series_ids=data.matrix.series_ids,
            time_axis=data.matrix.time_axis,
            allow_nan=allow_nan,
        )
        return TomborgDataset(matrix=matrix, segments=list(data.segments), seed=data.seed)
    if isinstance(data, TimeSeriesMatrix):
        noisy_values = model.apply(data.values, rng)
        allow_nan = not np.all(np.isfinite(noisy_values))
        return TimeSeriesMatrix(
            noisy_values,
            series_ids=data.series_ids,
            time_axis=data.time_axis,
            allow_nan=allow_nan,
        )
    raise GenerationError(
        f"apply_noise() expects a TimeSeriesMatrix or TomborgDataset, got {type(data)!r}"
    )


def named_noise(name: str, **kwargs) -> NoiseModel:
    """Factory used by benchmark configurations.

    Known names: ``white``, ``ar1``, ``heteroscedastic``, ``impulse``, ``missing``.
    """
    registry = {
        "white": WhiteNoise,
        "ar1": AR1Noise,
        "heteroscedastic": HeteroscedasticNoise,
        "impulse": ImpulseNoise,
        "missing": MissingData,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise GenerationError(
            f"unknown noise model {name!r}; known: {sorted(registry)}"
        ) from None
    return cls(**kwargs)
