"""Validation of Tomborg output against its ground truth.

A benchmark generator is only useful if the data it produces actually has the
correlation structure it claims.  These helpers quantify the gap between the
target matrices recorded in a :class:`TomborgDataset` and the empirical
correlations of the generated series, both as matrix-level error metrics and
as edge-set agreement at a threshold (the quantity the sliding-query
experiments ultimately care about).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.core.correlation import correlation_matrix
from repro.exceptions import GenerationError
from repro.tomborg.generator import TomborgDataset


@dataclass
class SegmentValidation:
    """Error metrics for one generated segment."""

    segment_index: int
    start: int
    end: int
    max_abs_error: float
    mean_abs_error: float
    rmse: float
    edge_jaccard: float

    def as_dict(self) -> dict:
        return {
            "segment": self.segment_index,
            "start": self.start,
            "end": self.end,
            "max_abs_error": self.max_abs_error,
            "mean_abs_error": self.mean_abs_error,
            "rmse": self.rmse,
            "edge_jaccard": self.edge_jaccard,
        }


def empirical_correlation(dataset: TomborgDataset, start: int, end: int) -> np.ndarray:
    """Empirical correlation matrix of the generated data over ``[start, end)``."""
    if start < 0 or end > dataset.length or start >= end:
        raise GenerationError(f"invalid column range [{start}, {end})")
    return correlation_matrix(dataset.matrix.values[:, start:end])


def _edge_jaccard(target: np.ndarray, empirical: np.ndarray, beta: float) -> float:
    iu, ju = np.triu_indices(target.shape[0], k=1)
    target_edges = set(zip(iu[target[iu, ju] >= beta], ju[target[iu, ju] >= beta]))
    empirical_edges = set(
        zip(iu[empirical[iu, ju] >= beta], ju[empirical[iu, ju] >= beta])
    )
    union = target_edges | empirical_edges
    if not union:
        return 1.0
    return len(target_edges & empirical_edges) / len(union)


def validate_dataset(
    dataset: TomborgDataset, edge_threshold: float = 0.7
) -> List[SegmentValidation]:
    """Compare every segment's empirical correlation with its target.

    Returns one :class:`SegmentValidation` per segment.  ``edge_jaccard`` is
    the Jaccard similarity between the edge sets induced by thresholding the
    target and the empirical matrix at ``edge_threshold``.
    """
    results: List[SegmentValidation] = []
    for index, segment in enumerate(dataset.segments):
        empirical = empirical_correlation(dataset, segment.start, segment.end)
        target = np.asarray(segment.target, dtype=FLOAT_DTYPE)
        iu, ju = np.triu_indices(target.shape[0], k=1)
        errors = np.abs(empirical[iu, ju] - target[iu, ju])
        results.append(
            SegmentValidation(
                segment_index=index,
                start=segment.start,
                end=segment.end,
                max_abs_error=float(errors.max()) if len(errors) else 0.0,
                mean_abs_error=float(errors.mean()) if len(errors) else 0.0,
                rmse=float(np.sqrt(np.mean(errors**2))) if len(errors) else 0.0,
                edge_jaccard=_edge_jaccard(target, empirical, edge_threshold),
            )
        )
    return results


def max_target_error(dataset: TomborgDataset) -> float:
    """Worst per-segment maximum absolute error (quick pass/fail number)."""
    validations = validate_dataset(dataset)
    if not validations:
        return 0.0
    return max(v.max_abs_error for v in validations)
