"""Tomborg: the benchmark data generator proposed by the paper (substrate S5).

Tomborg produces synthetic time-series matrices with a *known* correlation
structure: the user picks a distribution (or explicit matrix) for the target
correlations and a spectrum shape controlling how energy spreads over
frequencies; the generator draws correlated coefficients in frequency space
and maps them to the time domain with an orthonormal real-valued inverse DFT,
so the imposed correlations survive the transform.
"""

from repro.tomborg.correlation_targets import (
    block_correlation_matrix,
    factor_correlation_matrix,
    is_valid_correlation_matrix,
    nearest_correlation_matrix,
    random_correlation_from_eigenvalues,
    random_correlation_matrix,
)
from repro.tomborg.distributions import (
    BetaCorrelations,
    BimodalCorrelations,
    ConstantCorrelations,
    CorrelationDistribution,
    SparseSpikeCorrelations,
    UniformCorrelations,
    named_distribution,
)
from repro.tomborg.generator import (
    SegmentSpec,
    TomborgDataset,
    TomborgGenerator,
    TomborgSegment,
    quick_dataset,
)
from repro.tomborg.noise import (
    AR1Noise,
    HeteroscedasticNoise,
    ImpulseNoise,
    MissingData,
    NoiseModel,
    WhiteNoise,
    apply_noise,
    expected_attenuation,
    named_noise,
)
from repro.tomborg.spectral import (
    SpectrumShape,
    band_limited_spectrum,
    flat_spectrum,
    named_spectrum,
    peaked_spectrum,
    power_law_spectrum,
    real_forward_dft,
    real_inverse_dft,
    real_synthesis_matrix,
)
from repro.tomborg.suite import (
    DEFAULT_SUITE,
    SuiteCase,
    case_by_name,
    default_suite,
)
from repro.tomborg.validation import (
    SegmentValidation,
    empirical_correlation,
    max_target_error,
    validate_dataset,
)

__all__ = [
    "AR1Noise",
    "BetaCorrelations",
    "BimodalCorrelations",
    "ConstantCorrelations",
    "CorrelationDistribution",
    "DEFAULT_SUITE",
    "HeteroscedasticNoise",
    "ImpulseNoise",
    "MissingData",
    "NoiseModel",
    "SegmentSpec",
    "SegmentValidation",
    "SparseSpikeCorrelations",
    "SpectrumShape",
    "SuiteCase",
    "TomborgDataset",
    "TomborgGenerator",
    "TomborgSegment",
    "UniformCorrelations",
    "WhiteNoise",
    "apply_noise",
    "band_limited_spectrum",
    "block_correlation_matrix",
    "case_by_name",
    "default_suite",
    "empirical_correlation",
    "expected_attenuation",
    "factor_correlation_matrix",
    "flat_spectrum",
    "is_valid_correlation_matrix",
    "max_target_error",
    "named_distribution",
    "named_noise",
    "named_spectrum",
    "nearest_correlation_matrix",
    "peaked_spectrum",
    "power_law_spectrum",
    "quick_dataset",
    "random_correlation_from_eigenvalues",
    "random_correlation_matrix",
    "real_forward_dft",
    "real_inverse_dft",
    "real_synthesis_matrix",
    "validate_dataset",
]
