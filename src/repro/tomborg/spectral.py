"""Real-valued DFT pair and spectrum shaping (Tomborg steps 2 and 3).

Tomborg generates series "in frequency space" and maps them to the time domain
with "a real-value variant of the inverse-DFT, transitioning from a complex
space to a real space".  The variant implemented here is the orthonormal real
trigonometric basis

.. math::

    x_t = \\frac{a_0}{\\sqrt{L}}
        + \\sqrt{\\tfrac{2}{L}} \\sum_{k=1}^{K} \\big(a_k \\cos(2\\pi k t / L)
                                              - b_k \\sin(2\\pi k t / L)\\big)
        + \\frac{a_{L/2}}{\\sqrt{L}} (-1)^t \\; [L\\ \\text{even}]

whose synthesis matrix is orthogonal, so Euclidean distances and inner
products between real coefficient vectors are preserved exactly in the time
domain (the property the paper invokes: "DFT preserves the distance between
coefficients and the original time series").  In particular, cross-series
correlations imposed on the coefficients carry over to the generated series.

:func:`real_forward_dft` is the exact inverse of :func:`real_inverse_dft`;
round-trip and orthonormality are covered by property tests.

Spectrum *shapers* produce per-frequency magnitude envelopes that control how
energy concentrates across frequencies.  They matter because the robustness of
DFT-truncation methods (StatStream/BRAID family) depends exactly on that
concentration (experiment E10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.exceptions import GenerationError


# ---------------------------------------------------------------------------
# Real-valued DFT pair
# ---------------------------------------------------------------------------

def num_real_coefficients(length: int) -> int:
    """Number of real coefficients describing a real series of ``length`` points.

    One DC term, ``floor((L-1)/2)`` cosine/sine pairs, plus a lone Nyquist term
    when ``L`` is even — always exactly ``L`` numbers, as required for an
    orthonormal change of basis.
    """
    if length < 2:
        raise GenerationError(f"series length must be at least 2, got {length}")
    return length


def real_synthesis_matrix(length: int) -> np.ndarray:
    """The ``L x L`` orthonormal synthesis matrix of the real DFT basis.

    Column order: DC, then (cos_1, sin_1), (cos_2, sin_2), …, and a final
    Nyquist column for even ``L``.  ``real_inverse_dft(c) == c @ matrix.T``.
    """
    if length < 2:
        raise GenerationError(f"series length must be at least 2, got {length}")
    t = np.arange(length, dtype=FLOAT_DTYPE)
    columns = [np.full(length, 1.0 / np.sqrt(length), dtype=FLOAT_DTYPE)]
    num_pairs = (length - 1) // 2
    scale = np.sqrt(2.0 / length)
    for k in range(1, num_pairs + 1):
        angle = 2.0 * np.pi * k * t / length
        columns.append(scale * np.cos(angle))
        columns.append(-scale * np.sin(angle))
    if length % 2 == 0:
        columns.append(((-1.0) ** t) / np.sqrt(length))
    return np.stack(columns, axis=1)


def real_inverse_dft(coefficients: np.ndarray) -> np.ndarray:
    """Map real spectral coefficients to real time series (rows are series).

    ``coefficients`` has shape ``(..., L)`` in the column order documented on
    :func:`real_synthesis_matrix`; the output has the same shape.
    """
    coefficients = np.asarray(coefficients, dtype=FLOAT_DTYPE)
    length = coefficients.shape[-1]
    basis = real_synthesis_matrix(length)
    return coefficients @ basis.T


def real_forward_dft(series: np.ndarray) -> np.ndarray:
    """Inverse of :func:`real_inverse_dft` (orthonormal analysis transform)."""
    series = np.asarray(series, dtype=FLOAT_DTYPE)
    length = series.shape[-1]
    basis = real_synthesis_matrix(length)
    return series @ basis


# ---------------------------------------------------------------------------
# Spectrum shaping
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SpectrumShape:
    """A named per-frequency magnitude envelope.

    ``envelope(length)`` returns a length-``L`` array of non-negative weights
    in the real-coefficient ordering (DC, cos/sin pairs, Nyquist).  The
    generator multiplies coefficient draws by the envelope, so the square of
    the envelope is the expected power at each basis function.
    """

    name: str
    envelope_fn: Callable[[int], np.ndarray]

    def envelope(self, length: int) -> np.ndarray:
        env = np.asarray(self.envelope_fn(length), dtype=FLOAT_DTYPE)
        if env.shape != (length,):
            raise GenerationError(
                f"spectrum shape {self.name!r} produced an envelope of shape "
                f"{env.shape}, expected ({length},)"
            )
        if np.any(env < 0):
            raise GenerationError(
                f"spectrum shape {self.name!r} produced negative weights"
            )
        if not np.any(env > 0):
            raise GenerationError(
                f"spectrum shape {self.name!r} produced an all-zero envelope"
            )
        return env

    def describe(self) -> str:
        return self.name


def _pair_frequencies(length: int) -> np.ndarray:
    """Frequency index of every real coefficient (0 for DC, k for the k-th pair)."""
    freqs = [0]
    num_pairs = (length - 1) // 2
    for k in range(1, num_pairs + 1):
        freqs.extend([k, k])
    if length % 2 == 0:
        freqs.append(length // 2)
    return np.asarray(freqs, dtype=FLOAT_DTYPE)


def flat_spectrum() -> SpectrumShape:
    """White spectrum: equal expected power at every frequency.

    This is the adversarial case for DFT-truncation sketches — no coefficient
    subset captures most of the energy.
    """
    def envelope(length: int) -> np.ndarray:
        env = np.ones(length, dtype=FLOAT_DTYPE)
        env[0] = 0.0  # keep generated series zero-mean
        return env

    return SpectrumShape("flat", envelope)


def power_law_spectrum(alpha: float = 1.0) -> SpectrumShape:
    """``1/f^alpha`` magnitude envelope (pink/brown noise for alpha = 1, 2).

    Climate and BOLD signals are well approximated by small positive alphas;
    larger alphas concentrate energy at low frequencies, the friendly case for
    frequency-domain sketches.
    """
    if alpha < 0:
        raise GenerationError(f"alpha must be non-negative, got {alpha}")

    def envelope(length: int) -> np.ndarray:
        freqs = _pair_frequencies(length)
        env = np.zeros(length, dtype=FLOAT_DTYPE)
        nonzero = freqs > 0
        env[nonzero] = 1.0 / np.power(freqs[nonzero], alpha)
        return env

    return SpectrumShape(f"power_law(alpha={alpha})", envelope)


def band_limited_spectrum(low: float = 0.0, high: float = 0.1) -> SpectrumShape:
    """Energy confined to normalized frequencies ``[low, high]`` (of Nyquist = 0.5).

    Mirrors the 0.01–0.1 Hz band of BOLD fMRI fluctuations when combined with
    the fMRI dataset's sampling interval.
    """
    if not 0.0 <= low < high <= 0.5:
        raise GenerationError(
            f"band must satisfy 0 <= low < high <= 0.5, got ({low}, {high})"
        )

    def envelope(length: int) -> np.ndarray:
        freqs = _pair_frequencies(length) / length
        env = ((freqs >= low) & (freqs <= high)).astype(FLOAT_DTYPE)
        env[0] = 0.0
        if not np.any(env > 0):
            # Guarantee at least one active pair so the envelope is usable for
            # very short series.
            env[1] = 1.0
            if length > 2:
                env[2] = 1.0
        return env

    return SpectrumShape(f"band[{low},{high}]", envelope)


def peaked_spectrum(center: float = 0.05, width: float = 0.01) -> SpectrumShape:
    """Narrow Gaussian bump of energy around a normalized center frequency.

    Produces strongly oscillatory series (seasonal/diurnal-like) whose energy
    concentrates in very few coefficients — the best case for DFT truncation.
    """
    if not 0.0 < center <= 0.5:
        raise GenerationError(f"center must lie in (0, 0.5], got {center}")
    if width <= 0:
        raise GenerationError(f"width must be positive, got {width}")

    def envelope(length: int) -> np.ndarray:
        freqs = _pair_frequencies(length) / length
        env = np.exp(-0.5 * ((freqs - center) / width) ** 2).astype(FLOAT_DTYPE)
        env[0] = 0.0
        return env

    return SpectrumShape(f"peaked(center={center},width={width})", envelope)


def named_spectrum(name: str, **kwargs) -> SpectrumShape:
    """Factory used by benchmark configurations.

    Known names: ``flat``, ``power_law``, ``band``, ``peaked``.
    """
    registry: Dict[str, Callable[..., SpectrumShape]] = {
        "flat": flat_spectrum,
        "power_law": power_law_spectrum,
        "band": band_limited_spectrum,
        "peaked": peaked_spectrum,
    }
    try:
        factory = registry[name]
    except KeyError:
        raise GenerationError(
            f"unknown spectrum shape {name!r}; known: {sorted(registry)}"
        ) from None
    return factory(**kwargs)
