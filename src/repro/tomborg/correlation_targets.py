"""Construction and repair of target correlation matrices (Tomborg step 1).

A draw of pairwise correlation values from a
:class:`~repro.tomborg.distributions.CorrelationDistribution` is generally not
a valid correlation matrix (it need not be positive semi-definite).  The
functions here assemble the draw into a symmetric unit-diagonal matrix and
repair it to the nearest valid correlation matrix using Higham-style
alternating projections (eigenvalue clipping followed by diagonal
renormalization).  Structured constructors (block models, factor models) that
are PSD by construction are provided as well, because they give interpretable
ground-truth networks for the robustness experiments.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.exceptions import GenerationError
from repro.tomborg.distributions import CorrelationDistribution


def is_valid_correlation_matrix(matrix: np.ndarray, tolerance: float = 1e-8) -> bool:
    """Check symmetry, unit diagonal, entries in [-1, 1], and PSD-ness."""
    matrix = np.asarray(matrix, dtype=FLOAT_DTYPE)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    if not np.allclose(matrix, matrix.T, atol=tolerance):
        return False
    if not np.allclose(np.diag(matrix), 1.0, atol=tolerance):
        return False
    if np.any(np.abs(matrix) > 1.0 + tolerance):
        return False
    eigenvalues = np.linalg.eigvalsh((matrix + matrix.T) / 2.0)
    return bool(eigenvalues.min() >= -tolerance)


def nearest_correlation_matrix(
    matrix: np.ndarray,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Project a symmetric matrix onto the set of valid correlation matrices.

    Alternating projections between the PSD cone (clip negative eigenvalues)
    and the unit-diagonal affine set, following Higham (2002).  Converges to a
    matrix that is PSD to within ``tolerance`` and has an exactly unit
    diagonal.
    """
    matrix = np.asarray(matrix, dtype=FLOAT_DTYPE)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise GenerationError(
            f"nearest_correlation_matrix expects a square matrix, got {matrix.shape}"
        )
    symmetric = (matrix + matrix.T) / 2.0
    correction = np.zeros_like(symmetric)
    current = symmetric.copy()
    for _ in range(max_iterations):
        shifted = current - correction
        eigenvalues, eigenvectors = np.linalg.eigh(shifted)
        clipped = np.maximum(eigenvalues, 0.0)
        projected = (eigenvectors * clipped) @ eigenvectors.T
        correction = projected - shifted
        current = projected.copy()
        np.fill_diagonal(current, 1.0)
        current = np.clip(current, -1.0, 1.0)
        min_eig = np.linalg.eigvalsh((current + current.T) / 2.0).min()
        if min_eig >= -tolerance:
            break
    # Final cleanup: symmetrize, clip, unit diagonal, small PSD shift if needed.
    current = (current + current.T) / 2.0
    min_eig = float(np.linalg.eigvalsh(current).min())
    if min_eig < 0:
        n = current.shape[0]
        current = (current + (-min_eig + tolerance) * np.eye(n)) / (
            1.0 - min_eig + tolerance
        )
    np.fill_diagonal(current, 1.0)
    return np.clip(current, -1.0, 1.0)


def random_correlation_matrix(
    num_series: int,
    distribution: CorrelationDistribution,
    rng: Optional[np.random.Generator] = None,
    repair: bool = True,
) -> np.ndarray:
    """Draw off-diagonal correlations from ``distribution`` and repair to PSD.

    With ``repair=False`` the raw symmetric draw is returned (useful for tests
    that exercise the repair step itself).
    """
    if num_series < 2:
        raise GenerationError(f"need at least 2 series, got {num_series}")
    rng = rng if rng is not None else np.random.default_rng()
    iu, ju = np.triu_indices(num_series, k=1)
    values = distribution.sample(len(iu), rng)
    matrix = np.eye(num_series, dtype=FLOAT_DTYPE)
    matrix[iu, ju] = values
    matrix[ju, iu] = values
    if repair:
        matrix = nearest_correlation_matrix(matrix)
    return matrix


def block_correlation_matrix(
    block_sizes: Sequence[int],
    within: float = 0.8,
    between: float = 0.1,
) -> np.ndarray:
    """Community-structured correlation matrix (equicorrelated blocks).

    Every pair inside a block has correlation ``within`` and every pair across
    blocks has ``between``.  The matrix is repaired if the chosen values make
    it indefinite (possible for large ``between`` with many blocks).
    """
    block_sizes = [int(b) for b in block_sizes]
    if not block_sizes or any(b < 1 for b in block_sizes):
        raise GenerationError("block sizes must be positive integers")
    if not (-1.0 <= between <= 1.0 and -1.0 <= within <= 1.0):
        raise GenerationError("within/between correlations must lie in [-1, 1]")
    total = sum(block_sizes)
    matrix = np.full((total, total), between, dtype=FLOAT_DTYPE)
    offset = 0
    for size in block_sizes:
        matrix[offset : offset + size, offset : offset + size] = within
        offset += size
    np.fill_diagonal(matrix, 1.0)
    if not is_valid_correlation_matrix(matrix):
        matrix = nearest_correlation_matrix(matrix)
    return matrix


def factor_correlation_matrix(
    num_series: int,
    num_factors: int = 3,
    loading_scale: float = 0.7,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Correlation matrix implied by a linear factor model (PSD by construction).

    Each series loads on ``num_factors`` latent factors with Gaussian loadings
    of scale ``loading_scale``; the remaining variance is idiosyncratic.  This
    mirrors the structure of financial returns and parcellated fMRI signals.
    """
    if num_series < 2:
        raise GenerationError(f"need at least 2 series, got {num_series}")
    if num_factors < 1:
        raise GenerationError(f"need at least 1 factor, got {num_factors}")
    if not 0.0 < loading_scale < 1.0:
        raise GenerationError("loading_scale must lie in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng()
    loadings = rng.normal(0.0, 1.0, size=(num_series, num_factors))
    # Scale rows so that the factor part explains loading_scale^2 of variance.
    row_norms = np.linalg.norm(loadings, axis=1, keepdims=True)
    row_norms[row_norms == 0] = 1.0
    loadings = loadings / row_norms * loading_scale
    common = loadings @ loadings.T
    idiosyncratic = 1.0 - np.diag(common)
    covariance = common + np.diag(idiosyncratic)
    d = np.sqrt(np.diag(covariance))
    matrix = covariance / np.outer(d, d)
    np.fill_diagonal(matrix, 1.0)
    return np.clip(matrix.astype(FLOAT_DTYPE), -1.0, 1.0)


def random_correlation_from_eigenvalues(
    eigenvalues: Sequence[float],
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Random correlation matrix with prescribed eigenvalues (Davies–Higham).

    Thin wrapper over :func:`scipy.stats.random_correlation` that normalizes
    the eigenvalue sum to the matrix dimension as the routine requires.
    """
    from scipy import stats

    eigenvalues = np.asarray(eigenvalues, dtype=FLOAT_DTYPE)
    if eigenvalues.ndim != 1 or len(eigenvalues) < 2:
        raise GenerationError("need a 1-D list of at least two eigenvalues")
    if np.any(eigenvalues < 0):
        raise GenerationError("eigenvalues must be non-negative")
    if eigenvalues.sum() <= 0:
        raise GenerationError("eigenvalues must not all be zero")
    scaled = eigenvalues * (len(eigenvalues) / eigenvalues.sum())
    rng = rng if rng is not None else np.random.default_rng()
    matrix = stats.random_correlation.rvs(scaled, random_state=rng)
    return np.clip(matrix.astype(FLOAT_DTYPE), -1.0, 1.0)
