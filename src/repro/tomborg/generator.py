"""The Tomborg benchmark generator (the paper's second contribution).

Pipeline (paper §3): (1) generate a target correlation matrix ``C`` from a
user-specified distribution, (2) generate coefficients in frequency space
whose cross-series correlation equals ``C`` and whose per-frequency magnitudes
follow a chosen spectrum shape, (3) transform to the time domain with the
real-valued inverse DFT.

Because the real DFT basis is orthonormal, inner products between coefficient
vectors equal inner products between the generated series, so the imposed
correlation structure survives the transform exactly (up to coefficient
sampling noise).  The spectrum shape controls how energy spreads across
frequencies without touching the correlation structure — which is exactly the
knob needed to stress frequency-truncation baselines while keeping the ground
truth fixed.

:func:`TomborgGenerator.generate_piecewise` produces *piecewise-stationary*
data: consecutive column segments with different target matrices.  This gives
sliding-window queries a known, time-varying ground-truth network, the
scenario Dangoron's jumping structure is designed for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import DEFAULT_SEED, FLOAT_DTYPE
from repro.exceptions import GenerationError
from repro.timeseries.matrix import TimeAxis, TimeSeriesMatrix
from repro.tomborg.correlation_targets import (
    is_valid_correlation_matrix,
    nearest_correlation_matrix,
    random_correlation_matrix,
)
from repro.tomborg.distributions import CorrelationDistribution
from repro.tomborg.spectral import SpectrumShape, flat_spectrum, real_inverse_dft

TargetSpec = Union[np.ndarray, CorrelationDistribution]


@dataclass(frozen=True)
class SegmentSpec:
    """One piecewise-stationary segment: a column count and its target structure."""

    num_columns: int
    target: TargetSpec
    spectrum: Optional[SpectrumShape] = None

    def __post_init__(self) -> None:
        if self.num_columns < 2:
            raise GenerationError(
                f"segments must span at least 2 columns, got {self.num_columns}"
            )


@dataclass
class TomborgSegment:
    """Ground-truth record for one generated segment."""

    start: int
    end: int
    target: np.ndarray
    spectrum_name: str

    @property
    def num_columns(self) -> int:
        return self.end - self.start


@dataclass
class TomborgDataset:
    """A generated matrix plus the ground truth it was generated from."""

    matrix: TimeSeriesMatrix
    segments: List[TomborgSegment] = field(default_factory=list)
    seed: Optional[int] = None

    @property
    def num_series(self) -> int:
        return self.matrix.num_series

    @property
    def length(self) -> int:
        return self.matrix.length

    def segment_containing(self, start: int, end: int) -> Optional[TomborgSegment]:
        """The segment fully containing ``[start, end)``, or ``None``."""
        for segment in self.segments:
            if segment.start <= start and end <= segment.end:
                return segment
        return None

    def target_edges(self, beta: float, segment_index: int = 0) -> set:
        """Pairs whose *target* correlation reaches ``beta`` in a segment."""
        target = self.segments[segment_index].target
        iu, ju = np.triu_indices(target.shape[0], k=1)
        keep = target[iu, ju] >= beta
        return {(int(i), int(j)) for i, j in zip(iu[keep], ju[keep])}


class TomborgGenerator:
    """Generate synthetic time-series matrices with known correlation structure.

    Parameters
    ----------
    num_series:
        Number of series ``N`` to generate.
    spectrum:
        Default :class:`SpectrumShape` (flat if omitted); individual segments
        may override it.
    observation_noise:
        Standard deviation of white noise added to the generated series.
        Noise attenuates the realized correlations below the target (by
        roughly ``1 / (1 + sigma^2)`` for unit-variance signals); the default
        of 0 keeps the target exact.
    scale, offset:
        Per-series affine transform applied after generation (correlations are
        scale/offset invariant; these only make the series look like physical
        measurements).
    exact:
        When ``True`` (default) the realized segment-wide correlation matrix
        equals the target *exactly*: the drawn spectral coefficients are
        whitened so their sample covariance is the identity before the
        correlation factor is applied.  When ``False`` the coefficients are
        left as raw draws, so the realized correlations fluctuate around the
        target with a variance governed by how many coefficients the spectrum
        shape activates (the behaviour of a purely stochastic generator).
    seed:
        RNG seed; every call with the same seed and specification reproduces
        the same dataset.
    """

    def __init__(
        self,
        num_series: int,
        spectrum: Optional[SpectrumShape] = None,
        observation_noise: float = 0.0,
        scale: float = 1.0,
        offset: float = 0.0,
        exact: bool = True,
        seed: Optional[int] = DEFAULT_SEED,
    ) -> None:
        if num_series < 2:
            raise GenerationError(f"need at least 2 series, got {num_series}")
        if observation_noise < 0:
            raise GenerationError("observation_noise must be non-negative")
        if scale == 0:
            raise GenerationError("scale must be non-zero")
        self.num_series = num_series
        self.spectrum = spectrum if spectrum is not None else flat_spectrum()
        self.observation_noise = observation_noise
        self.scale = scale
        self.offset = offset
        self.exact = exact
        self.seed = seed

    # ------------------------------------------------------------------ public
    def generate(
        self,
        length: int,
        target: TargetSpec,
        series_ids: Optional[Sequence[str]] = None,
    ) -> TomborgDataset:
        """Generate a single stationary dataset of ``length`` columns."""
        return self.generate_piecewise(
            [SegmentSpec(num_columns=length, target=target)],
            series_ids=series_ids,
        )

    def generate_piecewise(
        self,
        segments: Sequence[SegmentSpec],
        series_ids: Optional[Sequence[str]] = None,
    ) -> TomborgDataset:
        """Generate a piecewise-stationary dataset from segment specifications."""
        if not segments:
            raise GenerationError("at least one segment specification is required")
        rng = np.random.default_rng(self.seed)

        blocks: List[np.ndarray] = []
        records: List[TomborgSegment] = []
        cursor = 0
        for spec in segments:
            target = self._resolve_target(spec.target, rng)
            spectrum = spec.spectrum if spec.spectrum is not None else self.spectrum
            block = self._generate_segment(spec.num_columns, target, spectrum, rng)
            blocks.append(block)
            records.append(
                TomborgSegment(
                    start=cursor,
                    end=cursor + spec.num_columns,
                    target=target,
                    spectrum_name=spectrum.describe(),
                )
            )
            cursor += spec.num_columns

        values = np.concatenate(blocks, axis=1)
        if self.observation_noise > 0:
            values = values + rng.normal(
                0.0, self.observation_noise, size=values.shape
            )
        values = self.offset + self.scale * values

        if series_ids is None:
            series_ids = [f"tomborg{i}" for i in range(self.num_series)]
        matrix = TimeSeriesMatrix(
            values, series_ids=series_ids, time_axis=TimeAxis(0.0, 1.0)
        )
        return TomborgDataset(matrix=matrix, segments=records, seed=self.seed)

    # ---------------------------------------------------------------- internal
    def _resolve_target(
        self, target: TargetSpec, rng: np.random.Generator
    ) -> np.ndarray:
        if isinstance(target, CorrelationDistribution):
            return random_correlation_matrix(self.num_series, target, rng)
        matrix = np.asarray(target, dtype=FLOAT_DTYPE)
        if matrix.shape != (self.num_series, self.num_series):
            raise GenerationError(
                f"target correlation matrix must have shape "
                f"({self.num_series}, {self.num_series}), got {matrix.shape}"
            )
        if not is_valid_correlation_matrix(matrix):
            matrix = nearest_correlation_matrix(matrix)
        return matrix

    def _generate_segment(
        self,
        num_columns: int,
        target: np.ndarray,
        spectrum: SpectrumShape,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Steps 2 and 3: correlated spectral coefficients, then real inverse DFT."""
        factor = _correlation_factor(target)
        envelope = spectrum.envelope(num_columns)
        # Independent standard normal coefficients, shaped across frequencies
        # by the envelope, then mixed across series by the correlation factor.
        independent = rng.standard_normal((self.num_series, num_columns))
        shaped = independent * envelope[None, :]
        if self.exact:
            shaped = _whiten_rows(shaped)
        coefficients = factor @ shaped
        return real_inverse_dft(coefficients)


def _correlation_factor(target: np.ndarray) -> np.ndarray:
    """A matrix ``F`` with ``F F^T = target`` (eigen factor, robust to semidefiniteness)."""
    symmetric = (target + target.T) / 2.0
    eigenvalues, eigenvectors = np.linalg.eigh(symmetric)
    clipped = np.maximum(eigenvalues, 0.0)
    return eigenvectors * np.sqrt(clipped)


def _whiten_rows(coefficients: np.ndarray) -> np.ndarray:
    """Whiten rows so their sample covariance is (as close as possible to) identity.

    Columns that are identically zero (e.g. the suppressed DC coefficient)
    stay zero, which keeps the generated series exactly zero-mean.  When the
    number of active columns is smaller than the number of rows the sample
    covariance is singular and a pseudo-inverse square root is used; the
    realized correlations then match the target only approximately, which is
    unavoidable for such narrow spectra.
    """
    covariance = coefficients @ coefficients.T
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    tolerance = max(eigenvalues.max(), 0.0) * 1e-12 + 1e-300
    inverse_sqrt = np.where(eigenvalues > tolerance, 1.0 / np.sqrt(
        np.where(eigenvalues > tolerance, eigenvalues, 1.0)), 0.0)
    whitener = (eigenvectors * inverse_sqrt) @ eigenvectors.T
    return whitener @ coefficients


def quick_dataset(
    num_series: int,
    length: int,
    target_value: float = 0.6,
    seed: Optional[int] = DEFAULT_SEED,
) -> TomborgDataset:
    """Convenience helper: an equicorrelated dataset in one call (used in examples)."""
    target = np.full((num_series, num_series), target_value, dtype=FLOAT_DTYPE)
    np.fill_diagonal(target, 1.0)
    generator = TomborgGenerator(num_series=num_series, seed=seed)
    return generator.generate(length, target)
