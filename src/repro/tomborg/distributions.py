"""Distributions over target correlation values used by Tomborg (step 1).

Tomborg's first step "generates C from a user-specified distribution": the
user chooses how off-diagonal correlation values are distributed (uniform,
beta-shaped, bimodal, sparse-with-spikes, …) and the generator turns a draw
into a valid (positive semi-definite, unit-diagonal) correlation matrix.

Each distribution is a small object with a ``sample(size, rng)`` method
returning values in ``[-1, 1]``; keeping them as objects (rather than bare
callables) gives them a stable ``describe()`` string for experiment reports.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.exceptions import GenerationError


class CorrelationDistribution(abc.ABC):
    """A distribution over correlation values in ``[-1, 1]``."""

    @abc.abstractmethod
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` correlation values."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Short human-readable name used in experiment reports."""

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}({self.describe()})"


def _validate_range(low: float, high: float) -> None:
    if not -1.0 <= low <= high <= 1.0:
        raise GenerationError(
            f"correlation range must satisfy -1 <= low <= high <= 1, got "
            f"({low}, {high})"
        )


@dataclass
class UniformCorrelations(CorrelationDistribution):
    """Correlation values drawn uniformly from ``[low, high]``."""

    low: float = -0.3
    high: float = 0.7

    def __post_init__(self) -> None:
        _validate_range(self.low, self.high)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=size).astype(FLOAT_DTYPE)

    def describe(self) -> str:
        return f"uniform[{self.low},{self.high}]"


@dataclass
class BetaCorrelations(CorrelationDistribution):
    """Beta-distributed values rescaled from ``[0, 1]`` to ``[low, high]``.

    A right-skewed beta (``a < b``) produces the mostly-weak-with-some-strong
    correlation profile typical of climate station networks; a left-skewed one
    produces densely correlated data (stress test for pruning).
    """

    a: float = 2.0
    b: float = 5.0
    low: float = -0.2
    high: float = 0.9

    def __post_init__(self) -> None:
        if self.a <= 0 or self.b <= 0:
            raise GenerationError("beta shape parameters must be positive")
        _validate_range(self.low, self.high)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        raw = rng.beta(self.a, self.b, size=size)
        return (self.low + raw * (self.high - self.low)).astype(FLOAT_DTYPE)

    def describe(self) -> str:
        return f"beta({self.a},{self.b})->[{self.low},{self.high}]"


@dataclass
class BimodalCorrelations(CorrelationDistribution):
    """Mixture of a weak mode and a strong mode.

    Models networks with a clear edge/non-edge separation: a fraction
    ``strong_fraction`` of pairs is drawn near ``strong_center`` and the rest
    near ``weak_center`` (both with Gaussian jitter, clipped to ``[-1, 1]``).
    """

    weak_center: float = 0.1
    strong_center: float = 0.8
    strong_fraction: float = 0.1
    jitter: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.strong_fraction <= 1.0:
            raise GenerationError("strong_fraction must lie in [0, 1]")
        if self.jitter < 0:
            raise GenerationError("jitter must be non-negative")

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        strong = rng.random(size) < self.strong_fraction
        centers = np.where(strong, self.strong_center, self.weak_center)
        values = centers + rng.normal(0.0, self.jitter, size=size)
        return np.clip(values, -1.0, 1.0).astype(FLOAT_DTYPE)

    def describe(self) -> str:
        return (
            f"bimodal(weak={self.weak_center},strong={self.strong_center},"
            f"p={self.strong_fraction})"
        )


@dataclass
class ConstantCorrelations(CorrelationDistribution):
    """Every off-diagonal pair has the same correlation (equicorrelation)."""

    value: float = 0.5

    def __post_init__(self) -> None:
        _validate_range(self.value, self.value)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(size, self.value, dtype=FLOAT_DTYPE)

    def describe(self) -> str:
        return f"constant({self.value})"


@dataclass
class SparseSpikeCorrelations(CorrelationDistribution):
    """Mostly near-zero correlations with a small fraction of strong spikes.

    This is the regime where threshold-based pruning shines (few edges), so it
    appears in the robustness sweep as the "easy" end of the spectrum.
    """

    spike_value: float = 0.85
    spike_fraction: float = 0.02
    noise_scale: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.spike_fraction <= 1.0:
            raise GenerationError("spike_fraction must lie in [0, 1]")
        _validate_range(-abs(self.spike_value), abs(self.spike_value))

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        values = rng.normal(0.0, self.noise_scale, size=size)
        spikes = rng.random(size) < self.spike_fraction
        values[spikes] = self.spike_value
        return np.clip(values, -1.0, 1.0).astype(FLOAT_DTYPE)

    def describe(self) -> str:
        return f"sparse_spikes(p={self.spike_fraction},v={self.spike_value})"


def named_distribution(name: str, **kwargs) -> CorrelationDistribution:
    """Factory used by benchmark configuration files.

    Known names: ``uniform``, ``beta``, ``bimodal``, ``constant``, ``sparse``.
    """
    registry = {
        "uniform": UniformCorrelations,
        "beta": BetaCorrelations,
        "bimodal": BimodalCorrelations,
        "constant": ConstantCorrelations,
        "sparse": SparseSpikeCorrelations,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise GenerationError(
            f"unknown correlation distribution {name!r}; known: {sorted(registry)}"
        ) from None
    return cls(**kwargs)
