"""The named Tomborg robustness suite.

The paper positions Tomborg as "the first benchmark for the problem of
correlation matrix computation"; a benchmark needs a fixed, named set of
configurations so different engines (and different papers) can report
comparable numbers.  This module defines that set: each
:class:`SuiteCase` names a correlation-value distribution, a spectrum shape,
an optional corruption model, and the number of piecewise-stationary segments,
and can materialize itself into a generated dataset plus the sliding query the
robustness experiments run over it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.query import SlidingQuery
from repro.exceptions import GenerationError
from repro.tomborg.distributions import named_distribution
from repro.tomborg.generator import SegmentSpec, TomborgDataset, TomborgGenerator
from repro.tomborg.noise import NoiseModel, apply_noise, named_noise
from repro.tomborg.spectral import named_spectrum


@dataclass(frozen=True)
class SuiteCase:
    """One named configuration of the robustness suite."""

    name: str
    distribution: str
    spectrum: str
    distribution_kwargs: Dict[str, object] = field(default_factory=dict)
    spectrum_kwargs: Dict[str, object] = field(default_factory=dict)
    noise: Optional[str] = None
    noise_kwargs: Dict[str, object] = field(default_factory=dict)
    num_segments: int = 2
    threshold: float = 0.7

    def __post_init__(self) -> None:
        if self.num_segments < 1:
            raise GenerationError(
                f"num_segments must be at least 1, got {self.num_segments}"
            )
        if not -1.0 <= self.threshold <= 1.0:
            raise GenerationError(
                f"threshold must lie in [-1, 1], got {self.threshold}"
            )

    def describe(self) -> str:
        parts = [f"dist={self.distribution}", f"spectrum={self.spectrum}"]
        if self.noise:
            parts.append(f"noise={self.noise}")
        parts.append(f"segments={self.num_segments}")
        return f"{self.name}: " + ", ".join(parts)

    # ------------------------------------------------------------ realization
    def noise_model(self) -> Optional[NoiseModel]:
        if self.noise is None:
            return None
        return named_noise(self.noise, **self.noise_kwargs)

    def generate(
        self,
        num_series: int = 48,
        segment_columns: int = 1024,
        basic_window_size: int = 32,
        seed: int = 101,
    ) -> Tuple[TomborgDataset, SlidingQuery]:
        """Materialize the case into a dataset and the query the suite runs on it.

        ``segment_columns`` is rounded down to a multiple of
        ``basic_window_size`` so every engine (pruned or not) can answer the
        same query.
        """
        if num_series < 2:
            raise GenerationError(f"need at least 2 series, got {num_series}")
        segment_columns = (segment_columns // basic_window_size) * basic_window_size
        if segment_columns < 2 * basic_window_size:
            raise GenerationError(
                "segment_columns too small for the requested basic window size"
            )
        distribution = named_distribution(self.distribution, **self.distribution_kwargs)
        spectrum = named_spectrum(self.spectrum, **self.spectrum_kwargs)
        # The generator emits unit-norm series (per-point variance ~1/columns);
        # rescale to unit per-point variance so the noise models' absolute
        # sigmas are relative to a signal of comparable magnitude.  Correlations
        # are scale invariant, so the ground truth is unaffected.
        generator = TomborgGenerator(
            num_series=num_series,
            spectrum=spectrum,
            scale=math.sqrt(segment_columns),
            seed=seed,
        )
        dataset = generator.generate_piecewise(
            [
                SegmentSpec(num_columns=segment_columns, target=distribution)
                for _ in range(self.num_segments)
            ]
        )
        model = self.noise_model()
        if model is not None:
            dataset = apply_noise(dataset, model, seed=seed + 1)

        window = 8 * basic_window_size
        query = SlidingQuery(
            start=0,
            end=dataset.length,
            window=min(window, dataset.length),
            step=basic_window_size,
            threshold=self.threshold,
        )
        return dataset, query


#: The standard robustness suite: distributions x spectra x corruptions chosen
#: to cover the easy cases, the adversarial cases for each baseline family,
#: and measurement corruption.  Order is stable so reports line up.
DEFAULT_SUITE: List[SuiteCase] = [
    SuiteCase(
        name="sparse_easy",
        distribution="sparse",
        spectrum="power_law",
        spectrum_kwargs={"alpha": 1.0},
    ),
    SuiteCase(
        name="bimodal_reference",
        distribution="bimodal",
        spectrum="power_law",
        spectrum_kwargs={"alpha": 1.0},
    ),
    SuiteCase(
        name="bimodal_flat_spectrum",
        distribution="bimodal",
        spectrum="flat",
    ),
    SuiteCase(
        name="bimodal_peaked_spectrum",
        distribution="bimodal",
        spectrum="peaked",
    ),
    SuiteCase(
        name="uniform_near_threshold",
        distribution="uniform",
        distribution_kwargs={"low": 0.3, "high": 0.8},
        spectrum="power_law",
    ),
    SuiteCase(
        name="dense_beta",
        distribution="beta",
        distribution_kwargs={"a": 5.0, "b": 2.0},
        spectrum="power_law",
    ),
    # The additive-noise cases lower the query threshold: independent noise of
    # variance sigma^2 shrinks realized correlations by ~1/(1+sigma^2) (see
    # repro.tomborg.noise.expected_attenuation), and an analyst thresholding
    # noisy measurements accounts for that — keeping beta at 0.7 would simply
    # empty the ground-truth edge set rather than test robustness.
    SuiteCase(
        name="bimodal_white_noise",
        distribution="bimodal",
        spectrum="power_law",
        noise="white",
        noise_kwargs={"sigma": 0.3},
        threshold=0.6,
    ),
    SuiteCase(
        name="bimodal_drifting_sensors",
        distribution="bimodal",
        spectrum="power_law",
        noise="ar1",
        noise_kwargs={"sigma": 0.3, "coefficient": 0.95},
        threshold=0.6,
    ),
    SuiteCase(
        name="bimodal_outliers",
        distribution="bimodal",
        spectrum="power_law",
        noise="impulse",
        noise_kwargs={"probability": 0.005, "magnitude": 6.0},
    ),
    SuiteCase(
        name="bimodal_missing_data",
        distribution="bimodal",
        spectrum="power_law",
        noise="missing",
        noise_kwargs={"probability": 0.02, "fill": "interpolate"},
    ),
]


def default_suite() -> List[SuiteCase]:
    """A copy of the standard suite (callers may extend or filter it)."""
    return list(DEFAULT_SUITE)


def case_by_name(name: str) -> SuiteCase:
    """Look up a standard suite case by name."""
    for case in DEFAULT_SUITE:
        if case.name == name:
            return case
    raise GenerationError(
        f"unknown suite case {name!r}; known: {[c.name for c in DEFAULT_SUITE]}"
    )
