"""Synchronization of irregular time series onto a regular grid.

The paper's problem definition assumes all series are synchronized and notes
that "this can be achieved through aggregation and interpolation on
non-synchronized series".  This module implements that step: each raw series is
a set of ``(timestamp, value)`` observations at arbitrary times; the output is
a :class:`~repro.timeseries.matrix.TimeSeriesMatrix` on a caller-specified
regular grid.

Two resampling families are provided:

* :func:`aggregate_to_grid` — bin observations into grid cells and reduce each
  bin (mean / sum / min / max / count), which is the natural choice when the
  raw sampling rate is higher than the grid resolution (e.g. minute readings
  aggregated into the USCRN hourly products used by the paper's dataset).
* :func:`interpolate_to_grid` — linear / previous / nearest interpolation at
  the grid points, the natural choice when the raw rate is lower or jittered.

:func:`synchronize` combines both: aggregate when a bin has observations,
interpolate across empty bins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.exceptions import AlignmentError
from repro.timeseries.matrix import TimeAxis, TimeSeriesMatrix

_AGGREGATORS = {
    "mean": np.mean,
    "sum": np.sum,
    "min": np.min,
    "max": np.max,
    "median": np.median,
    "count": len,
}

_INTERPOLATIONS = ("linear", "previous", "nearest")


@dataclass
class IrregularSeries:
    """One raw, possibly irregular series: parallel timestamp/value arrays."""

    series_id: str
    timestamps: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.timestamps = np.asarray(self.timestamps, dtype=FLOAT_DTYPE)
        self.values = np.asarray(self.values, dtype=FLOAT_DTYPE)
        if self.timestamps.ndim != 1 or self.values.ndim != 1:
            raise AlignmentError("timestamps and values must be 1-D arrays")
        if self.timestamps.shape != self.values.shape:
            raise AlignmentError(
                f"series {self.series_id!r}: {len(self.timestamps)} timestamps "
                f"but {len(self.values)} values"
            )
        if len(self.timestamps) == 0:
            raise AlignmentError(f"series {self.series_id!r} has no observations")
        order = np.argsort(self.timestamps, kind="stable")
        self.timestamps = self.timestamps[order]
        self.values = self.values[order]

    @classmethod
    def from_pairs(
        cls, series_id: str, pairs: Iterable[Tuple[float, float]]
    ) -> "IrregularSeries":
        """Build from an iterable of ``(timestamp, value)`` pairs."""
        pairs = list(pairs)
        if not pairs:
            raise AlignmentError(f"series {series_id!r} has no observations")
        stamps = np.array([p[0] for p in pairs], dtype=FLOAT_DTYPE)
        values = np.array([p[1] for p in pairs], dtype=FLOAT_DTYPE)
        return cls(series_id, stamps, values)


def _grid(start: float, resolution: float, length: int) -> np.ndarray:
    if resolution <= 0:
        raise AlignmentError(f"grid resolution must be positive, got {resolution}")
    if length < 2:
        raise AlignmentError(f"grid must contain at least two points, got {length}")
    return start + resolution * np.arange(length, dtype=FLOAT_DTYPE)


def aggregate_to_grid(
    series: IrregularSeries,
    start: float,
    resolution: float,
    length: int,
    how: str = "mean",
) -> np.ndarray:
    """Aggregate observations into grid bins ``[t_k, t_k + resolution)``.

    Returns a length-``length`` array; bins with no observations are NaN so the
    caller can interpolate or reject them explicitly.
    """
    if how not in _AGGREGATORS:
        raise AlignmentError(
            f"unknown aggregator {how!r}; expected one of {sorted(_AGGREGATORS)}"
        )
    grid = _grid(start, resolution, length)
    reducer = _AGGREGATORS[how]
    out = np.full(length, np.nan, dtype=FLOAT_DTYPE)
    bin_index = np.floor((series.timestamps - start) / resolution).astype(int)
    in_range = (bin_index >= 0) & (bin_index < length)
    if not np.any(in_range):
        return out
    idx = bin_index[in_range]
    vals = series.values[in_range]
    order = np.argsort(idx, kind="stable")
    idx = idx[order]
    vals = vals[order]
    boundaries = np.flatnonzero(np.diff(idx)) + 1
    for chunk_idx, chunk_vals in zip(
        np.split(idx, boundaries), np.split(vals, boundaries)
    ):
        out[chunk_idx[0]] = float(reducer(chunk_vals))
    # Silence "unused variable" style confusion: grid retained for clarity only.
    del grid
    return out


def interpolate_to_grid(
    series: IrregularSeries,
    start: float,
    resolution: float,
    length: int,
    method: str = "linear",
    max_gap: Optional[float] = None,
) -> np.ndarray:
    """Interpolate a series at the grid points.

    Parameters
    ----------
    method:
        ``"linear"`` (default), ``"previous"`` (last observation carried
        forward), or ``"nearest"``.
    max_gap:
        If given, grid points further than ``max_gap`` (in time units) from any
        observation are left as NaN instead of being extrapolated across a long
        gap.
    """
    if method not in _INTERPOLATIONS:
        raise AlignmentError(
            f"unknown interpolation {method!r}; expected one of {_INTERPOLATIONS}"
        )
    grid = _grid(start, resolution, length)
    stamps, values = series.timestamps, series.values

    if method == "linear":
        out = np.interp(grid, stamps, values)
    elif method == "previous":
        pos = np.searchsorted(stamps, grid, side="right") - 1
        pos_clipped = np.clip(pos, 0, len(stamps) - 1)
        out = values[pos_clipped]
        out = np.where(pos < 0, values[0], out)
    else:  # nearest
        pos = np.searchsorted(stamps, grid)
        pos = np.clip(pos, 1, len(stamps) - 1)
        left = stamps[pos - 1]
        right = stamps[pos]
        choose_left = (grid - left) <= (right - grid)
        out = np.where(choose_left, values[pos - 1], values[pos])
        out = np.where(grid <= stamps[0], values[0], out)
        out = np.where(grid >= stamps[-1], values[-1], out)

    out = np.asarray(out, dtype=FLOAT_DTYPE)
    if max_gap is not None:
        pos = np.searchsorted(stamps, grid)
        left_dist = np.where(
            pos > 0, grid - stamps[np.clip(pos - 1, 0, len(stamps) - 1)], np.inf
        )
        right_dist = np.where(
            pos < len(stamps), stamps[np.clip(pos, 0, len(stamps) - 1)] - grid, np.inf
        )
        nearest = np.minimum(np.abs(left_dist), np.abs(right_dist))
        out = np.where(nearest > max_gap, np.nan, out)
    return out


@dataclass
class SynchronizationReport:
    """Diagnostics for one :func:`synchronize` call."""

    num_series: int
    grid_length: int
    filled_bins: Dict[str, int] = field(default_factory=dict)
    interpolated_bins: Dict[str, int] = field(default_factory=dict)

    def total_interpolated(self) -> int:
        return int(sum(self.interpolated_bins.values()))


def synchronize(
    series: Sequence[IrregularSeries],
    start: Optional[float] = None,
    resolution: float = 1.0,
    length: Optional[int] = None,
    how: str = "mean",
    interpolation: str = "linear",
) -> Tuple[TimeSeriesMatrix, SynchronizationReport]:
    """Synchronize many irregular series onto one regular grid.

    Each series is first aggregated into grid bins; empty bins are then filled
    by interpolating the aggregated values.  The output is a
    :class:`TimeSeriesMatrix` plus a :class:`SynchronizationReport` describing
    how many bins had to be interpolated per series (useful for data-quality
    checks before correlation analysis).
    """
    if not series:
        raise AlignmentError("synchronize() requires at least one series")
    ids = [s.series_id for s in series]
    if len(set(ids)) != len(ids):
        raise AlignmentError("series ids passed to synchronize() must be unique")

    if start is None:
        start = float(min(s.timestamps[0] for s in series))
    if length is None:
        end = float(max(s.timestamps[-1] for s in series))
        length = int(np.floor((end - start) / resolution)) + 1
        length = max(length, 2)

    report = SynchronizationReport(num_series=len(series), grid_length=length)
    rows = np.empty((len(series), length), dtype=FLOAT_DTYPE)
    for row, s in enumerate(series):
        binned = aggregate_to_grid(s, start, resolution, length, how=how)
        missing = ~np.isfinite(binned)
        report.filled_bins[s.series_id] = int(np.count_nonzero(~missing))
        report.interpolated_bins[s.series_id] = int(np.count_nonzero(missing))
        if np.all(missing):
            raise AlignmentError(
                f"series {s.series_id!r} has no observations inside the grid"
            )
        if np.any(missing):
            observed_idx = np.flatnonzero(~missing)
            grid = _grid(start, resolution, length)
            filler = IrregularSeries(
                s.series_id, grid[observed_idx], binned[observed_idx]
            )
            filled = interpolate_to_grid(
                filler, start, resolution, length, method=interpolation
            )
            binned = np.where(missing, filled, binned)
        rows[row] = binned

    matrix = TimeSeriesMatrix(
        rows,
        series_ids=ids,
        time_axis=TimeAxis(start=start, resolution=resolution),
    )
    return matrix, report
