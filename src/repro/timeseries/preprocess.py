"""Preprocessing steps commonly applied before correlation analysis.

Correlation-network studies in the paper's motivating domains (climate, fMRI,
finance) routinely z-normalize, detrend, and repair missing values before
computing pairwise correlations.  These helpers operate on plain ``(N, L)``
arrays or :class:`~repro.timeseries.matrix.TimeSeriesMatrix` instances and
always return new arrays — inputs are never modified in place.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from repro.config import FLOAT_DTYPE, VARIANCE_EPSILON
from repro.exceptions import DataValidationError
from repro.timeseries.matrix import TimeSeriesMatrix

ArrayLike = Union[np.ndarray, TimeSeriesMatrix]


def _as_array(data: ArrayLike) -> np.ndarray:
    if isinstance(data, TimeSeriesMatrix):
        return data.values
    array = np.asarray(data, dtype=FLOAT_DTYPE)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise DataValidationError(f"expected a 2-D array, got shape {array.shape}")
    return array


def _wrap_like(data: ArrayLike, values: np.ndarray) -> ArrayLike:
    if isinstance(data, TimeSeriesMatrix):
        return data.with_values(values)
    return values


def znormalize(data: ArrayLike, ddof: int = 0) -> ArrayLike:
    """Z-normalize each series (row) to zero mean and unit variance.

    Constant series (variance below :data:`VARIANCE_EPSILON`) are mapped to all
    zeros rather than dividing by zero; the correlation engines treat such
    series as having no edges.
    """
    array = _as_array(data)
    mean = array.mean(axis=1, keepdims=True)
    std = array.std(axis=1, ddof=ddof, keepdims=True)
    safe_std = np.where(std < np.sqrt(VARIANCE_EPSILON), 1.0, std)
    out = (array - mean) / safe_std
    out = np.where(std < np.sqrt(VARIANCE_EPSILON), 0.0, out)
    return _wrap_like(data, out)


def detrend(data: ArrayLike) -> ArrayLike:
    """Remove the least-squares linear trend from each series."""
    array = _as_array(data)
    length = array.shape[1]
    t = np.arange(length, dtype=FLOAT_DTYPE)
    t_centered = t - t.mean()
    denom = float(np.dot(t_centered, t_centered))
    if denom <= 0:
        return _wrap_like(data, array.copy())
    centered = array - array.mean(axis=1, keepdims=True)
    slope = centered @ t_centered / denom
    trend = np.outer(slope, t_centered)
    out = array - array.mean(axis=1, keepdims=True) - trend + array.mean(
        axis=1, keepdims=True
    )
    # Equivalent to removing slope*t while keeping the series mean.
    return _wrap_like(data, out)


def moving_average(data: ArrayLike, window: int) -> ArrayLike:
    """Smooth each series with a centred moving average of ``window`` points.

    Edges are handled by shrinking the averaging window, so the output has the
    same length as the input.
    """
    array = _as_array(data)
    if window < 1:
        raise DataValidationError(f"window must be >= 1, got {window}")
    if window == 1:
        return _wrap_like(data, array.copy())
    length = array.shape[1]
    kernel = np.ones(window, dtype=FLOAT_DTYPE)
    counts = np.convolve(np.ones(length, dtype=FLOAT_DTYPE), kernel, mode="same")
    out = np.empty_like(array)
    for i in range(array.shape[0]):
        out[i] = np.convolve(array[i], kernel, mode="same") / counts
    return _wrap_like(data, out)


def winsorize(data: ArrayLike, lower: float = 0.01, upper: float = 0.99) -> ArrayLike:
    """Clip each series to its ``[lower, upper]`` quantile range.

    Used to tame the heavy-tailed spikes typical of finance and sensor data
    before computing Pearson correlations.
    """
    if not 0.0 <= lower < upper <= 1.0:
        raise DataValidationError(
            f"quantiles must satisfy 0 <= lower < upper <= 1, got ({lower}, {upper})"
        )
    array = _as_array(data)
    lo = np.quantile(array, lower, axis=1, keepdims=True)
    hi = np.quantile(array, upper, axis=1, keepdims=True)
    return _wrap_like(data, np.clip(array, lo, hi))


def fill_missing(data: ArrayLike, method: str = "linear") -> ArrayLike:
    """Fill NaN values in each series.

    Methods: ``"linear"`` interpolation between finite neighbours (edges take
    the nearest finite value), ``"previous"`` carries the last finite value
    forward, ``"mean"`` replaces NaNs with the series mean of finite values.
    A series with no finite values raises :class:`DataValidationError`.
    """
    if method not in ("linear", "previous", "mean"):
        raise DataValidationError(f"unknown fill method {method!r}")
    array = _as_array(data).copy()
    length = array.shape[1]
    t = np.arange(length, dtype=FLOAT_DTYPE)
    for i in range(array.shape[0]):
        row = array[i]
        finite = np.isfinite(row)
        if finite.all():
            continue
        if not finite.any():
            raise DataValidationError(f"series {i} has no finite values to fill from")
        if method == "mean":
            row[~finite] = row[finite].mean()
        elif method == "linear":
            row[~finite] = np.interp(t[~finite], t[finite], row[finite])
        else:  # previous
            idx = np.where(finite, t, -1.0)
            last = np.maximum.accumulate(idx)
            first_finite = int(np.flatnonzero(finite)[0])
            last = np.where(last < 0, first_finite, last).astype(int)
            row[:] = row[last]
        array[i] = row
    return _wrap_like(data, array)


def find_constant_series(data: ArrayLike, epsilon: float = VARIANCE_EPSILON) -> List[int]:
    """Return row indices whose variance is below ``epsilon``.

    Pearson correlation is undefined for constant series; callers typically
    drop these rows or accept that the engines report no edges for them.
    """
    array = _as_array(data)
    variances = array.var(axis=1)
    return [int(i) for i in np.flatnonzero(variances < epsilon)]
