"""Time-series containers, alignment, and preprocessing (substrate S1).

The paper assumes "all time series in X are synchronized … achieved through
aggregation and interpolation on non-synchronized series".  This subpackage
provides exactly that layer: an ``N x L`` container with series identifiers and
a regular time axis (:class:`TimeSeriesMatrix`), resampling of irregular
observations onto a regular grid (:mod:`repro.timeseries.align`), and the
preprocessing commonly applied before correlation analysis
(:mod:`repro.timeseries.preprocess`).
"""

from repro.timeseries.matrix import TimeAxis, TimeSeriesMatrix
from repro.timeseries.align import (
    IrregularSeries,
    aggregate_to_grid,
    interpolate_to_grid,
    synchronize,
)
from repro.timeseries.preprocess import (
    detrend,
    fill_missing,
    find_constant_series,
    moving_average,
    winsorize,
    znormalize,
)

__all__ = [
    "TimeAxis",
    "TimeSeriesMatrix",
    "IrregularSeries",
    "aggregate_to_grid",
    "interpolate_to_grid",
    "synchronize",
    "detrend",
    "fill_missing",
    "find_constant_series",
    "moving_average",
    "winsorize",
    "znormalize",
]
