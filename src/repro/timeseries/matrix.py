"""The ``N x L`` synchronized time-series container used throughout the library.

The problem definition in the paper works on a matrix ``X`` of ``N`` series of
length ``L`` where row ``i`` is series ``i`` and column ``j`` is time step
``j``.  :class:`TimeSeriesMatrix` wraps that matrix together with series
identifiers and a regular time axis, and provides the window-slicing helpers
the sliding-query engines rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.exceptions import DataValidationError


@dataclass(frozen=True)
class TimeAxis:
    """A regular time axis: ``start + k * resolution`` for ``k = 0 … L-1``.

    ``start`` and ``resolution`` are plain floats (e.g. epoch seconds and a
    step in seconds, or hours since the beginning of a year and ``1.0``).  The
    engines never interpret the units; they only need the axis to be regular,
    which is exactly the paper's synchronization assumption.
    """

    start: float = 0.0
    resolution: float = 1.0

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise DataValidationError(
                f"time resolution must be positive, got {self.resolution}"
            )

    def timestamps(self, length: int) -> np.ndarray:
        """Return the ``length`` timestamps of this axis as a float array."""
        return self.start + self.resolution * np.arange(length, dtype=FLOAT_DTYPE)

    def index_of(self, timestamp: float) -> int:
        """Return the column index of ``timestamp`` (closest grid point)."""
        return int(round((timestamp - self.start) / self.resolution))


class TimeSeriesMatrix:
    """A synchronized collection of ``N`` time series of common length ``L``.

    Parameters
    ----------
    values:
        Array-like of shape ``(N, L)``.  Copied and converted to ``float64``.
    series_ids:
        Optional sequence of ``N`` identifiers (strings).  Defaults to
        ``"s0" … "s{N-1}"``.
    time_axis:
        Optional :class:`TimeAxis`.  Defaults to integer time steps.
    allow_nan:
        If ``False`` (default) the constructor rejects non-finite values; the
        correlation engines require finite data.  Pass ``True`` when the
        matrix still needs :func:`repro.timeseries.preprocess.fill_missing`.
    """

    def __init__(
        self,
        values: Union[np.ndarray, Sequence[Sequence[float]]],
        series_ids: Optional[Sequence[str]] = None,
        time_axis: Optional[TimeAxis] = None,
        allow_nan: bool = False,
    ) -> None:
        array = np.asarray(values, dtype=FLOAT_DTYPE)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        if array.ndim != 2:
            raise DataValidationError(
                f"time-series matrix must be 2-D (N x L), got shape {array.shape}"
            )
        if array.shape[1] < 2:
            raise DataValidationError(
                "each time series must contain at least two observations, "
                f"got length {array.shape[1]}"
            )
        if not allow_nan and not np.all(np.isfinite(array)):
            raise DataValidationError(
                "time-series matrix contains non-finite values; pass "
                "allow_nan=True and use fill_missing() to repair it"
            )

        self._values = np.array(array, dtype=FLOAT_DTYPE, copy=True)
        self._values.setflags(write=False)

        if series_ids is None:
            series_ids = [f"s{i}" for i in range(array.shape[0])]
        series_ids = [str(s) for s in series_ids]
        if len(series_ids) != array.shape[0]:
            raise DataValidationError(
                f"expected {array.shape[0]} series ids, got {len(series_ids)}"
            )
        if len(set(series_ids)) != len(series_ids):
            raise DataValidationError("series ids must be unique")
        self._series_ids: List[str] = list(series_ids)
        self._id_to_row = {sid: i for i, sid in enumerate(series_ids)}
        self._time_axis = time_axis if time_axis is not None else TimeAxis()

    # ------------------------------------------------------------------ shape
    @property
    def values(self) -> np.ndarray:
        """The underlying read-only ``(N, L)`` float64 array."""
        return self._values

    @property
    def num_series(self) -> int:
        """``N`` — the number of series (rows)."""
        return self._values.shape[0]

    @property
    def length(self) -> int:
        """``L`` — the number of time steps (columns)."""
        return self._values.shape[1]

    @property
    def shape(self) -> tuple:
        """``(N, L)``."""
        return self._values.shape

    @property
    def series_ids(self) -> List[str]:
        """The series identifiers, in row order (copy)."""
        return list(self._series_ids)

    @property
    def time_axis(self) -> TimeAxis:
        """The regular time axis describing the columns."""
        return self._time_axis

    def timestamps(self) -> np.ndarray:
        """The ``L`` timestamps of the columns."""
        return self._time_axis.timestamps(self.length)

    # ------------------------------------------------------------------ access
    def row_index(self, series_id: str) -> int:
        """Return the row index of ``series_id`` (raises if unknown)."""
        try:
            return self._id_to_row[series_id]
        except KeyError:
            raise DataValidationError(f"unknown series id: {series_id!r}") from None

    def series(self, key: Union[int, str]) -> np.ndarray:
        """Return one series as a 1-D array, by row index or by identifier."""
        if isinstance(key, str):
            key = self.row_index(key)
        if not 0 <= key < self.num_series:
            raise DataValidationError(
                f"series index {key} out of range [0, {self.num_series})"
            )
        return self._values[key]

    def window(self, start: int, end: int) -> np.ndarray:
        """Return the submatrix of columns ``[start, end)`` (a view).

        This is the ``X[:, k*eta : k*eta + l]`` slice from the problem
        definition; engines call it once per sliding window.
        """
        if start < 0 or end > self.length or start >= end:
            raise DataValidationError(
                f"invalid window [{start}, {end}) for series of length {self.length}"
            )
        return self._values[:, start:end]

    def iter_column_blocks(self, block_columns: int = 1024) -> Iterator[np.ndarray]:
        """Yield the columns as C-contiguous ``(N, <= block_columns)`` blocks.

        The canonical column-block stream of the data: fixed boundaries at
        multiples of ``block_columns`` and C-contiguous float64 bytes.  Chunk
        sources (:mod:`repro.core.tiled`) produce byte-identical streams for
        equal content, which is what lets content fingerprints — and
        therefore sketch-cache keys — agree between in-RAM matrices and
        out-of-core readers without materializing the latter.
        """
        if block_columns < 1:
            raise DataValidationError(
                f"block_columns must be positive, got {block_columns}"
            )
        for start in range(0, self.length, block_columns):
            yield np.ascontiguousarray(self._values[:, start : start + block_columns])

    def select(self, keys: Iterable[Union[int, str]]) -> "TimeSeriesMatrix":
        """Return a new matrix containing only the requested series."""
        rows = [self.row_index(k) if isinstance(k, str) else int(k) for k in keys]
        for r in rows:
            if not 0 <= r < self.num_series:
                raise DataValidationError(f"series index {r} out of range")
        return TimeSeriesMatrix(
            self._values[rows, :],
            series_ids=[self._series_ids[r] for r in rows],
            time_axis=self._time_axis,
            allow_nan=True,
        )

    def slice_time(self, start: int, end: int) -> "TimeSeriesMatrix":
        """Return a new matrix restricted to columns ``[start, end)``."""
        window = self.window(start, end)
        axis = TimeAxis(
            start=self._time_axis.start + start * self._time_axis.resolution,
            resolution=self._time_axis.resolution,
        )
        return TimeSeriesMatrix(
            window, series_ids=self._series_ids, time_axis=axis, allow_nan=True
        )

    def with_values(self, values: np.ndarray) -> "TimeSeriesMatrix":
        """Return a copy of this matrix with the same metadata but new values."""
        values = np.asarray(values, dtype=FLOAT_DTYPE)
        if values.shape != self.shape:
            raise DataValidationError(
                f"replacement values must have shape {self.shape}, got {values.shape}"
            )
        return TimeSeriesMatrix(
            values,
            series_ids=self._series_ids,
            time_axis=self._time_axis,
            allow_nan=True,
        )

    # ------------------------------------------------------------------ misc
    def has_missing(self) -> bool:
        """``True`` when any value is NaN or infinite."""
        return not bool(np.all(np.isfinite(self._values)))

    def __len__(self) -> int:
        return self.num_series

    def __repr__(self) -> str:
        return (
            f"TimeSeriesMatrix(num_series={self.num_series}, length={self.length}, "
            f"resolution={self._time_axis.resolution})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeriesMatrix):
            return NotImplemented
        return (
            self._series_ids == other._series_ids
            and self._time_axis == other._time_axis
            and np.array_equal(self._values, other._values, equal_nan=True)
        )

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Sequence[float]],
        series_ids: Optional[Sequence[str]] = None,
        time_axis: Optional[TimeAxis] = None,
    ) -> "TimeSeriesMatrix":
        """Build a matrix from a sequence of equal-length rows."""
        lengths = {len(r) for r in rows}
        if len(lengths) > 1:
            raise DataValidationError(
                f"all rows must have the same length, got lengths {sorted(lengths)}"
            )
        return cls(np.asarray(rows, dtype=FLOAT_DTYPE), series_ids, time_axis)
