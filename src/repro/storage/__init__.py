"""Storage substrate: raw chunk store, statistics index, and catalog (S7).

The paper's pipeline separates a one-off precomputation phase ("pre-compute
and store basic window statistics") from the pure query phase its evaluation
times.  This subpackage is the stored side: :class:`ChunkStore` holds the raw
columns, :class:`StatsIndex` holds the reusable basic-window statistics (and
can be extended as new data arrives), and :class:`Catalog` ties the artefacts
of many datasets together on disk.
"""

from repro.storage.cache import (
    CacheStats,
    QueryCache,
    SketchCache,
    matrix_fingerprint,
    query_fingerprint,
)
from repro.storage.catalog import Catalog, DatasetEntry
from repro.storage.chunk_store import ChunkStore, ChunkStoreReader
from repro.storage.shared import (
    SegmentManager,
    SharedSegment,
    attach_segment,
    export_segment,
)
from repro.storage.stats_index import StatsIndex

__all__ = [
    "CacheStats",
    "Catalog",
    "ChunkStore",
    "ChunkStoreReader",
    "DatasetEntry",
    "QueryCache",
    "SegmentManager",
    "SharedSegment",
    "SketchCache",
    "StatsIndex",
    "attach_segment",
    "export_segment",
    "matrix_fingerprint",
    "query_fingerprint",
]
