"""Columnar chunked storage for time-series matrices.

The paper's framing is a data-management one: basic-window statistics are
"pre-computed and stored" and queries touch only statistics, not raw data.
The :class:`ChunkStore` is the raw-data side of that story — an append-only,
column-chunked container that

* stores the ``N x L`` matrix as fixed-width column chunks (so appends of new
  time steps never rewrite old data, matching how monitoring pipelines ingest),
* serves arbitrary column ranges by stitching chunks together, and
* persists to a single ``.npz`` file.

It is deliberately simple (no compression, no concurrent writers): its job in
the reproduction is to give the sketch index and the streaming layer a
realistic storage substrate with explicit chunk boundaries.
"""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.exceptions import StorageError
from repro.timeseries.matrix import TimeSeriesMatrix


class ChunkStore:
    """Append-only columnar store for ``N`` aligned series.

    Parameters
    ----------
    num_series:
        Number of series (fixed at creation).
    chunk_columns:
        Number of time steps per chunk.  The last chunk may be partially
        filled; appends fill it before opening a new chunk.
    series_ids:
        Optional identifiers; defaults to ``s0 … s{N-1}``.
    """

    def __init__(
        self,
        num_series: int,
        chunk_columns: int = 1024,
        series_ids: Optional[Sequence[str]] = None,
    ) -> None:
        if num_series < 1:
            raise StorageError(f"num_series must be positive, got {num_series}")
        if chunk_columns < 1:
            raise StorageError(f"chunk_columns must be positive, got {chunk_columns}")
        self.num_series = num_series
        self.chunk_columns = chunk_columns
        if series_ids is None:
            series_ids = [f"s{i}" for i in range(num_series)]
        if len(series_ids) != num_series:
            raise StorageError(
                f"expected {num_series} series ids, got {len(series_ids)}"
            )
        self.series_ids = [str(s) for s in series_ids]
        self._chunks: List[np.ndarray] = []
        self._length = 0

    # ------------------------------------------------------------------ shape
    @property
    def length(self) -> int:
        """Total number of stored time steps."""
        return self._length

    @property
    def num_chunks(self) -> int:
        return len(self._chunks)

    def chunk_boundaries(self) -> List[int]:
        """Column index at which each chunk starts (plus the total length)."""
        boundaries = [0]
        for chunk in self._chunks:
            boundaries.append(boundaries[-1] + chunk.shape[1])
        return boundaries

    # ------------------------------------------------------------------ writes
    def append(self, columns: np.ndarray) -> int:
        """Append new columns (shape ``(N, k)`` or ``(N,)``); returns new length."""
        columns = np.asarray(columns, dtype=FLOAT_DTYPE)
        if columns.ndim == 1:
            columns = columns.reshape(-1, 1)
        if columns.ndim != 2 or columns.shape[0] != self.num_series:
            raise StorageError(
                f"appended columns must have shape ({self.num_series}, k), "
                f"got {columns.shape}"
            )
        if not np.all(np.isfinite(columns)):
            raise StorageError("appended columns must be finite")
        remaining = columns
        while remaining.shape[1] > 0:
            if self._chunks and self._chunks[-1].shape[1] < self.chunk_columns:
                space = self.chunk_columns - self._chunks[-1].shape[1]
                take = remaining[:, :space]
                self._chunks[-1] = np.concatenate([self._chunks[-1], take], axis=1)
            else:
                take = remaining[:, : self.chunk_columns]
                self._chunks.append(np.array(take, copy=True))
            remaining = remaining[:, take.shape[1] :]
            self._length += take.shape[1]
        return self._length

    # ------------------------------------------------------------------ reads
    def read(self, start: int, end: int) -> np.ndarray:
        """Read the column range ``[start, end)`` as a dense ``(N, end-start)`` array."""
        if start < 0 or end > self._length or start >= end:
            raise StorageError(
                f"invalid read range [{start}, {end}) for store of length {self._length}"
            )
        pieces: List[np.ndarray] = []
        offset = 0
        for chunk in self._chunks:
            chunk_end = offset + chunk.shape[1]
            if chunk_end > start and offset < end:
                lo = max(start - offset, 0)
                hi = min(end - offset, chunk.shape[1])
                pieces.append(chunk[:, lo:hi])
            offset = chunk_end
            if offset >= end:
                break
        return np.concatenate(pieces, axis=1)

    def read_all(self) -> np.ndarray:
        """The full stored matrix."""
        if self._length == 0:
            return np.empty((self.num_series, 0), dtype=FLOAT_DTYPE)
        return self.read(0, self._length)

    def to_matrix(self) -> "TimeSeriesMatrix":
        """The stored columns as a :class:`TimeSeriesMatrix`.

        The single construction point shared by the catalog, the query
        service and the CLI's ``.npz`` input path, so the store→matrix
        mapping (ids, dtype, validation) cannot drift between them.
        """
        if self._length == 0:
            raise StorageError("chunk store contains no columns")
        return TimeSeriesMatrix(self.read_all(), series_ids=self.series_ids)

    # ------------------------------------------------------------ persistence
    def save(self, path: Union[str, Path]) -> Path:
        """Persist the store to a ``.npz`` file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays = {f"chunk_{i:06d}": chunk for i, chunk in enumerate(self._chunks)}
        np.savez_compressed(
            path,
            __meta_num_series=np.array([self.num_series]),
            __meta_chunk_columns=np.array([self.chunk_columns]),
            __meta_series_ids=np.array(self.series_ids),
            **arrays,
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ChunkStore":
        """Load a store previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise StorageError(f"chunk store file not found: {path}")
        try:
            archive_ctx = np.load(path, allow_pickle=False)
        except (OSError, ValueError, zipfile.BadZipFile) as error:
            # np.load surfaces truncated/garbage archives as raw zipfile or
            # interpretation errors; name the file instead.
            raise StorageError(f"{path} is not a readable .npz archive") from error
        with archive_ctx as archive:
            try:
                num_series = int(archive["__meta_num_series"][0])
                chunk_columns = int(archive["__meta_chunk_columns"][0])
                series_ids = [str(s) for s in archive["__meta_series_ids"]]
            except KeyError as error:
                raise StorageError(f"{path} is not a chunk-store archive") from error
            store = cls(num_series, chunk_columns, series_ids)
            chunk_keys = sorted(k for k in archive.files if k.startswith("chunk_"))
            for key in chunk_keys:
                store.append(archive[key])
        return store

    def __repr__(self) -> str:
        return (
            f"ChunkStore(num_series={self.num_series}, length={self._length}, "
            f"chunks={self.num_chunks})"
        )
