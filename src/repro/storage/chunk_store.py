"""Columnar chunked storage for time-series matrices.

The paper's framing is a data-management one: basic-window statistics are
"pre-computed and stored" and queries touch only statistics, not raw data.
The :class:`ChunkStore` is the raw-data side of that story — an append-only,
column-chunked container that

* stores the ``N x L`` matrix as fixed-width column chunks (so appends of new
  time steps never rewrite old data, matching how monitoring pipelines ingest),
* serves arbitrary column ranges by stitching chunks together, and
* persists to a single ``.npz`` file.

It is deliberately simple (no compression, no concurrent writers): its job in
the reproduction is to give the sketch index and the streaming layer a
realistic storage substrate with explicit chunk boundaries.
"""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.exceptions import StorageError
from repro.timeseries.matrix import TimeSeriesMatrix


def _require_chunk_dtype(array: np.ndarray, key: str, path: Path) -> np.ndarray:
    """Reject persisted chunks whose dtype drifted from the store's float64.

    ``np.asarray(..., dtype=FLOAT_DTYPE)`` used to silently upcast whatever a
    (hand-edited, foreign, or corrupted) archive held — a float32 chunk would
    load, answer queries, and only disagree with fresh builds in the last
    bits.  A dtype mismatch now names the chunk and the expectation instead.
    """
    expected = np.dtype(FLOAT_DTYPE)
    if array.dtype != expected:
        raise StorageError(
            f"chunk {key!r} in {path} has dtype {array.dtype}, expected "
            f"{expected} (the chunk-store format stores all values as "
            f"{expected})"
        )
    return array


class ChunkStore:
    """Append-only columnar store for ``N`` aligned series.

    Parameters
    ----------
    num_series:
        Number of series (fixed at creation).
    chunk_columns:
        Number of time steps per chunk.  The last chunk may be partially
        filled; appends fill it before opening a new chunk.
    series_ids:
        Optional identifiers; defaults to ``s0 … s{N-1}``.
    """

    def __init__(
        self,
        num_series: int,
        chunk_columns: int = 1024,
        series_ids: Optional[Sequence[str]] = None,
    ) -> None:
        if num_series < 1:
            raise StorageError(f"num_series must be positive, got {num_series}")
        if chunk_columns < 1:
            raise StorageError(f"chunk_columns must be positive, got {chunk_columns}")
        self.num_series = num_series
        self.chunk_columns = chunk_columns
        if series_ids is None:
            series_ids = [f"s{i}" for i in range(num_series)]
        if len(series_ids) != num_series:
            raise StorageError(
                f"expected {num_series} series ids, got {len(series_ids)}"
            )
        self.series_ids = [str(s) for s in series_ids]
        self._chunks: List[np.ndarray] = []
        self._length = 0

    # ------------------------------------------------------------------ shape
    @property
    def length(self) -> int:
        """Total number of stored time steps."""
        return self._length

    @property
    def num_chunks(self) -> int:
        return len(self._chunks)

    def chunk_boundaries(self) -> List[int]:
        """Column index at which each chunk starts (plus the total length)."""
        boundaries = [0]
        for chunk in self._chunks:
            boundaries.append(boundaries[-1] + chunk.shape[1])
        return boundaries

    # ------------------------------------------------------------------ writes
    def append(self, columns: np.ndarray) -> int:
        """Append new columns (shape ``(N, k)`` or ``(N,)``); returns new length."""
        columns = np.asarray(columns, dtype=FLOAT_DTYPE)
        if columns.ndim == 1:
            columns = columns.reshape(-1, 1)
        if columns.ndim != 2 or columns.shape[0] != self.num_series:
            raise StorageError(
                f"appended columns must have shape ({self.num_series}, k), "
                f"got {columns.shape}"
            )
        if not np.all(np.isfinite(columns)):
            raise StorageError("appended columns must be finite")
        remaining = columns
        while remaining.shape[1] > 0:
            if self._chunks and self._chunks[-1].shape[1] < self.chunk_columns:
                space = self.chunk_columns - self._chunks[-1].shape[1]
                take = remaining[:, :space]
                self._chunks[-1] = np.concatenate([self._chunks[-1], take], axis=1)
            else:
                take = remaining[:, : self.chunk_columns]
                self._chunks.append(np.array(take, copy=True))
            remaining = remaining[:, take.shape[1] :]
            self._length += take.shape[1]
        return self._length

    # ------------------------------------------------------------------ reads
    def read(self, start: int, end: int) -> np.ndarray:
        """Read the column range ``[start, end)`` as a dense ``(N, end-start)`` array."""
        if start < 0 or end > self._length or start >= end:
            raise StorageError(
                f"invalid read range [{start}, {end}) for store of length {self._length}"
            )
        pieces: List[np.ndarray] = []
        offset = 0
        for chunk in self._chunks:
            chunk_end = offset + chunk.shape[1]
            if chunk_end > start and offset < end:
                lo = max(start - offset, 0)
                hi = min(end - offset, chunk.shape[1])
                pieces.append(chunk[:, lo:hi])
            offset = chunk_end
            if offset >= end:
                break
        return np.concatenate(pieces, axis=1)

    def iter_chunks(self) -> Iterator[np.ndarray]:
        """Yield the stored chunks in column order as canonical-layout blocks.

        Every block is the C-contiguous float64 ``(N, k)`` array of one chunk
        (treat it as read-only).  This is the streaming protocol the tiled
        out-of-core sketch builder (:mod:`repro.core.tiled`) consumes; the
        lazy :class:`ChunkStoreReader` yields the same stream straight from
        disk without holding more than one chunk resident.
        """
        for chunk in self._chunks:
            yield np.ascontiguousarray(chunk, dtype=FLOAT_DTYPE)

    def chunk_byte_sizes(self) -> List[int]:
        """Bytes of raw data in each chunk, in column order."""
        return [int(chunk.nbytes) for chunk in self._chunks]

    def read_all(self) -> np.ndarray:
        """The full stored matrix."""
        if self._length == 0:
            return np.empty((self.num_series, 0), dtype=FLOAT_DTYPE)
        return self.read(0, self._length)

    def to_matrix(self) -> "TimeSeriesMatrix":
        """The stored columns as a :class:`TimeSeriesMatrix`.

        The single construction point shared by the catalog, the query
        service and the CLI's ``.npz`` input path, so the store→matrix
        mapping (ids, dtype, validation) cannot drift between them.
        """
        if self._length == 0:
            raise StorageError("chunk store contains no columns")
        return TimeSeriesMatrix(self.read_all(), series_ids=self.series_ids)

    # ------------------------------------------------------------ persistence
    def save(self, path: Union[str, Path]) -> Path:
        """Persist the store to a ``.npz`` file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays = {f"chunk_{i:06d}": chunk for i, chunk in enumerate(self._chunks)}
        np.savez_compressed(
            path,
            __meta_num_series=np.array([self.num_series]),
            __meta_chunk_columns=np.array([self.chunk_columns]),
            __meta_series_ids=np.array(self.series_ids),
            **arrays,
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ChunkStore":
        """Load a store previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise StorageError(f"chunk store file not found: {path}")
        try:
            archive_ctx = np.load(path, allow_pickle=False)
        except (OSError, ValueError, zipfile.BadZipFile) as error:
            # np.load surfaces truncated/garbage archives as raw zipfile or
            # interpretation errors; name the file instead.
            raise StorageError(f"{path} is not a readable .npz archive") from error
        with archive_ctx as archive:
            try:
                num_series = int(archive["__meta_num_series"][0])
                chunk_columns = int(archive["__meta_chunk_columns"][0])
                series_ids = [str(s) for s in archive["__meta_series_ids"]]
            except KeyError as error:
                raise StorageError(f"{path} is not a chunk-store archive") from error
            store = cls(num_series, chunk_columns, series_ids)
            chunk_keys = sorted(k for k in archive.files if k.startswith("chunk_"))
            for key in chunk_keys:
                store.append(_require_chunk_dtype(archive[key], key, path))
        return store

    def __repr__(self) -> str:
        return (
            f"ChunkStore(num_series={self.num_series}, length={self._length}, "
            f"chunks={self.num_chunks})"
        )


class ChunkStoreReader:
    """Lazy, read-only view of a chunk store persisted by :meth:`ChunkStore.save`.

    :meth:`ChunkStore.load` materializes every chunk — correct for small
    stores, fatal for catalogs bigger than RAM.  The reader keeps the ``.npz``
    archive open and decompresses **one chunk at a time** on demand, exposing
    the same metadata surface (``num_series``/``length``/``series_ids``/
    ``chunk_columns``) and the same streaming protocol (``iter_chunks``/
    ``chunk_byte_sizes``) as the in-memory store.  It is the source the tiled
    sketch builder and :class:`~repro.core.tiled.ChunkBackedMatrix` run on.

    The save format guarantees every chunk except the last is exactly
    ``chunk_columns`` wide (appends fill the open chunk before starting a new
    one), so the total length is known after reading only the final chunk.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        path = Path(path)
        if not path.exists():
            raise StorageError(f"chunk store file not found: {path}")
        self.path = path
        try:
            self._archive = np.load(path, allow_pickle=False)
        except (OSError, ValueError, zipfile.BadZipFile) as error:
            raise StorageError(f"{path} is not a readable .npz archive") from error
        try:
            self.num_series = int(self._archive["__meta_num_series"][0])
            self.chunk_columns = int(self._archive["__meta_chunk_columns"][0])
            self.series_ids = [str(s) for s in self._archive["__meta_series_ids"]]
        except KeyError as error:
            self._archive.close()
            raise StorageError(f"{path} is not a chunk-store archive") from error
        self._chunk_keys = sorted(
            k for k in self._archive.files if k.startswith("chunk_")
        )
        if self._chunk_keys:
            last_width = self._chunk_width(self._chunk_keys[-1])
            self._length = (
                self.chunk_columns * (len(self._chunk_keys) - 1) + last_width
            )
        else:
            self._length = 0

    def _chunk_width(self, key: str) -> int:
        """Column count of one chunk, from its ``.npy`` header when possible.

        Reading the header costs a few bytes of decompression; the fallback
        (decompressing the whole chunk just to look at ``shape``) is kept
        for archives whose format version this numpy does not expose.
        """
        try:
            with self._archive.zip.open(key + ".npy") as stream:
                version = np.lib.format.read_magic(stream)
                if version == (1, 0):
                    shape, _, _ = np.lib.format.read_array_header_1_0(stream)
                elif version == (2, 0):
                    shape, _, _ = np.lib.format.read_array_header_2_0(stream)
                else:
                    raise StorageError(
                        f"unsupported .npy format version {version}"
                    )
            if len(shape) != 2:
                raise StorageError(
                    f"chunk {key!r} in {self.path} has shape {shape}, "
                    f"expected ({self.num_series}, k)"
                )
            return int(shape[1])
        except StorageError:
            raise
        except (AttributeError, KeyError, OSError, ValueError):
            return int(self._load_chunk(key).shape[1])

    # ------------------------------------------------------------------ shape
    @property
    def length(self) -> int:
        """Total number of stored time steps."""
        return self._length

    @property
    def num_chunks(self) -> int:
        return len(self._chunk_keys)

    # ------------------------------------------------------------------ stream
    def _load_chunk(self, key: str) -> np.ndarray:
        array = _require_chunk_dtype(self._archive[key], key, self.path)
        if array.ndim != 2 or array.shape[0] != self.num_series:
            raise StorageError(
                f"chunk {key!r} in {self.path} has shape {array.shape}, "
                f"expected ({self.num_series}, k)"
            )
        return np.ascontiguousarray(array, dtype=FLOAT_DTYPE)

    def iter_chunks(self) -> Iterator[np.ndarray]:
        """Yield each chunk in column order, decompressed on demand."""
        for index, key in enumerate(self._chunk_keys):
            chunk = self._load_chunk(key)
            if index < len(self._chunk_keys) - 1 and chunk.shape[1] != self.chunk_columns:
                raise StorageError(
                    f"chunk {key!r} in {self.path} is {chunk.shape[1]} columns "
                    f"wide but only the final chunk may be partial "
                    f"(chunk_columns={self.chunk_columns})"
                )
            yield chunk

    def chunk_byte_sizes(self) -> List[int]:
        """Bytes of raw data in each chunk (from the format invariant)."""
        sizes = []
        for index in range(len(self._chunk_keys)):
            if index < len(self._chunk_keys) - 1:
                width = self.chunk_columns
            else:
                width = self._length - self.chunk_columns * index
            sizes.append(self.num_series * width * np.dtype(FLOAT_DTYPE).itemsize)
        return sizes

    # ----------------------------------------------------------- materialize
    def read_all(self) -> np.ndarray:
        """Materialize the full matrix (escape hatch; defeats laziness)."""
        if self._length == 0:
            return np.empty((self.num_series, 0), dtype=FLOAT_DTYPE)
        return np.concatenate(list(self.iter_chunks()), axis=1)

    def to_matrix(self) -> "TimeSeriesMatrix":
        """Materialize the stored columns as a :class:`TimeSeriesMatrix`."""
        if self._length == 0:
            raise StorageError("chunk store contains no columns")
        return TimeSeriesMatrix(self.read_all(), series_ids=self.series_ids)

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close the underlying archive (iteration afterwards fails)."""
        self._archive.close()

    def __enter__(self) -> "ChunkStoreReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ChunkStoreReader(path={str(self.path)!r}, "
            f"num_series={self.num_series}, length={self._length}, "
            f"chunks={self.num_chunks})"
        )
