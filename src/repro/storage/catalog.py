"""A small on-disk catalog tying raw chunk stores to their statistics indexes.

A realistic deployment of Dangoron stores many datasets, each with raw data
and one or more statistics indexes (different basic-window sizes).  The
catalog is a directory with a JSON manifest mapping dataset names to the
``.npz`` artefacts, so examples and benchmarks can manage generated data the
way a user of the system would.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.exceptions import StorageError
from repro.storage.chunk_store import ChunkStore
from repro.storage.stats_index import StatsIndex
from repro.timeseries.matrix import TimeSeriesMatrix

_MANIFEST_NAME = "catalog.json"


@dataclass
class DatasetEntry:
    """Catalog record of one dataset."""

    name: str
    data_file: str
    index_files: Dict[str, str] = field(default_factory=dict)
    description: str = ""

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "data_file": self.data_file,
            "index_files": dict(self.index_files),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "DatasetEntry":
        try:
            return cls(
                name=str(record["name"]),
                data_file=str(record["data_file"]),
                index_files={str(k): str(v) for k, v in record.get("index_files", {}).items()},
                description=str(record.get("description", "")),
            )
        except KeyError as error:
            raise StorageError(f"malformed catalog entry: {record!r}") from error


class Catalog:
    """Directory-backed registry of chunk stores and statistics indexes."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._entries: Dict[str, DatasetEntry] = {}
        self._load_manifest()

    # ----------------------------------------------------------------- content
    def dataset_names(self) -> List[str]:
        return sorted(self._entries)

    def describe(self, name: str) -> DatasetEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise StorageError(f"unknown dataset {name!r}") from None

    # ------------------------------------------------------------------ writes
    def add_dataset(
        self, name: str, store: ChunkStore, description: str = "",
        overwrite: bool = False,
    ) -> DatasetEntry:
        """Persist a chunk store under ``name`` and register it."""
        if name in self._entries and not overwrite:
            raise StorageError(
                f"dataset {name!r} already exists (pass overwrite=True to replace)"
            )
        data_file = f"{name}.data.npz"
        store.save(self.root / data_file)
        entry = DatasetEntry(name=name, data_file=data_file, description=description)
        if name in self._entries:
            entry.index_files = self._entries[name].index_files
        self._entries[name] = entry
        self._write_manifest()
        return entry

    def add_index(
        self, name: str, index: StatsIndex, label: Optional[str] = None
    ) -> str:
        """Persist a statistics index for an existing dataset."""
        entry = self.describe(name)
        label = label if label is not None else f"b{index.layout.size}"
        index_file = f"{name}.index.{label}.npz"
        index.save(self.root / index_file)
        entry.index_files[label] = index_file
        self._write_manifest()
        return label

    def index_labels(self, name: str) -> List[str]:
        """Labels of the persisted statistics indexes of one dataset."""
        return sorted(self.describe(name).index_files)

    # ------------------------------------------------------------------ reads
    def load_dataset(self, name: str) -> ChunkStore:
        entry = self.describe(name)
        return ChunkStore.load(self.root / entry.data_file)

    def load_matrix(self, name: str) -> TimeSeriesMatrix:
        """Materialize a dataset's stored columns as a :class:`TimeSeriesMatrix`.

        Convenience for code that wants the dense on-disk view directly (a
        notebook, a one-shot analysis) without going through the query
        service's live runtime.
        """
        store = self.load_dataset(name)
        if store.length == 0:
            raise StorageError(f"dataset {name!r} contains no columns")
        return store.to_matrix()

    def load_index(self, name: str, label: Optional[str] = None) -> StatsIndex:
        entry = self.describe(name)
        if not entry.index_files:
            raise StorageError(f"dataset {name!r} has no statistics indexes")
        if label is None:
            label = sorted(entry.index_files)[0]
        if label not in entry.index_files:
            raise StorageError(
                f"dataset {name!r} has no index labelled {label!r}; "
                f"available: {sorted(entry.index_files)}"
            )
        return StatsIndex.load(self.root / entry.index_files[label])

    # ------------------------------------------------------------------ manifest
    def _manifest_path(self) -> Path:
        return self.root / _MANIFEST_NAME

    def _load_manifest(self) -> None:
        path = self._manifest_path()
        if not path.exists():
            return
        try:
            with open(path, "r", encoding="utf-8") as handle:
                records = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise StorageError(f"cannot read catalog manifest {path}") from error
        for record in records:
            entry = DatasetEntry.from_dict(record)
            self._entries[entry.name] = entry

    def _write_manifest(self) -> None:
        records = [entry.as_dict() for entry in self._entries.values()]
        with open(self._manifest_path(), "w", encoding="utf-8") as handle:
            json.dump(records, handle, indent=2, sort_keys=True)

    def __repr__(self) -> str:
        return f"Catalog(root={str(self.root)!r}, datasets={len(self._entries)})"
