"""In-memory caches for repeated sliding queries.

Interactive exploration (the paper's challenge 1) repeatedly re-runs similar
queries — the same range with a different threshold, the same threshold over a
refreshed dashboard — and the most effective "optimization" for the second run
of an identical query is to not run it at all.  :class:`QueryCache` memoizes
:class:`~repro.core.result.CorrelationSeriesResult` objects keyed by a
fingerprint of the data, the query, and the engine configuration, with LRU
eviction bounded either by entry count or by the estimated memory held.

One level below whole results, :class:`SketchCache` memoizes the
:class:`~repro.core.sketch.BasicWindowSketch` itself, keyed on the data plus
the basic-window layout (range, size).  Queries that differ only in threshold,
``k`` or lag share a sketch, so a threshold sweep — the dominant-cost path of
the E4 experiment — builds the γ·N² statistics once.  This is the cache the
:class:`repro.api.QueryPlanner` plans against.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.basic_window import BasicWindowLayout
from repro.core.engine import SlidingCorrelationEngine
from repro.core.query import SlidingQuery
from repro.core.result import CorrelationSeriesResult
from repro.core.sketch import BasicWindowSketch
from repro.exceptions import StorageError
from repro.timeseries.matrix import TimeSeriesMatrix


#: Column-block width used by :func:`matrix_fingerprint`.  Hashing walks the
#: canonical column-block stream (``iter_column_blocks``) instead of one
#: dense ``tobytes()`` so chunk-backed matrices fingerprint without ever
#: materializing — with the same digest as the dense view, which is what
#: lets tiled-built sketches share cache keys with dense-built ones.
FINGERPRINT_BLOCK_COLUMNS = 1024


def _fingerprint_header(matrix: TimeSeriesMatrix):
    """The metadata part of a fingerprint digest (values are streamed after)."""
    digest = hashlib.sha256()
    digest.update(str(matrix.shape).encode())
    digest.update(",".join(matrix.series_ids).encode())
    digest.update(repr((matrix.time_axis.start, matrix.time_axis.resolution)).encode())
    return digest


def matrix_fingerprint(matrix: TimeSeriesMatrix) -> str:
    """Stable content hash of a time-series matrix (values, ids, time axis).

    Streams the values in canonical column blocks, so a lazily-backed matrix
    (:class:`repro.core.tiled.ChunkBackedMatrix`) hashes with bounded memory
    and produces the exact digest of its dense counterpart.
    """
    digest = _fingerprint_header(matrix)
    for block in matrix.iter_column_blocks(FINGERPRINT_BLOCK_COLUMNS):
        digest.update(block.tobytes())
    return digest.hexdigest()


def query_fingerprint(query: SlidingQuery) -> str:
    """Stable key of a sliding query (all fields that affect the answer)."""
    return (
        f"{query.start}:{query.end}:{query.window}:{query.step}:"
        f"{query.threshold!r}:{query.threshold_mode}"
    )


class _FingerprintMemo:
    """Per-object memo of :func:`matrix_fingerprint` safe against id reuse.

    Hashing the full data array is the expensive part of a cache key, so both
    caches memoize it per matrix *object*.  Keying a plain dict by ``id()``
    alone is unsound: once the matrix is garbage collected the id can be
    recycled by an unrelated matrix, which would silently inherit the dead
    object's fingerprint.  A ``weakref.finalize`` drops each entry when its
    matrix dies, which also keeps the memo from growing without bound.
    """

    def __init__(self) -> None:
        self._fingerprints: Dict[int, str] = {}

    def __call__(self, matrix: TimeSeriesMatrix) -> str:
        fingerprint = self.peek(matrix)
        if fingerprint is None:
            fingerprint = matrix_fingerprint(matrix)
            self.record(matrix, fingerprint)
        return fingerprint

    def peek(self, matrix: TimeSeriesMatrix) -> Optional[str]:
        """The memoized fingerprint, or ``None`` if this object was never hashed."""
        return self._fingerprints.get(id(matrix))

    def record(self, matrix: TimeSeriesMatrix, fingerprint: str) -> None:
        """Memoize an externally computed fingerprint for this object."""
        identity = id(matrix)
        if identity not in self._fingerprints:
            weakref.finalize(matrix, self._fingerprints.pop, identity, None)
        self._fingerprints[identity] = fingerprint

    def clear(self) -> None:
        self._fingerprints.clear()


class _HashingTileSource:
    """A chunk-source tee: yields the stream unchanged while fingerprinting it.

    Wraps a tile source so one pass through an (possibly on-disk,
    decompress-on-read) catalog both assembles sketch tiles and computes the
    canonical content fingerprint — the chunks are re-blocked on the fly to
    the exact :data:`FINGERPRINT_BLOCK_COLUMNS` boundaries
    :func:`matrix_fingerprint` hashes, so the digest matches a dense
    matrix's bit for bit.
    """

    def __init__(self, source, matrix: TimeSeriesMatrix) -> None:
        self._source = source
        self._digest = _fingerprint_header(matrix)
        self._consumed = False

    @property
    def num_series(self) -> int:
        return self._source.num_series

    @property
    def length(self) -> int:
        return self._source.length

    def iter_chunks(self):
        from repro.core.tiled import ColumnReblocker

        reblocker = ColumnReblocker(FINGERPRINT_BLOCK_COLUMNS)
        for chunk in self._source.iter_chunks():
            for block in reblocker.feed(chunk):
                self._digest.update(block.tobytes())
            yield chunk
        tail = reblocker.flush()
        if tail is not None:
            self._digest.update(tail.tobytes())
        self._consumed = True

    def hexdigest(self) -> str:
        if not self._consumed:
            raise StorageError(
                "fingerprint requested before the chunk stream was fully consumed"
            )
        return self._digest.hexdigest()


def _result_bytes(result: CorrelationSeriesResult) -> int:
    """Rough memory estimate of a cached result (edge arrays only)."""
    total = 0
    for edges in result.matrices:
        total += edges.rows.nbytes + edges.cols.nbytes + edges.values.nbytes
    return total


@dataclass
class CacheStats:
    """Hit/miss counters of a :class:`QueryCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class QueryCache:
    """LRU cache of sliding-query results.

    Parameters
    ----------
    max_entries:
        Maximum number of results kept (least recently used evicted first).
    max_bytes:
        Optional bound on the summed estimated size of cached results; when
        exceeded, least recently used entries are evicted until it fits.
    """

    def __init__(self, max_entries: int = 32, max_bytes: Optional[int] = None) -> None:
        if max_entries < 1:
            raise StorageError(f"max_entries must be at least 1, got {max_entries}")
        if max_bytes is not None and max_bytes <= 0:
            raise StorageError(f"max_bytes must be positive, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        self.stats = CacheStats()  # guarded-by: _lock
        self._entries: "OrderedDict[Tuple[str, str, str], CorrelationSeriesResult]" = (
            OrderedDict()
        )  # guarded-by: _lock
        self._sizes: Dict[Tuple[str, str, str], int] = {}  # guarded-by: _lock
        self._fingerprint = _FingerprintMemo()  # guarded-by: _lock

    # ------------------------------------------------------------------ sizing
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def current_bytes(self) -> int:
        """Summed estimated size of all cached results."""
        with self._lock:
            return sum(self._sizes.values())

    # ------------------------------------------------------------------ lookup
    def _key(
        self, matrix: TimeSeriesMatrix, query: SlidingQuery, engine_label: str
    ) -> Tuple[str, str, str]:
        # Fingerprinting hashes the full data array; memoized per matrix object
        # so repeated queries over the same (immutable) matrix pay it once.
        return self._fingerprint(matrix), query_fingerprint(query), engine_label

    def get(
        self, matrix: TimeSeriesMatrix, query: SlidingQuery, engine_label: str
    ) -> Optional[CorrelationSeriesResult]:
        """Return the cached result for this (data, query, engine), or ``None``."""
        with self._lock:
            key = self._key(matrix, query, engine_label)
            result = self._entries.get(key)
            if result is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return result

    def put(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        engine_label: str,
        result: CorrelationSeriesResult,
    ) -> None:
        """Insert a result, evicting least recently used entries as needed."""
        with self._lock:
            key = self._key(matrix, query, engine_label)
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = result
            self._sizes[key] = _result_bytes(result)
            self._evict()

    def get_or_compute(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        engine: SlidingCorrelationEngine,
    ) -> CorrelationSeriesResult:
        """Return the cached answer or run the engine and cache its result."""
        label = engine.describe()
        cached = self.get(matrix, query, label)
        if cached is not None:
            return cached
        result = engine.run(matrix, query)
        self.put(matrix, query, label, result)
        return result

    def clear(self) -> None:
        """Drop every cached entry (statistics are preserved)."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self._fingerprint.clear()

    # ---------------------------------------------------------------- internal
    def _evict(self) -> None:  # requires-lock: _lock
        while len(self._entries) > self.max_entries:
            self._pop_oldest()
        if self.max_bytes is not None:
            while len(self._entries) > 1 and self.current_bytes > self.max_bytes:
                self._pop_oldest()

    def _pop_oldest(self) -> None:  # requires-lock: _lock
        key, _ = self._entries.popitem(last=False)
        self._sizes.pop(key, None)
        self.stats.evictions += 1


class SketchCache:
    """LRU cache of :class:`BasicWindowSketch` instances for cross-query reuse.

    Keyed on the data fingerprint plus the layout (offset, basic-window size,
    count) and whether pairwise statistics were requested — every query whose
    planned layout coincides (a threshold sweep, a top-k refinement of the
    same range, Dangoron and TSUBASA at the same basic-window size) shares one
    build.  ``stats`` counts hits/misses; ``builds`` counts actual sketch
    constructions, which is what the reuse tests assert on.

    Sharded parallel execution reuses the cache too: the planner fetches one
    sketch here and hands the same object to every shard of a
    :class:`repro.parallel.ShardedExecutor` run (fork-based process pools
    inherit it copy-on-write), so ``workers=N`` never multiplies the γ·N²
    build cost.  Cached sketches are treated as immutable; the only mutation
    after publication is the LRU-bounded scan memo, whose get/evict steps
    tolerate concurrent thread-mode shards (a hit whose key is evicted
    mid-lookup stays a hit — see ``BasicWindowSketch.exact_matrix_scan``).

    Parameters
    ----------
    max_entries:
        Maximum number of sketches kept (least recently used evicted first).
    scan_memo_entries:
        When positive, :meth:`BasicWindowSketch.enable_scan_memo` is switched
        on for every cached sketch with this bound, so dense window scans that
        repeat across the sharing queries (e.g. each sweep run's first window)
        are also answered once.  ``0`` disables the memo.
    """

    def __init__(self, max_entries: int = 8, scan_memo_entries: int = 16) -> None:
        if max_entries < 1:
            raise StorageError(f"max_entries must be at least 1, got {max_entries}")
        if scan_memo_entries < 0:
            raise StorageError(
                f"scan_memo_entries must be non-negative, got {scan_memo_entries}"
            )
        self.max_entries = max_entries
        self.scan_memo_entries = scan_memo_entries
        self._lock = threading.RLock()
        self.stats = CacheStats()  # guarded-by: _lock
        self.builds = 0  # guarded-by: _lock
        self.seeds = 0  # guarded-by: _lock
        self._entries: "OrderedDict[Tuple[str, int, int, int, bool], BasicWindowSketch]" = (
            OrderedDict()
        )  # guarded-by: _lock
        self._fingerprint = _FingerprintMemo()  # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def memory_bytes(self) -> int:
        """Summed estimated size of all cached sketches."""
        with self._lock:
            return sum(sketch.memory_bytes() for sketch in self._entries.values())

    @staticmethod
    def _key_for(
        fingerprint: str, layout: BasicWindowLayout, pairwise: bool
    ) -> Tuple[str, int, int, int, bool]:
        return fingerprint, layout.offset, layout.size, layout.count, pairwise

    def _key(
        self, matrix: TimeSeriesMatrix, layout: BasicWindowLayout, pairwise: bool
    ) -> Tuple[str, int, int, int, bool]:
        return self._key_for(self._fingerprint(matrix), layout, pairwise)

    def get_or_build(
        self,
        matrix: TimeSeriesMatrix,
        layout: BasicWindowLayout,
        pairwise: bool = True,
    ) -> BasicWindowSketch:
        """Return the cached sketch for (data, layout) or build and cache it.

        Holding the lock across the build doubles as single-flight: two
        threads racing on a cold (data, layout) run one build, not two.
        """
        with self._lock:
            key = self._key(matrix, layout, pairwise)
            sketch = self._entries.get(key)
            if sketch is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return sketch
            self.stats.misses += 1
            sketch = BasicWindowSketch.build(
                matrix.values,  # repro-lint: disable=RPR002 -- get_or_build is the declared dense path; out-of-core callers use get_or_build_tiled
                layout,
                pairwise=pairwise,
            )
            return self._insert_built(key, sketch)

    def get_or_build_tiled(
        self,
        matrix: TimeSeriesMatrix,
        layout: BasicWindowLayout,
        memory_budget: int,
        pairwise: bool = True,
        workers: Optional[int] = None,
    ) -> BasicWindowSketch:
        """Like :meth:`get_or_build`, but a miss builds out-of-core.

        The cache key is identical to the dense build's (same content
        fingerprint, same layout), which is sound because tiled builds are
        bit-identical to dense ones — so a dense query after a tiled one (or
        vice versa) hits the same entry.  ``matrix`` may be a lazy
        :class:`repro.core.tiled.ChunkBackedMatrix`; fingerprinting streams
        and never materializes it.  For a *cold* source (no memoized
        fingerprint yet) the content hash is computed **during** the tile
        pass, so an on-disk catalog is decompressed once, not twice.
        """
        from repro.core.tiled import build_sketch_tiled, tile_source_for

        with self._lock:
            fingerprint = self._fingerprint.peek(matrix)
            if fingerprint is not None:
                key = self._key_for(fingerprint, layout, pairwise)
                sketch = self._entries.get(key)
                if sketch is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return sketch
                self.stats.misses += 1
                sketch = build_sketch_tiled(
                    tile_source_for(matrix),
                    layout,
                    memory_budget=memory_budget,
                    pairwise=pairwise,
                    workers=workers,
                )
                return self._insert_built(key, sketch)

            # Cold source: one pass feeds both the tile assembler and the
            # fingerprint digest (the tee re-blocks the chunk stream to the
            # canonical fingerprint boundaries as it flows through).
            source = _HashingTileSource(tile_source_for(matrix), matrix)
            sketch = build_sketch_tiled(
                source,
                layout,
                memory_budget=memory_budget,
                pairwise=pairwise,
                workers=workers,
            )
            fingerprint = source.hexdigest()
            self._fingerprint.record(matrix, fingerprint)
            key = self._key_for(fingerprint, layout, pairwise)
            existing = self._entries.get(key)
            if existing is not None:
                # The same content was cached through another matrix object; the
                # duplicate build is discarded (the cached sketch may hold a
                # warmer scan memo).  Counted as a hit: the caller's answer came
                # from the shared entry.
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return existing
            self.stats.misses += 1
            return self._insert_built(key, sketch)

    def _insert_built(self, key, sketch: BasicWindowSketch) -> BasicWindowSketch:  # requires-lock: _lock
        self.builds += 1
        if self.scan_memo_entries:
            sketch.enable_scan_memo(self.scan_memo_entries)
        self._entries[key] = sketch
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return sketch

    def contains(
        self,
        matrix: TimeSeriesMatrix,
        layout: BasicWindowLayout,
        pairwise: bool = True,
    ) -> bool:
        """``True`` when a sketch for (data, layout) is cached (no stats side effects)."""
        with self._lock:
            return self._key(matrix, layout, pairwise) in self._entries

    def seed(self, matrix: TimeSeriesMatrix, sketch: BasicWindowSketch) -> bool:
        """Insert a prebuilt sketch (e.g. a persisted :class:`StatsIndex`'s).

        This is how the query service materializes on-disk statistics indexes
        into the warm cache without paying the γ·N² build: the sketch is keyed
        under its own layout exactly as :meth:`get_or_build` would key a fresh
        build, so the next query planning that layout hits it.  Counted under
        ``seeds`` (neither a hit nor a build); an already-cached layout is left
        alone (the live sketch may hold a warmer scan memo).  Returns ``True``
        when the sketch was inserted.
        """
        if sketch.num_series != matrix.num_series:
            raise StorageError(
                f"seeded sketch covers {sketch.num_series} series but the "
                f"matrix has {matrix.num_series}"
            )
        if sketch.layout.covered_end > matrix.length:
            raise StorageError(
                f"seeded sketch covers columns up to {sketch.layout.covered_end} "
                f"but the matrix has only {matrix.length}"
            )
        with self._lock:
            key = self._key(matrix, sketch.layout, sketch.has_pairwise)
            if key in self._entries:
                return False
            if self.scan_memo_entries:
                sketch.enable_scan_memo(self.scan_memo_entries)
            self._entries[key] = sketch
            self.seeds += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            return True

    def clear(self) -> None:
        """Drop every cached sketch (statistics are preserved)."""
        with self._lock:
            self._entries.clear()
            self._fingerprint.clear()
