"""In-memory caches for repeated sliding queries.

Interactive exploration (the paper's challenge 1) repeatedly re-runs similar
queries — the same range with a different threshold, the same threshold over a
refreshed dashboard — and the most effective "optimization" for the second run
of an identical query is to not run it at all.  :class:`QueryCache` memoizes
:class:`~repro.core.result.CorrelationSeriesResult` objects keyed by a
fingerprint of the data, the query, and the engine configuration, with LRU
eviction bounded either by entry count or by the estimated memory held.

One level below whole results, :class:`SketchCache` memoizes the
:class:`~repro.core.sketch.BasicWindowSketch` itself, keyed on the data plus
the basic-window layout (range, size).  Queries that differ only in threshold,
``k`` or lag share a sketch, so a threshold sweep — the dominant-cost path of
the E4 experiment — builds the γ·N² statistics once.  This is the cache the
:class:`repro.api.QueryPlanner` plans against.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from pathlib import Path
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.core.basic_window import BasicWindowLayout
from repro.core.engine import SlidingCorrelationEngine
from repro.core.query import SlidingQuery
from repro.core.result import CorrelationSeriesResult
from repro.core.sketch import BasicWindowSketch
from repro.exceptions import StorageError
from repro.timeseries.matrix import TimeSeriesMatrix


#: Column-block width used by :func:`matrix_fingerprint`.  Hashing walks the
#: canonical column-block stream (``iter_column_blocks``) instead of one
#: dense ``tobytes()`` so chunk-backed matrices fingerprint without ever
#: materializing — with the same digest as the dense view, which is what
#: lets tiled-built sketches share cache keys with dense-built ones.
FINGERPRINT_BLOCK_COLUMNS = 1024


def _update_header(
    digest, num_series: int, length: int, series_ids, axis_key
) -> None:
    """Hash the metadata half of a fingerprint (after the value blocks).

    The digest layout is *values first, header last* deliberately: an
    append-only stream can then keep one running hasher over the complete
    column blocks and finalize a ``copy()`` of it with the pending tail plus
    the grown header — O(Δ) per append instead of re-hashing history.  This
    is what :class:`_FingerprintChain` does.  Fingerprints are in-memory
    cache keys only (never persisted), so the layout is free to choose.
    """
    digest.update(str((num_series, length)).encode())
    digest.update(",".join(series_ids).encode())
    digest.update(repr(axis_key).encode())


def _matrix_axis_key(matrix: TimeSeriesMatrix):
    return (matrix.time_axis.start, matrix.time_axis.resolution)


def matrix_fingerprint(matrix: TimeSeriesMatrix) -> str:
    """Stable content hash of a time-series matrix (values, ids, time axis).

    Streams the values in canonical column blocks, so a lazily-backed matrix
    (:class:`repro.core.tiled.ChunkBackedMatrix`) hashes with bounded memory
    and produces the exact digest of its dense counterpart.
    """
    digest = hashlib.sha256()
    for block in matrix.iter_column_blocks(FINGERPRINT_BLOCK_COLUMNS):
        digest.update(block.tobytes())
    _update_header(
        digest, matrix.num_series, matrix.length, matrix.series_ids,
        _matrix_axis_key(matrix),
    )
    return digest.hexdigest()


def query_fingerprint(query: SlidingQuery) -> str:
    """Stable key of a sliding query (all fields that affect the answer)."""
    return (
        f"{query.start}:{query.end}:{query.window}:{query.step}:"
        f"{query.threshold!r}:{query.threshold_mode}"
    )


class _FingerprintMemo:
    """Per-object memo of :func:`matrix_fingerprint` safe against id reuse.

    Hashing the full data array is the expensive part of a cache key, so both
    caches memoize it per matrix *object*.  Keying a plain dict by ``id()``
    alone is unsound: once the matrix is garbage collected the id can be
    recycled by an unrelated matrix, which would silently inherit the dead
    object's fingerprint.  A ``weakref.finalize`` drops each entry when its
    matrix dies, which also keeps the memo from growing without bound.
    """

    def __init__(self) -> None:
        self._fingerprints: Dict[int, str] = {}

    def __call__(self, matrix: TimeSeriesMatrix) -> str:
        fingerprint = self.peek(matrix)
        if fingerprint is None:
            fingerprint = matrix_fingerprint(matrix)
            self.record(matrix, fingerprint)
        return fingerprint

    def peek(self, matrix: TimeSeriesMatrix) -> Optional[str]:
        """The memoized fingerprint, or ``None`` if this object was never hashed."""
        return self._fingerprints.get(id(matrix))

    def record(self, matrix: TimeSeriesMatrix, fingerprint: str) -> None:
        """Memoize an externally computed fingerprint for this object."""
        identity = id(matrix)
        if identity not in self._fingerprints:
            weakref.finalize(matrix, self._fingerprints.pop, identity, None)
        self._fingerprints[identity] = fingerprint

    def clear(self) -> None:
        self._fingerprints.clear()


class _HashingTileSource:
    """A chunk-source tee: yields the stream unchanged while fingerprinting it.

    Wraps a tile source so one pass through an (possibly on-disk,
    decompress-on-read) catalog both assembles sketch tiles and computes the
    canonical content fingerprint — the chunks are re-blocked on the fly to
    the exact :data:`FINGERPRINT_BLOCK_COLUMNS` boundaries
    :func:`matrix_fingerprint` hashes, so the digest matches a dense
    matrix's bit for bit.
    """

    def __init__(self, source, matrix: TimeSeriesMatrix) -> None:
        self._source = source
        self._digest = hashlib.sha256()
        self._header = (
            matrix.num_series, matrix.length, list(matrix.series_ids),
            _matrix_axis_key(matrix),
        )
        self._consumed = False

    @property
    def num_series(self) -> int:
        return self._source.num_series

    @property
    def length(self) -> int:
        return self._source.length

    def iter_chunks(self):
        from repro.core.tiled import ColumnReblocker

        reblocker = ColumnReblocker(FINGERPRINT_BLOCK_COLUMNS)
        for chunk in self._source.iter_chunks():
            for block in reblocker.feed(chunk):
                self._digest.update(block.tobytes())
            yield chunk
        tail = reblocker.flush()
        if tail is not None:
            self._digest.update(tail.tobytes())
        _update_header(self._digest, *self._header)
        self._consumed = True

    def hexdigest(self) -> str:
        if not self._consumed:
            raise StorageError(
                "fingerprint requested before the chunk stream was fully consumed"
            )
        return self._digest.hexdigest()


#: Trailing columns a fingerprint chain always keeps buffered beyond what its
#: live cache entries demand.  A sketch built *after* an append covers at most
#: ``size - 1`` fewer columns than the matrix, so retaining one canonical
#: block's worth lets the *next* append extend entries that do not exist yet
#: (any basic-window size up to this bound), while bounding the residual at
#: ``N x 1024 x 8`` bytes.
CHAIN_RESIDUAL_COLUMNS = FINGERPRINT_BLOCK_COLUMNS


class _FingerprintChain:
    """Running fingerprint and tail-residual state of an append-only matrix.

    One chain follows one dataset through its appends: a sha256 hasher over
    the complete canonical column blocks plus a :class:`ColumnReblocker`
    holding the partial tail block, so the fingerprint of the grown matrix
    finalizes in O(Δ) per append (hash the new bytes, ``copy()`` the hasher,
    absorb the pending tail and the grown header) instead of re-hashing
    history.  Alongside the hasher it buffers the *tail-residual* raw columns
    — everything past the oldest covered column of the cache entries keyed
    under its fingerprint — which is exactly what
    :meth:`BasicWindowSketch.extend` needs to absorb the delta windows.

    Not thread-safe on its own; the owning :class:`SketchCache` serializes
    all access under its lock.
    """

    def __init__(self, num_series: int, series_ids, axis_key) -> None:
        self._hasher = hashlib.sha256()
        from repro.core.tiled import ColumnReblocker

        self._reblocker = ColumnReblocker(FINGERPRINT_BLOCK_COLUMNS)
        self.num_series = num_series
        self._series_ids = list(series_ids)
        self._axis_key = axis_key
        self.length = 0
        #: First column still buffered; the tail covers [tail_start, length).
        self.tail_start = 0
        self._tail: List[np.ndarray] = []

    @classmethod
    def bootstrap(cls, matrix: TimeSeriesMatrix, keep_from: int) -> "_FingerprintChain":
        """Capture the mid-stream hasher state of an existing matrix.

        The one-time O(history) pass of a chain's life: every later append
        is O(Δ).  ``keep_from`` is the oldest column the tail-residual must
        retain (the minimum ``covered_end`` of the cache entries the chain
        will extend); only columns at or past it are buffered, so the pass
        streams with bounded memory.
        """
        chain = cls(matrix.num_series, matrix.series_ids, _matrix_axis_key(matrix))
        keep_from = min(
            max(0, keep_from), max(0, matrix.length - CHAIN_RESIDUAL_COLUMNS)
        )
        chain.tail_start = keep_from
        for block in matrix.iter_column_blocks(FINGERPRINT_BLOCK_COLUMNS):
            start = chain.length
            for complete in chain._reblocker.feed(block):
                chain._hasher.update(complete.tobytes())
            end = start + block.shape[1]
            if end > keep_from:
                chain._tail.append(
                    np.ascontiguousarray(block[:, max(0, keep_from - start):])
                )
            chain.length = end
        return chain

    def append(self, columns: np.ndarray) -> None:
        """Advance the chain by freshly appended columns (O(Δ))."""
        columns = np.array(columns, dtype=FLOAT_DTYPE, order="C", copy=True)
        if columns.ndim != 2 or columns.shape[0] != self.num_series:
            raise StorageError(
                f"chained append must supply ({self.num_series}, k) columns, "
                f"got shape {columns.shape}"
            )
        if columns.shape[1] == 0:
            raise StorageError("chained append must supply at least one column")
        for complete in self._reblocker.feed(columns):
            self._hasher.update(complete.tobytes())
        self._tail.append(columns)
        self.length += columns.shape[1]

    def fingerprint(self) -> str:
        """The matrix fingerprint at the chain's current length (O(tail))."""
        digest = self._hasher.copy()
        pending = self._reblocker.peek()
        if pending is not None:
            digest.update(pending.tobytes())
        _update_header(
            digest, self.num_series, self.length, self._series_ids, self._axis_key
        )
        return digest.hexdigest()

    def covers(self, start: int, end: int) -> bool:
        """``True`` when the tail buffer holds columns ``[start, end)``."""
        return self.tail_start <= start and end <= self.length

    def tail_columns(self, start: int, end: int) -> np.ndarray:
        """The buffered raw columns ``[start, end)`` as one contiguous array."""
        if start >= end or not self.covers(start, end):
            raise StorageError(
                f"chain tail covers [{self.tail_start}, {self.length}) but "
                f"columns [{start}, {end}) were requested"
            )
        pieces = []
        position = self.tail_start
        for piece in self._tail:
            width = piece.shape[1]
            low, high = max(start, position), min(end, position + width)
            if low < high:
                pieces.append(piece[:, low - position : high - position])
            position += width
        if len(pieces) == 1:
            return np.ascontiguousarray(pieces[0])
        return np.ascontiguousarray(np.concatenate(pieces, axis=1))

    def trim(self, keep_from: int) -> None:
        """Drop tail columns before ``keep_from`` (safety residual retained).

        The residual floor keeps the most recent
        :data:`CHAIN_RESIDUAL_COLUMNS` columns buffered even when no live
        entry needs them, so entries built (or seeded) *after* this append
        remain extendable on the next one.
        """
        keep_from = min(keep_from, max(0, self.length - CHAIN_RESIDUAL_COLUMNS))
        while self._tail and self.tail_start + self._tail[0].shape[1] <= keep_from:
            self.tail_start += self._tail[0].shape[1]
            self._tail.pop(0)
        if self._tail and self.tail_start < keep_from:
            self._tail[0] = np.ascontiguousarray(
                self._tail[0][:, keep_from - self.tail_start :]
            )
            self.tail_start = keep_from

    def tail_bytes(self) -> int:
        """Resident bytes of the tail-residual buffer (observability)."""
        return int(sum(piece.nbytes for piece in self._tail))


def _result_bytes(result: CorrelationSeriesResult) -> int:
    """Rough memory estimate of a cached result (edge arrays only)."""
    total = 0
    for edges in result.matrices:
        total += edges.rows.nbytes + edges.cols.nbytes + edges.values.nbytes
    return total


@dataclass
class CacheStats:
    """Hit/miss counters of a :class:`QueryCache` / :class:`SketchCache`.

    The maintenance counters are written by the incremental paths only:
    ``sketch_extensions`` counts O(Δ) extensions of a chained entry,
    ``extended_windows`` the basic windows those extensions absorbed, and
    ``buffered_columns`` is a gauge of the service write buffer's current
    depth (see :meth:`SketchCache.set_buffered_columns`).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    sketch_extensions: int = 0
    extended_windows: int = 0
    buffered_columns: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "sketch_extensions": self.sketch_extensions,
            "extended_windows": self.extended_windows,
            "buffered_columns": self.buffered_columns,
        }


class QueryCache:
    """LRU cache of sliding-query results.

    Parameters
    ----------
    max_entries:
        Maximum number of results kept (least recently used evicted first).
    max_bytes:
        Optional bound on the summed estimated size of cached results; when
        exceeded, least recently used entries are evicted until it fits.
    """

    def __init__(self, max_entries: int = 32, max_bytes: Optional[int] = None) -> None:
        if max_entries < 1:
            raise StorageError(f"max_entries must be at least 1, got {max_entries}")
        if max_bytes is not None and max_bytes <= 0:
            raise StorageError(f"max_bytes must be positive, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        self.stats = CacheStats()  # guarded-by: _lock
        self._entries: "OrderedDict[Tuple[str, str, str], CorrelationSeriesResult]" = (
            OrderedDict()
        )  # guarded-by: _lock
        self._sizes: Dict[Tuple[str, str, str], int] = {}  # guarded-by: _lock
        self._fingerprint = _FingerprintMemo()  # guarded-by: _lock

    # ------------------------------------------------------------------ sizing
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def current_bytes(self) -> int:
        """Summed estimated size of all cached results."""
        with self._lock:
            return sum(self._sizes.values())

    # ------------------------------------------------------------------ lookup
    def _key(
        self, matrix: TimeSeriesMatrix, query: SlidingQuery, engine_label: str
    ) -> Tuple[str, str, str]:
        # Fingerprinting hashes the full data array; memoized per matrix object
        # so repeated queries over the same (immutable) matrix pay it once.
        return self._fingerprint(matrix), query_fingerprint(query), engine_label

    def get(
        self, matrix: TimeSeriesMatrix, query: SlidingQuery, engine_label: str
    ) -> Optional[CorrelationSeriesResult]:
        """Return the cached result for this (data, query, engine), or ``None``."""
        with self._lock:
            key = self._key(matrix, query, engine_label)
            result = self._entries.get(key)
            if result is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return result

    def put(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        engine_label: str,
        result: CorrelationSeriesResult,
    ) -> None:
        """Insert a result, evicting least recently used entries as needed."""
        with self._lock:
            key = self._key(matrix, query, engine_label)
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = result
            self._sizes[key] = _result_bytes(result)
            self._evict()

    def get_or_compute(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        engine: SlidingCorrelationEngine,
    ) -> CorrelationSeriesResult:
        """Return the cached answer or run the engine and cache its result."""
        label = engine.describe()
        cached = self.get(matrix, query, label)
        if cached is not None:
            return cached
        result = engine.run(matrix, query)
        self.put(matrix, query, label, result)
        return result

    def clear(self) -> None:
        """Drop every cached entry (statistics are preserved)."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self._fingerprint.clear()

    # ---------------------------------------------------------------- internal
    def _evict(self) -> None:  # requires-lock: _lock
        while len(self._entries) > self.max_entries:
            self._pop_oldest()
        if self.max_bytes is not None:
            while len(self._entries) > 1 and self.current_bytes > self.max_bytes:
                self._pop_oldest()

    def _pop_oldest(self) -> None:  # requires-lock: _lock
        key, _ = self._entries.popitem(last=False)
        self._sizes.pop(key, None)
        self.stats.evictions += 1


class SketchCache:
    """LRU cache of :class:`BasicWindowSketch` instances for cross-query reuse.

    Keyed on the data fingerprint plus the layout (offset, basic-window size,
    count) and whether pairwise statistics were requested — every query whose
    planned layout coincides (a threshold sweep, a top-k refinement of the
    same range, Dangoron and TSUBASA at the same basic-window size) shares one
    build.  ``stats`` counts hits/misses; ``builds`` counts actual sketch
    constructions, which is what the reuse tests assert on.

    Sharded parallel execution reuses the cache too: the planner fetches one
    sketch here and hands the same object to every shard of a
    :class:`repro.parallel.ShardedExecutor` run (fork-based process pools
    inherit it copy-on-write), so ``workers=N`` never multiplies the γ·N²
    build cost.  Cached sketches are treated as immutable; the only mutation
    after publication is the LRU-bounded scan memo, whose get/evict steps
    tolerate concurrent thread-mode shards (a hit whose key is evicted
    mid-lookup stays a hit — see ``BasicWindowSketch.exact_matrix_scan``).

    Parameters
    ----------
    max_entries:
        Maximum number of sketches kept (least recently used evicted first).
    scan_memo_entries:
        When positive, :meth:`BasicWindowSketch.enable_scan_memo` is switched
        on for every cached sketch with this bound, so dense window scans that
        repeat across the sharing queries (e.g. each sweep run's first window)
        are also answered once.  ``0`` disables the memo.
    feedback_path:
        When set, the cache's :class:`~repro.api.cost.FeedbackStore` loads
        from (and :meth:`~repro.api.cost.FeedbackStore.save` writes to) this
        JSON file, persisting what the planner learned alongside the
        sketches.  A corrupt or truncated file does not take the cache down:
        the store starts empty — the planner falls back to calibration —
        and carries the :class:`~repro.exceptions.StorageError` message on
        ``feedback.load_error``.

    The feedback store shares this cache's lock, so planner threads
    recording observed runtimes serialize with the cache's own bookkeeping.
    """

    def __init__(
        self,
        max_entries: int = 8,
        scan_memo_entries: int = 16,
        feedback_path: Optional[object] = None,
    ) -> None:
        # Deferred import: ``repro.api`` imports this module at its top
        # level, so importing ``repro.api.cost`` here at module scope would
        # be circular.
        from repro.api.cost import FeedbackStore
        if max_entries < 1:
            raise StorageError(f"max_entries must be at least 1, got {max_entries}")
        if scan_memo_entries < 0:
            raise StorageError(
                f"scan_memo_entries must be non-negative, got {scan_memo_entries}"
            )
        self.max_entries = max_entries
        self.scan_memo_entries = scan_memo_entries
        self._lock = threading.RLock()
        self.stats = CacheStats()  # guarded-by: _lock
        self.builds = 0  # guarded-by: _lock
        self.seeds = 0  # guarded-by: _lock
        self._entries: "OrderedDict[Tuple[str, int, int, int, bool], BasicWindowSketch]" = (
            OrderedDict()
        )  # guarded-by: _lock
        self._fingerprint = _FingerprintMemo()  # guarded-by: _lock
        # Append chains keyed by their *current* fingerprint; an append pops
        # the chain under the old digest and re-files it under the new one,
        # moving every cache entry along with it.
        self._chains: Dict[str, _FingerprintChain] = {}  # guarded-by: _lock
        if feedback_path is not None and Path(feedback_path).exists():
            try:
                self.feedback = FeedbackStore.load(feedback_path, lock=self._lock)
            except StorageError as exc:
                self.feedback = FeedbackStore(path=feedback_path, lock=self._lock)
                self.feedback.load_error = str(exc)
        else:
            self.feedback = FeedbackStore(path=feedback_path, lock=self._lock)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def memory_bytes(self) -> int:
        """Summed estimated size of all cached sketches."""
        with self._lock:
            return sum(sketch.memory_bytes() for sketch in self._entries.values())

    @staticmethod
    def _key_for(
        fingerprint: str, layout: BasicWindowLayout, pairwise: bool
    ) -> Tuple[str, int, int, int, bool]:
        return fingerprint, layout.offset, layout.size, layout.count, pairwise

    def _key(
        self, matrix: TimeSeriesMatrix, layout: BasicWindowLayout, pairwise: bool
    ) -> Tuple[str, int, int, int, bool]:
        return self._key_for(self._fingerprint(matrix), layout, pairwise)

    def fingerprint_of(self, matrix: TimeSeriesMatrix) -> str:
        """The matrix's content fingerprint, via the cache's memo.

        Adopted fingerprints (:meth:`adopt_fingerprint`, the append chain)
        are honored, so callers keying external state the way cache entries
        are keyed — e.g. the service's shared mmap segments — never trigger
        a redundant O(N·L) hash of history the chain already accounted for.
        """
        with self._lock:
            return self._fingerprint(matrix)

    def get_or_build(
        self,
        matrix: TimeSeriesMatrix,
        layout: BasicWindowLayout,
        pairwise: bool = True,
    ) -> BasicWindowSketch:
        """Return the cached sketch for (data, layout) or build and cache it.

        Holding the lock across the build doubles as single-flight: two
        threads racing on a cold (data, layout) run one build, not two.
        """
        with self._lock:
            key = self._key(matrix, layout, pairwise)
            sketch = self._entries.get(key)
            if sketch is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return sketch
            self.stats.misses += 1
            sketch = BasicWindowSketch.build(
                matrix.values,  # repro-lint: disable=RPR002 -- get_or_build is the declared dense path; out-of-core callers use get_or_build_tiled
                layout,
                pairwise=pairwise,
            )
            return self._insert_built(key, sketch)

    def get_or_build_tiled(
        self,
        matrix: TimeSeriesMatrix,
        layout: BasicWindowLayout,
        memory_budget: int,
        pairwise: bool = True,
        workers: Optional[int] = None,
    ) -> BasicWindowSketch:
        """Like :meth:`get_or_build`, but a miss builds out-of-core.

        The cache key is identical to the dense build's (same content
        fingerprint, same layout), which is sound because tiled builds are
        bit-identical to dense ones — so a dense query after a tiled one (or
        vice versa) hits the same entry.  ``matrix`` may be a lazy
        :class:`repro.core.tiled.ChunkBackedMatrix`; fingerprinting streams
        and never materializes it.  For a *cold* source (no memoized
        fingerprint yet) the content hash is computed **during** the tile
        pass, so an on-disk catalog is decompressed once, not twice.
        """
        from repro.core.tiled import build_sketch_tiled, tile_source_for

        with self._lock:
            fingerprint = self._fingerprint.peek(matrix)
            if fingerprint is not None:
                key = self._key_for(fingerprint, layout, pairwise)
                sketch = self._entries.get(key)
                if sketch is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return sketch
                self.stats.misses += 1
                sketch = build_sketch_tiled(
                    tile_source_for(matrix),
                    layout,
                    memory_budget=memory_budget,
                    pairwise=pairwise,
                    workers=workers,
                )
                return self._insert_built(key, sketch)

            # Cold source: one pass feeds both the tile assembler and the
            # fingerprint digest (the tee re-blocks the chunk stream to the
            # canonical fingerprint boundaries as it flows through).
            source = _HashingTileSource(tile_source_for(matrix), matrix)
            sketch = build_sketch_tiled(
                source,
                layout,
                memory_budget=memory_budget,
                pairwise=pairwise,
                workers=workers,
            )
            fingerprint = source.hexdigest()
            self._fingerprint.record(matrix, fingerprint)
            key = self._key_for(fingerprint, layout, pairwise)
            existing = self._entries.get(key)
            if existing is not None:
                # The same content was cached through another matrix object; the
                # duplicate build is discarded (the cached sketch may hold a
                # warmer scan memo).  Counted as a hit: the caller's answer came
                # from the shared entry.
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return existing
            self.stats.misses += 1
            return self._insert_built(key, sketch)

    def _publish(self, key, sketch: BasicWindowSketch) -> BasicWindowSketch:  # requires-lock: _lock
        if self.scan_memo_entries:
            sketch.enable_scan_memo(self.scan_memo_entries)
        self._entries[key] = sketch
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return sketch

    def _insert_built(self, key, sketch: BasicWindowSketch) -> BasicWindowSketch:  # requires-lock: _lock
        self.builds += 1
        return self._publish(key, sketch)

    # ------------------------------------------------------------- maintenance
    def extend_chain(self, matrix: TimeSeriesMatrix, columns: np.ndarray) -> str:
        """Advance ``matrix``'s append chain by ``columns``; re-key its entries.

        Called with the **pre-append** matrix and the columns about to be
        appended to it.  The first call of a chain's life streams history once
        to capture the running hasher state (O(history)); every later call is
        O(Δ): hash the new bytes, finalize the grown fingerprint from a copy
        of the hasher, and *move* every cache entry keyed under the old
        fingerprint to the new one — the entries' sketches cover an unchanged
        prefix of the grown matrix, so re-keying them at the same layout is
        sound and instant.  Appended columns join the chain's tail-residual
        buffer until :meth:`get_or_extend` absorbs them into a sketch.

        Returns the grown matrix's fingerprint; callers should
        :meth:`adopt_fingerprint` it onto the rebuilt matrix object so later
        lookups skip the O(history) hash.
        """
        with self._lock:
            fingerprint = self._fingerprint.peek(matrix)
            chain = self._chains.pop(fingerprint, None) if fingerprint else None
            if chain is None:
                chain = _FingerprintChain.bootstrap(
                    matrix, self._min_covered_end(fingerprint, matrix.length)
                )
                bootstrapped = chain.fingerprint()
                if fingerprint is None:
                    fingerprint = bootstrapped
                    self._fingerprint.record(matrix, fingerprint)
                elif bootstrapped != fingerprint:
                    raise StorageError(
                        "matrix content changed under its memoized fingerprint; "
                        "refusing to chain cache entries onto different data"
                    )
            if chain.length != matrix.length or chain.num_series != matrix.num_series:
                raise StorageError(
                    f"append chain is out of sync with the matrix: chain covers "
                    f"({chain.num_series}, {chain.length}), matrix is "
                    f"({matrix.num_series}, {matrix.length})"
                )
            chain.append(columns)
            grown = chain.fingerprint()
            moved_ends = []
            for key in [k for k in self._entries if k[0] == fingerprint]:
                sketch = self._entries.pop(key)
                self._entries[(grown,) + key[1:]] = sketch
                moved_ends.append(sketch.layout.covered_end)
            chain.trim(min(moved_ends) if moved_ends else chain.length)
            self._chains[grown] = chain
            return grown

    def adopt_fingerprint(self, matrix: TimeSeriesMatrix, fingerprint: str) -> None:
        """Memoize a chained fingerprint onto a rebuilt matrix object.

        After an append the service rebuilds its matrix view; without this,
        the first lookup through the new object would re-hash the entire
        history that :meth:`extend_chain` already accounted for.
        """
        with self._lock:
            self._fingerprint.record(matrix, fingerprint)

    def has_chain(self, matrix: TimeSeriesMatrix) -> bool:
        """``True`` when this matrix heads an append chain (no hashing done)."""
        with self._lock:
            fingerprint = self._fingerprint.peek(matrix)
            return fingerprint is not None and fingerprint in self._chains

    def extension_coverage(
        self,
        matrix: TimeSeriesMatrix,
        layout: BasicWindowLayout,
        pairwise: bool = True,
    ) -> Optional[int]:
        """Basic windows of ``layout`` already covered by a chained entry.

        Returns ``layout.count`` when the exact sketch is cached,
        the prefix entry's window count when :meth:`get_or_extend` could
        extend it from the chain's buffered tail, and ``None`` when
        incremental maintenance cannot serve this layout (no usable prefix
        entry, or the tail no longer holds the needed columns).  No side
        effects — this is the planner's decision input.
        """
        with self._lock:
            fingerprint = self._fingerprint.peek(matrix)
            if fingerprint is None:
                return None
            if self._key_for(fingerprint, layout, pairwise) in self._entries:
                return layout.count
            chain = self._chains.get(fingerprint)
            if chain is None or layout.covered_end > chain.length:
                return None
            prefix = self._prefix_entry_key(fingerprint, layout, pairwise)
            if prefix is None:
                return None
            covered_end = layout.offset + layout.size * prefix[3]
            if not chain.covers(covered_end, layout.covered_end):
                return None
            return prefix[3]

    def _prefix_entry_key(
        self, fingerprint: str, layout: BasicWindowLayout, pairwise: bool
    ) -> Optional[Tuple[str, int, int, int, bool]]:  # requires-lock: _lock
        """The widest cached entry covering a strict prefix of ``layout``."""
        best = None
        for key in self._entries:
            if (
                key[0] == fingerprint
                and key[1] == layout.offset
                and key[2] == layout.size
                and key[4] == pairwise
                and key[3] < layout.count
                and (best is None or key[3] > best[3])
            ):
                best = key
        return best

    def _min_covered_end(self, fingerprint: Optional[str], default: int) -> int:  # requires-lock: _lock
        ends = [
            sketch.layout.covered_end
            for key, sketch in self._entries.items()
            if key[0] == fingerprint
        ]
        return min(ends) if ends else default

    def get_or_extend(
        self,
        matrix: TimeSeriesMatrix,
        layout: BasicWindowLayout,
        pairwise: bool = True,
        memory_budget: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> BasicWindowSketch:
        """Return the sketch for (data, layout), extending a chained prefix.

        The O(Δ) read-side half of incremental maintenance: when an append
        chain holds the columns between a cached prefix entry's coverage and
        ``layout``'s, the entry is *extended* (delta basic windows only,
        bit-identical to a rebuild — see :meth:`BasicWindowSketch.extend`)
        and republished under the full layout; the superseded prefix entry
        is dropped.  Counted under ``stats.sketch_extensions`` (not
        ``builds``).  Without a usable chain this degrades to
        :meth:`get_or_build_tiled` when ``memory_budget`` is set, else
        :meth:`get_or_build` — the planner's decline reasons make that path
        visible before execution.
        """
        with self._lock:
            fingerprint = self._fingerprint.peek(matrix)
            if fingerprint is not None:
                key = self._key_for(fingerprint, layout, pairwise)
                sketch = self._entries.get(key)
                if sketch is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return sketch
                chain = self._chains.get(fingerprint)
                prefix = (
                    self._prefix_entry_key(fingerprint, layout, pairwise)
                    if chain is not None and layout.covered_end <= chain.length
                    else None
                )
                if prefix is not None:
                    base = self._entries[prefix]
                    start = base.layout.covered_end
                    if chain.covers(start, layout.covered_end):
                        self.stats.misses += 1
                        sketch = base.extend(
                            chain.tail_columns(start, layout.covered_end)
                        )
                        self.stats.sketch_extensions += 1
                        self.stats.extended_windows += (
                            layout.count - base.layout.count
                        )
                        self._entries.pop(prefix)
                        self._publish(key, sketch)
                        chain.trim(self._min_covered_end(fingerprint, chain.length))
                        return sketch
        if memory_budget is not None:
            return self.get_or_build_tiled(
                matrix, layout, memory_budget, pairwise=pairwise, workers=workers
            )
        return self.get_or_build(matrix, layout, pairwise=pairwise)

    def set_buffered_columns(self, count: int) -> None:
        """Record the service write buffer's current depth (a gauge)."""
        with self._lock:
            self.stats.buffered_columns = int(count)

    def contains(
        self,
        matrix: TimeSeriesMatrix,
        layout: BasicWindowLayout,
        pairwise: bool = True,
    ) -> bool:
        """``True`` when a sketch for (data, layout) is cached (no stats side effects)."""
        with self._lock:
            return self._key(matrix, layout, pairwise) in self._entries

    def seed(self, matrix: TimeSeriesMatrix, sketch: BasicWindowSketch) -> bool:
        """Insert a prebuilt sketch (e.g. a persisted :class:`StatsIndex`'s).

        This is how the query service materializes on-disk statistics indexes
        into the warm cache without paying the γ·N² build: the sketch is keyed
        under its own layout exactly as :meth:`get_or_build` would key a fresh
        build, so the next query planning that layout hits it.  Counted under
        ``seeds`` (neither a hit nor a build); an already-cached layout is left
        alone (the live sketch may hold a warmer scan memo).  Returns ``True``
        when the sketch was inserted.
        """
        if sketch.num_series != matrix.num_series:
            raise StorageError(
                f"seeded sketch covers {sketch.num_series} series but the "
                f"matrix has {matrix.num_series}"
            )
        if sketch.layout.covered_end > matrix.length:
            raise StorageError(
                f"seeded sketch covers columns up to {sketch.layout.covered_end} "
                f"but the matrix has only {matrix.length}"
            )
        with self._lock:
            key = self._key(matrix, sketch.layout, sketch.has_pairwise)
            if key in self._entries:
                return False
            if self.scan_memo_entries:
                sketch.enable_scan_memo(self.scan_memo_entries)
            self._entries[key] = sketch
            self.seeds += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            return True

    def clear(self) -> None:
        """Drop every cached sketch and append chain (statistics are preserved)."""
        with self._lock:
            self._entries.clear()
            self._fingerprint.clear()
            self._chains.clear()
