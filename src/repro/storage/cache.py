"""In-memory result cache for repeated sliding queries.

Interactive exploration (the paper's challenge 1) repeatedly re-runs similar
queries — the same range with a different threshold, the same threshold over a
refreshed dashboard — and the most effective "optimization" for the second run
of an identical query is to not run it at all.  :class:`QueryCache` memoizes
:class:`~repro.core.result.CorrelationSeriesResult` objects keyed by a
fingerprint of the data, the query, and the engine configuration, with LRU
eviction bounded either by entry count or by the estimated memory held.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.engine import SlidingCorrelationEngine
from repro.core.query import SlidingQuery
from repro.core.result import CorrelationSeriesResult
from repro.exceptions import StorageError
from repro.timeseries.matrix import TimeSeriesMatrix


def matrix_fingerprint(matrix: TimeSeriesMatrix) -> str:
    """Stable content hash of a time-series matrix (values, ids, time axis)."""
    digest = hashlib.sha256()
    digest.update(str(matrix.shape).encode())
    digest.update(",".join(matrix.series_ids).encode())
    digest.update(repr((matrix.time_axis.start, matrix.time_axis.resolution)).encode())
    digest.update(matrix.values.tobytes())
    return digest.hexdigest()


def query_fingerprint(query: SlidingQuery) -> str:
    """Stable key of a sliding query (all fields that affect the answer)."""
    return (
        f"{query.start}:{query.end}:{query.window}:{query.step}:"
        f"{query.threshold!r}:{query.threshold_mode}"
    )


def _result_bytes(result: CorrelationSeriesResult) -> int:
    """Rough memory estimate of a cached result (edge arrays only)."""
    total = 0
    for matrix in result.matrices:
        total += matrix.rows.nbytes + matrix.cols.nbytes + matrix.values.nbytes
    return total


@dataclass
class CacheStats:
    """Hit/miss counters of a :class:`QueryCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class QueryCache:
    """LRU cache of sliding-query results.

    Parameters
    ----------
    max_entries:
        Maximum number of results kept (least recently used evicted first).
    max_bytes:
        Optional bound on the summed estimated size of cached results; when
        exceeded, least recently used entries are evicted until it fits.
    """

    def __init__(self, max_entries: int = 32, max_bytes: Optional[int] = None) -> None:
        if max_entries < 1:
            raise StorageError(f"max_entries must be at least 1, got {max_entries}")
        if max_bytes is not None and max_bytes <= 0:
            raise StorageError(f"max_bytes must be positive, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple[str, str, str], CorrelationSeriesResult]" = (
            OrderedDict()
        )
        self._sizes: Dict[Tuple[str, str, str], int] = {}
        self._fingerprints: Dict[int, str] = {}

    # ------------------------------------------------------------------ sizing
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def current_bytes(self) -> int:
        """Summed estimated size of all cached results."""
        return sum(self._sizes.values())

    # ------------------------------------------------------------------ lookup
    def _key(
        self, matrix: TimeSeriesMatrix, query: SlidingQuery, engine_label: str
    ) -> Tuple[str, str, str]:
        # Fingerprinting hashes the full data array; cache it per matrix object
        # so repeated queries over the same (immutable) matrix pay it once.
        identity = id(matrix)
        fingerprint = self._fingerprints.get(identity)
        if fingerprint is None:
            fingerprint = matrix_fingerprint(matrix)
            self._fingerprints[identity] = fingerprint
        return fingerprint, query_fingerprint(query), engine_label

    def get(
        self, matrix: TimeSeriesMatrix, query: SlidingQuery, engine_label: str
    ) -> Optional[CorrelationSeriesResult]:
        """Return the cached result for this (data, query, engine), or ``None``."""
        key = self._key(matrix, query, engine_label)
        result = self._entries.get(key)
        if result is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return result

    def put(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        engine_label: str,
        result: CorrelationSeriesResult,
    ) -> None:
        """Insert a result, evicting least recently used entries as needed."""
        key = self._key(matrix, query, engine_label)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = result
        self._sizes[key] = _result_bytes(result)
        self._evict()

    def get_or_compute(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        engine: SlidingCorrelationEngine,
    ) -> CorrelationSeriesResult:
        """Return the cached answer or run the engine and cache its result."""
        label = engine.describe()
        cached = self.get(matrix, query, label)
        if cached is not None:
            return cached
        result = engine.run(matrix, query)
        self.put(matrix, query, label, result)
        return result

    def clear(self) -> None:
        """Drop every cached entry (statistics are preserved)."""
        self._entries.clear()
        self._sizes.clear()
        self._fingerprints.clear()

    # ---------------------------------------------------------------- internal
    def _evict(self) -> None:
        while len(self._entries) > self.max_entries:
            self._pop_oldest()
        if self.max_bytes is not None:
            while len(self._entries) > 1 and self.current_bytes > self.max_bytes:
                self._pop_oldest()

    def _pop_oldest(self) -> None:
        key, _ = self._entries.popitem(last=False)
        self._sizes.pop(key, None)
        self.stats.evictions += 1
