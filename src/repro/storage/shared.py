"""Shared mmap-backed sketch segments for multi-process serving.

A *segment* is one dataset snapshot exported to disk so that forked worker
processes can answer queries over it without duplicating the dominant
arrays: the raw column values, every :class:`~repro.core.sketch
.BasicWindowSketch` statistic tensor, and the lazily-derived ``corr_prefix``
are each written as a plain ``.npy`` file and re-opened by workers with
``np.load(..., mmap_mode="r")``.  File-backed read-only pages are shared by
the kernel across every attaching process, so N workers cost one copy of the
sketch, not N — the property the service's per-worker RSS assertion measures.

Segments are keyed the way :class:`~repro.storage.cache.SketchCache` entries
are keyed — the matrix content fingerprint plus the basic-window layout — and
carry a monotonically increasing *generation*: every append in the parent
changes the fingerprint, which forces a fresh export under the next
generation number, and workers re-attach when a job names a generation newer
than the one they hold.

Layout of one exported segment directory::

    gen-000001/
        manifest.json        generation, fingerprint, layout, shapes
        values.npy           (N, L)        raw columns (streamed from chunks)
        series_sums.npy      (N, count)
        series_sumsqs.npy    (N, count)
        pair_sumprods.npy    (count, N, N)
        pair_corrs.npy       (count, N, N)
        corr_prefix.npy      (count+1, N, N)  materialized once, in the parent

``manifest.json`` is written last, so a crashed or torn export is never
attachable; every attach failure raises :class:`~repro.exceptions
.StorageError` naming the offending path.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.core.basic_window import BasicWindowLayout
from repro.core.sketch import BasicWindowSketch
from repro.exceptions import StorageError

#: Version tag checked on attach, so a future layout change cannot be
#: silently misread by an old worker.
SEGMENT_SCHEMA = "repro.segment/v1"

#: The sketch statistic tensors a segment carries, in export order.  The raw
#: ``values`` array is handled separately (it streams from the chunk store).
_SKETCH_ARRAYS = (
    "series_sums",
    "series_sumsqs",
    "pair_sumprods",
    "pair_corrs",
    "corr_prefix",
)


class SharedSegment:
    """One attached segment: the manifest plus read-only memmapped arrays.

    ``values`` is the ``(N, L)`` column matrix and ``sketch`` a
    :class:`BasicWindowSketch` whose statistic tensors (including the
    injected ``corr_prefix``) are views over the segment files — nothing
    here holds a private copy of the dominant arrays.
    """

    def __init__(
        self,
        path: Path,
        manifest: Dict[str, object],
        values: np.ndarray,
        sketch: BasicWindowSketch,
    ) -> None:
        self.path = path
        self.manifest = manifest
        self.values = values
        self.sketch = sketch

    @property
    def generation(self) -> int:
        return int(self.manifest["generation"])

    @property
    def fingerprint(self) -> str:
        return str(self.manifest["fingerprint"])

    @property
    def series_ids(self) -> List[str]:
        return list(self.manifest["series_ids"])

    @property
    def sketch_bytes(self) -> int:
        """Summed on-disk size of the statistic tensors (the shared footprint)."""
        return sum(
            (self.path / f"{name}.npy").stat().st_size for name in _SKETCH_ARRAYS
        )

    def __repr__(self) -> str:
        return (
            f"SharedSegment(generation={self.generation}, "
            f"fingerprint={self.fingerprint[:12]}..., path={str(self.path)!r})"
        )


def export_segment(
    directory: Union[str, Path],
    store,
    sketch: BasicWindowSketch,
    fingerprint: str,
    generation: int,
    series_ids,
) -> Path:
    """Write one dataset snapshot as an attachable segment directory.

    ``store`` is the dataset's chunk store (anything with ``num_series``,
    ``length`` and ``iter_chunks()``); its columns are streamed into the
    values file chunk by chunk, so the export never materializes a second
    dense copy of the data.  ``sketch`` must carry pairwise statistics —
    a per-series-only sketch cannot answer the correlation scans workers
    run.  The manifest is written last; see the module docstring.
    """
    if not sketch.has_pairwise:
        raise StorageError(
            "shared segments require a pairwise sketch; this one was built "
            "with pairwise=False"
        )
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)

    values = np.lib.format.open_memmap(
        target / "values.npy",
        mode="w+",
        dtype=FLOAT_DTYPE,
        shape=(int(store.num_series), int(store.length)),
    )
    cursor = 0
    for chunk in store.iter_chunks():
        values[:, cursor:cursor + chunk.shape[1]] = chunk
        cursor += chunk.shape[1]
    if cursor != store.length:
        raise StorageError(
            f"chunk store yielded {cursor} columns but reports length "
            f"{store.length}; refusing to export a torn segment to {target}"
        )
    values.flush()
    del values

    arrays = {
        "series_sums": sketch.series_sums,
        "series_sumsqs": sketch.series_sumsqs,
        "pair_sumprods": sketch.pair_sumprods,
        "pair_corrs": sketch.pair_corrs,
        # The property materializes the (count+1, N, N) prefix at most once,
        # here in the exporting parent; attaching workers mmap it instead of
        # each allocating their own (which would void the shared-memory win).
        "corr_prefix": sketch.corr_prefix,
    }
    shapes: Dict[str, List[int]] = {"values": [int(store.num_series), int(store.length)]}
    for name, array in arrays.items():
        np.save(target / f"{name}.npy", np.asarray(array))
        shapes[name] = [int(dim) for dim in array.shape]

    manifest = {
        "schema": SEGMENT_SCHEMA,
        "generation": int(generation),
        "fingerprint": fingerprint,
        "num_series": int(store.num_series),
        "length": int(store.length),
        "series_ids": list(series_ids),
        "layout": {
            "offset": sketch.layout.offset,
            "size": sketch.layout.size,
            "count": sketch.layout.count,
        },
        "shapes": shapes,
    }
    manifest_path = target / "manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=2))
    return target


def _load_array(path: Path, expected_shape: Tuple[int, ...]) -> np.ndarray:
    if not path.is_file():
        raise StorageError(f"shared segment array missing: {path}")
    try:
        array = np.load(path, mmap_mode="r", allow_pickle=False)
    except (OSError, ValueError) as error:
        # A truncated or corrupt .npy surfaces as a header/size error; name
        # the file so operators know which export to regenerate.
        raise StorageError(f"{path} is not a readable .npy array: {error}") from error
    if tuple(array.shape) != tuple(expected_shape):
        raise StorageError(
            f"{path} has shape {tuple(array.shape)} but the segment manifest "
            f"records {tuple(expected_shape)}"
        )
    return array


def attach_segment(directory: Union[str, Path]) -> SharedSegment:
    """Open a segment read-only; every array comes back memmapped.

    Raises :class:`StorageError` naming the offending path when the manifest
    is absent or unreadable, the schema tag is unknown, an array file is
    missing, or an array is truncated/corrupt (shape disagrees with the
    manifest, or the ``.npy`` header cannot be mapped).
    """
    path = Path(directory)
    manifest_path = path / "manifest.json"
    if not manifest_path.is_file():
        raise StorageError(f"shared segment at {path} has no manifest.json")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, ValueError) as error:
        raise StorageError(
            f"{manifest_path} is not a readable segment manifest: {error}"
        ) from error
    if manifest.get("schema") != SEGMENT_SCHEMA:
        raise StorageError(
            f"{manifest_path} declares schema {manifest.get('schema')!r}, "
            f"expected {SEGMENT_SCHEMA!r}"
        )
    shapes = manifest["shapes"]
    values = _load_array(path / "values.npy", tuple(shapes["values"]))
    loaded = {
        name: _load_array(path / f"{name}.npy", tuple(shapes[name]))
        for name in _SKETCH_ARRAYS
    }
    layout = BasicWindowLayout(
        offset=int(manifest["layout"]["offset"]),
        size=int(manifest["layout"]["size"]),
        count=int(manifest["layout"]["count"]),
    )
    sketch = BasicWindowSketch(
        layout=layout,
        series_sums=loaded["series_sums"],
        series_sumsqs=loaded["series_sumsqs"],
        pair_sumprods=loaded["pair_sumprods"],
        pair_corrs=loaded["pair_corrs"],
    )
    sketch.attach_corr_prefix(loaded["corr_prefix"])
    return SharedSegment(path, manifest, values, sketch)


class SegmentManager:
    """Parent-side export bookkeeping for one dataset's segments.

    Owns a directory of ``gen-NNNNNN`` segment exports and the monotonically
    increasing generation counter.  :meth:`ensure` is idempotent per
    ``(fingerprint, layout)``: re-asking for a snapshot already on disk
    returns the existing export.  Several layouts stay live at once — query
    shapes with different ``start`` offsets produce different basic-window
    layouts, and evicting one layout's segment whenever another is asked for
    would re-export (an O(N·L) disk write under the runtime lock) on every
    alternation.  A changed *fingerprint* (append) supersedes the same
    layout's previous export; per layout the current export plus its most
    recent predecessor are kept, so a job dispatched just before an append's
    re-export can still attach the path it was handed.

    Not thread-safe: the owning :class:`~repro.service.service
    .DatasetRuntime` calls every method under its runtime lock.
    """

    #: Exports kept on disk per layout (current plus one predecessor).
    KEEP_GENERATIONS = 2

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.generation = 0
        self.exports = 0
        self._live: Dict[Tuple[str, int, int, int], Tuple[Path, int]] = {}

    @staticmethod
    def _key(fingerprint: str, layout: BasicWindowLayout) -> Tuple[str, int, int, int]:
        return (fingerprint, layout.offset, layout.size, layout.count)

    def ensure(
        self,
        store,
        sketch: BasicWindowSketch,
        fingerprint: str,
        series_ids,
    ) -> Tuple[Path, int]:
        """Return ``(path, generation)`` of the segment for this snapshot,
        exporting a new generation when fingerprint or layout is new."""
        key = self._key(fingerprint, sketch.layout)
        live = self._live.get(key)
        if live is not None:
            return live
        self.generation += 1
        path = self.root / f"gen-{self.generation:06d}"
        export_segment(
            path,
            store,
            sketch,
            fingerprint=fingerprint,
            generation=self.generation,
            series_ids=series_ids,
        )
        self.exports += 1
        self._live[key] = (path, self.generation)
        self._prune(sketch.layout)
        return path, self.generation

    def _prune(self, layout: BasicWindowLayout) -> None:
        """Drop this layout's exports beyond the newest ``KEEP_GENERATIONS``."""
        shape = (layout.offset, layout.size, layout.count)
        same_layout = sorted(
            (item for item in self._live.items() if item[0][1:] == shape),
            key=lambda item: item[1][1],
        )
        for key, (path, _) in same_layout[: -self.KEEP_GENERATIONS]:
            del self._live[key]
            shutil.rmtree(path, ignore_errors=True)

    def describe(self) -> Dict[str, object]:
        return {
            "generation": self.generation,
            "exports": self.exports,
            "live": len(self._live),
        }

    def close(self) -> None:
        """Remove every export this manager owns."""
        shutil.rmtree(self.root, ignore_errors=True)
        self._live.clear()
