"""Persistent index of precomputed basic-window statistics.

Dangoron and TSUBASA both rest on the idea that basic-window statistics are
computed once, stored, and reused by every subsequent query ("we can
pre-compute and store basic window statistics and calculate correlations for
arbitrary query windows and sizes").  :class:`StatsIndex` is that stored
artefact: it wraps a :class:`~repro.core.sketch.BasicWindowSketch`, knows how
to persist itself to disk, can be *extended incrementally* when new columns
arrive (the streaming path), and can materialize sketches restricted to a
query range without touching raw data.
"""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.config import DEFAULT_BASIC_WINDOW_SIZE, FLOAT_DTYPE
from repro.core.basic_window import BasicWindowLayout
from repro.core.sketch import BasicWindowSketch
from repro.exceptions import StorageError


class StatsIndex:
    """A persisted, extensible basic-window statistics index."""

    def __init__(self, sketch: BasicWindowSketch) -> None:
        if not sketch.has_pairwise:
            raise StorageError(
                "StatsIndex requires a pairwise sketch (built with pairwise=True)"
            )
        self._sketch = sketch

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        values: np.ndarray,
        basic_window_size: int = DEFAULT_BASIC_WINDOW_SIZE,
        offset: int = 0,
    ) -> "StatsIndex":
        """Build an index over all complete basic windows of ``values``."""
        values = np.asarray(values, dtype=FLOAT_DTYPE)
        if values.ndim != 2:
            raise StorageError(f"expected an (N, L) matrix, got shape {values.shape}")
        layout = BasicWindowLayout.for_range(
            offset, values.shape[1], basic_window_size
        )
        return cls(BasicWindowSketch.build(values, layout))

    # ------------------------------------------------------------------ access
    @property
    def sketch(self) -> BasicWindowSketch:
        """The wrapped sketch (shared, not copied)."""
        return self._sketch

    @property
    def layout(self) -> BasicWindowLayout:
        return self._sketch.layout

    @property
    def num_series(self) -> int:
        return self._sketch.num_series

    @property
    def covered_columns(self) -> int:
        """Number of raw columns covered by complete basic windows."""
        return self.layout.covered_end

    def memory_bytes(self) -> int:
        return self._sketch.memory_bytes()

    # -------------------------------------------------------------- extension
    def extend(self, new_columns: np.ndarray, previous_tail: Optional[np.ndarray] = None) -> int:
        """Extend the index with newly arrived columns.

        ``new_columns`` has shape ``(N, k)`` and is assumed to start exactly at
        :attr:`covered_columns` + the length of ``previous_tail`` (columns that
        arrived earlier but did not yet fill a complete basic window).  Only
        complete new basic windows are appended; leftover columns are the
        caller's responsibility to resubmit (the streaming layer keeps them).

        Returns the number of basic windows appended.
        """
        new_columns = np.asarray(new_columns, dtype=FLOAT_DTYPE)
        if previous_tail is not None and previous_tail.size:
            previous_tail = np.asarray(previous_tail, dtype=FLOAT_DTYPE)
            new_columns = np.concatenate([previous_tail, new_columns], axis=1)
        if new_columns.ndim != 2 or new_columns.shape[0] != self.num_series:
            raise StorageError(
                f"extension columns must have shape ({self.num_series}, k), "
                f"got {new_columns.shape}"
            )
        size = self.layout.size
        complete = new_columns.shape[1] // size
        if complete == 0:
            return 0
        usable = new_columns[:, : complete * size]
        extension_layout = BasicWindowLayout(offset=0, size=size, count=complete)
        extension = BasicWindowSketch.build(usable, extension_layout)

        merged_layout = BasicWindowLayout(
            offset=self.layout.offset,
            size=size,
            count=self.layout.count + complete,
        )
        self._sketch = BasicWindowSketch(
            layout=merged_layout,
            series_sums=np.concatenate(
                [self._sketch.series_sums, extension.series_sums], axis=1
            ),
            series_sumsqs=np.concatenate(
                [self._sketch.series_sumsqs, extension.series_sumsqs], axis=1
            ),
            pair_sumprods=np.concatenate(
                [self._sketch.pair_sumprods, extension.pair_sumprods], axis=0
            ),
            pair_corrs=np.concatenate(
                [self._sketch.pair_corrs, extension.pair_corrs], axis=0
            ),
            build_seconds=self._sketch.build_seconds + extension.build_seconds,
        )
        return complete

    # ------------------------------------------------------------ persistence
    def save(self, path: Union[str, Path]) -> Path:
        """Persist the index to a ``.npz`` file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            offset=np.array([self.layout.offset]),
            size=np.array([self.layout.size]),
            count=np.array([self.layout.count]),
            series_sums=self._sketch.series_sums,
            series_sumsqs=self._sketch.series_sumsqs,
            pair_sumprods=self._sketch.pair_sumprods,
            pair_corrs=self._sketch.pair_corrs,
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "StatsIndex":
        """Load an index previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise StorageError(f"stats index file not found: {path}")
        try:
            archive_ctx = np.load(path, allow_pickle=False)
        except (OSError, ValueError, zipfile.BadZipFile) as error:
            # np.load surfaces truncated/garbage archives as raw zipfile or
            # interpretation errors; name the file instead.
            raise StorageError(f"{path} is not a readable .npz archive") from error
        with archive_ctx as archive:
            try:
                layout = BasicWindowLayout(
                    offset=int(archive["offset"][0]),
                    size=int(archive["size"][0]),
                    count=int(archive["count"][0]),
                )
                sketch = BasicWindowSketch(
                    layout=layout,
                    series_sums=archive["series_sums"],
                    series_sumsqs=archive["series_sumsqs"],
                    pair_sumprods=archive["pair_sumprods"],
                    pair_corrs=archive["pair_corrs"],
                )
            except KeyError as error:
                raise StorageError(f"{path} is not a stats-index archive") from error
        return cls(sketch)

    def __repr__(self) -> str:
        return (
            f"StatsIndex(num_series={self.num_series}, "
            f"basic_windows={self.layout.count}, size={self.layout.size})"
        )
