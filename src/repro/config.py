"""Library-wide configuration constants and small helpers.

Keeping numeric tolerances and defaults in one module makes the behaviour of
the engines reproducible and easy to audit: every module that needs an epsilon
or a default basic-window size imports it from here instead of hard-coding a
literal.
"""

from __future__ import annotations

import numpy as np

#: Floating point dtype used for all internal numeric arrays.
FLOAT_DTYPE = np.float64

#: Integer dtype used for index arrays (window offsets, pair indices).
INDEX_DTYPE = np.int64

#: Absolute tolerance when comparing correlation values to each other or to a
#: threshold.  Pearson correlations live in [-1, 1], so 1e-9 is far below any
#: meaningful difference while still absorbing accumulation error from the
#: basic-window recombination formula.
CORRELATION_ATOL = 1e-9

#: Relative tolerance used by tests and validation helpers when comparing a
#: recombined correlation (Eq. 1) against a directly computed one.
CORRELATION_RTOL = 1e-7

#: Variance below which a basic window (or a whole window) is treated as
#: constant.  Correlation against a constant series is undefined; the engines
#: report 0 for such pairs, mirroring the "no edge" interpretation used by the
#: paper's network construction.
VARIANCE_EPSILON = 1e-12

#: Default basic-window size (number of time points per basic window) used by
#: the sketch when the caller does not specify one.
DEFAULT_BASIC_WINDOW_SIZE = 32

#: Default correlation threshold (the paper's beta) used by examples.
DEFAULT_THRESHOLD = 0.7

#: Default number of pivot series used by horizontal (triangle) pruning.
DEFAULT_NUM_PIVOTS = 4

#: Default seed used by examples and benchmarks so results are reproducible.
DEFAULT_SEED = 20230611

#: Minimum number of series pairs before the query planner considers sharded
#: parallel execution.  Below this the per-shard dispatch overhead exceeds the
#: O(n^2) pair work a worker would take off the critical path.
DEFAULT_PARALLEL_MIN_PAIRS = 4096

#: Default number of pair blocks created per worker by the sharded executor.
#: More blocks than workers smooths load imbalance from uneven pruning at the
#: cost of slightly more dispatch overhead.
DEFAULT_SHARDS_PER_WORKER = 2

#: Minimum number of pair-windows (candidate pairs times sliding windows)
#: before the sharded executor prefers processes over threads in ``auto``
#: mode; below it the process startup and data transfer cost dominates.
DEFAULT_PROCESS_MIN_PAIR_WINDOWS = 500_000


def clamp_correlation(value: float) -> float:
    """Clamp a correlation-like value into the valid interval ``[-1, 1]``.

    Recombination of floating point statistics can produce values such as
    ``1.0000000002``; clamping keeps downstream bound arithmetic well defined.
    """
    if value > 1.0:
        return 1.0
    if value < -1.0:
        return -1.0
    return float(value)


def clamp_correlation_array(values: np.ndarray) -> np.ndarray:
    """Vectorised version of :func:`clamp_correlation` (returns a new array)."""
    return np.clip(values, -1.0, 1.0)
