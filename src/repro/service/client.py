"""`ServiceClient`: the typed Python client of the correlation query service.

A thin stdlib (``urllib``) wrapper that speaks the wire schema of
:mod:`repro.service.wire` and hands back the same result objects an
in-process :class:`~repro.api.CorrelationSession` returns — so code written
against the unified result protocol (``describe``/``iter_windows``/
``to_edges``) runs unchanged whether its results were computed locally or by
a remote server, and tests can assert bit-identity between the two paths.

Failures surface as :class:`~repro.exceptions.ServiceError`: server-reported
errors keep the server's message and HTTP status; transport failures
(connection refused, timeouts) use status 503.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.query import SlidingQuery
from repro.exceptions import ServiceError
from repro.service.wire import AnyResult, query_to_wire, result_from_wire

QuerySpec = Union[SlidingQuery, Dict[str, object]]


class ServiceClient:
    """Client of one :class:`~repro.service.http.CorrelationServer`.

    Parameters
    ----------
    base_url:
        The server's root URL, e.g. ``"http://127.0.0.1:8350"`` (a trailing
        slash is tolerated).
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -------------------------------------------------------------- transport
    def _request(
        self, method: str, path: str, body: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            method=method,
            data=None if body is None else json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raise self._decode_error(error) from error
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {error.reason}", status=503
            ) from error

    @staticmethod
    def _decode_error(error: urllib.error.HTTPError) -> ServiceError:
        """Rehydrate the server's JSON error envelope (or fall back to HTTP text)."""
        try:
            document = json.loads(error.read().decode("utf-8"))
            detail = document["error"]
            message = f"{detail['type']}: {detail['message']}"
        except Exception:  # noqa: BLE001 — non-JSON error body
            message = f"HTTP {error.code}: {error.reason}"
        return ServiceError(message, status=error.code)

    # ------------------------------------------------------------- operations
    def health(self) -> Dict[str, object]:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def datasets(self) -> List[Dict[str, object]]:
        """``GET /datasets``: the catalog inventory."""
        return self._request("GET", "/datasets")

    def dataset(self, name: str) -> Dict[str, object]:
        """``GET /datasets/{name}``: one dataset plus runtime statistics."""
        return self._request("GET", f"/datasets/{name}")

    def query_raw(
        self,
        dataset: str,
        query: QuerySpec,
        workers: Optional[int] = None,
        include_edges: bool = False,
    ) -> Dict[str, object]:
        """``POST /datasets/{name}/query`` returning the raw wire document."""
        body = dict(query_to_wire(query) if isinstance(query, SlidingQuery) else query)
        if workers is not None:
            body["workers"] = workers
        if include_edges:
            body["include_edges"] = True
        return self._request("POST", f"/datasets/{dataset}/query", body)

    def query(
        self,
        dataset: str,
        query: QuerySpec,
        workers: Optional[int] = None,
    ) -> AnyResult:
        """Run one query and parse the response into the typed result object.

        Accepts either a query spec object (:class:`~repro.api.ThresholdQuery`
        etc.) or its wire document; returns a
        :class:`~repro.api.CorrelationSeriesResult`,
        :class:`~repro.api.TopKResult` or
        :class:`~repro.api.LaggedSeriesResult` exactly as a local session
        would.
        """
        return result_from_wire(self.query_raw(dataset, query, workers=workers))

    def append(self, dataset: str, columns) -> Dict[str, object]:
        """``POST /datasets/{name}/append`` with an ``(N, k)`` column block.

        ``columns`` uses the library's matrix orientation (rows are series,
        like :meth:`StreamIngestor.append <repro.streaming.stream
        .StreamIngestor.append>`); the client transposes it to the wire's
        one-list-per-time-step frame format.
        """
        block = np.asarray(columns, dtype=float)
        if block.ndim == 1:
            block = block.reshape(-1, 1)
        return self._request(
            "POST", f"/datasets/{dataset}/append", {"columns": block.T.tolist()}
        )

    def watch(self, dataset: str, query: QuerySpec) -> Dict[str, object]:
        """``POST /datasets/{name}/watch``: register a standing threshold query."""
        body = query_to_wire(query) if isinstance(query, SlidingQuery) else dict(query)
        return self._request("POST", f"/datasets/{dataset}/watch", body)

    def watch_results(self, dataset: str, watch_id: str) -> Dict[str, object]:
        """``GET /datasets/{name}/watch/{id}``: windows emitted so far."""
        return self._request("GET", f"/datasets/{dataset}/watch/{watch_id}")
