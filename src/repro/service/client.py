"""`ServiceClient`: the typed Python client of the correlation query service.

A thin stdlib (``urllib``) wrapper that speaks the wire schema of
:mod:`repro.service.wire` and hands back the same result objects an
in-process :class:`~repro.api.CorrelationSession` returns — so code written
against the unified result protocol (``describe``/``iter_windows``/
``to_edges``) runs unchanged whether its results were computed locally or by
a remote server, and tests can assert bit-identity between the two paths.

Failures surface as :class:`~repro.exceptions.ServiceError`: server-reported
errors keep the server's message and HTTP status (a shed 429's
``Retry-After`` hint lands on :attr:`ServiceError.retry_after`); transport
failures (connection refused, timeouts) use status 503.  A connection
*reset* — the one transport failure where the server plausibly just
restarted a worker or recycled the socket — is retried once before 503
surfaces; refusals and timeouts are never retried (a timed-out query may
still be running, and re-sending it doubles the load the timeout signaled).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from http.client import RemoteDisconnected
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.query import SlidingQuery
from repro.exceptions import ServiceError
from repro.service.wire import AnyResult, query_to_wire, result_from_wire

QuerySpec = Union[SlidingQuery, Dict[str, object]]


def _is_connection_reset(error: urllib.error.URLError) -> bool:
    """True when the failure means the peer dropped an accepted connection."""
    reason = getattr(error, "reason", error)
    return isinstance(reason, (ConnectionResetError, RemoteDisconnected))


class ServiceClient:
    """Client of one :class:`~repro.service.http.CorrelationServer`.

    Parameters
    ----------
    base_url:
        The server's root URL, e.g. ``"http://127.0.0.1:8350"`` (a trailing
        slash is tolerated).
    timeout:
        Per-request socket timeout in seconds (individual calls may override
        it with their ``timeout=`` keyword).
    retry_resets:
        How many times a request is re-sent after a connection reset
        (``ConnectionResetError`` / an empty response on an accepted
        connection).  Bounded and reset-only by design: the default ``1``
        covers a server recycling its keep-alive socket; refused
        connections and timeouts always surface immediately.
    """

    def __init__(
        self, base_url: str, timeout: float = 60.0, retry_resets: int = 1
    ) -> None:
        if retry_resets < 0:
            raise ServiceError(
                f"retry_resets must be a non-negative retry count, got {retry_resets}"
            )
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry_resets = retry_resets

    # -------------------------------------------------------------- transport
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        data = None if body is None else json.dumps(body).encode("utf-8")
        effective_timeout = self.timeout if timeout is None else timeout
        attempts = 1 + self.retry_resets
        for attempt in range(attempts):
            request = urllib.request.Request(
                f"{self.base_url}{path}",
                method=method,
                data=data,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=effective_timeout
                ) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as error:
                raise self._decode_error(error) from error
            except urllib.error.URLError as error:
                if _is_connection_reset(error) and attempt + 1 < attempts:
                    continue
                raise ServiceError(
                    f"cannot reach service at {self.base_url}: {error.reason}",
                    status=503,
                ) from error
            except ConnectionResetError as error:
                # urllib only wraps errors raised while *sending* the request
                # into URLError; a peer reset while reading the response
                # (``RemoteDisconnected`` included) surfaces raw.  Same
                # retry policy as the wrapped form.
                if attempt + 1 < attempts:
                    continue
                raise ServiceError(
                    f"cannot reach service at {self.base_url}: {error}",
                    status=503,
                ) from error
            except (TimeoutError, OSError) as error:
                # Response-read timeouts (and any other raw socket failure)
                # are terminal: the request may still be executing
                # server-side, so re-sending it is never safe.
                raise ServiceError(
                    f"cannot reach service at {self.base_url}: {error}",
                    status=503,
                ) from error

    @staticmethod
    def _decode_error(error: urllib.error.HTTPError) -> ServiceError:
        """Rehydrate the server's JSON error envelope (or fall back to HTTP text)."""
        try:
            document = json.loads(error.read().decode("utf-8"))
            detail = document["error"]
            message = f"{detail['type']}: {detail['message']}"
        except Exception:  # noqa: BLE001 — non-JSON error body
            message = f"HTTP {error.code}: {error.reason}"
        retry_after_header = error.headers.get("Retry-After") if error.headers else None
        retry_after = None
        if retry_after_header is not None:
            try:
                retry_after = float(retry_after_header)
            except ValueError:
                pass
        return ServiceError(message, status=error.code, retry_after=retry_after)

    # ------------------------------------------------------------- operations
    def health(self) -> Dict[str, object]:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        """``GET /metrics``: the service-wide observability document."""
        return self._request("GET", "/metrics")

    def datasets(self) -> List[Dict[str, object]]:
        """``GET /datasets``: the catalog inventory."""
        return self._request("GET", "/datasets")

    def dataset(self, name: str) -> Dict[str, object]:
        """``GET /datasets/{name}``: one dataset plus runtime statistics."""
        return self._request("GET", f"/datasets/{name}")

    def query_raw(
        self,
        dataset: str,
        query: QuerySpec,
        workers: Optional[int] = None,
        include_edges: bool = False,
        timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        """``POST /datasets/{name}/query`` returning the raw wire document."""
        body = dict(query_to_wire(query) if isinstance(query, SlidingQuery) else query)
        if workers is not None:
            body["workers"] = workers
        if include_edges:
            body["include_edges"] = True
        return self._request(
            "POST", f"/datasets/{dataset}/query", body, timeout=timeout
        )

    def query(
        self,
        dataset: str,
        query: QuerySpec,
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> AnyResult:
        """Run one query and parse the response into the typed result object.

        Accepts either a query spec object (:class:`~repro.api.ThresholdQuery`
        etc.) or its wire document; returns a
        :class:`~repro.api.CorrelationSeriesResult`,
        :class:`~repro.api.TopKResult` or
        :class:`~repro.api.LaggedSeriesResult` exactly as a local session
        would.
        """
        return result_from_wire(
            self.query_raw(dataset, query, workers=workers, timeout=timeout)
        )

    def append(self, dataset: str, columns) -> Dict[str, object]:
        """``POST /datasets/{name}/append`` with an ``(N, k)`` column block.

        ``columns`` uses the library's matrix orientation (rows are series,
        like :meth:`StreamIngestor.append <repro.streaming.stream
        .StreamIngestor.append>`); the client transposes it to the wire's
        one-list-per-time-step frame format.
        """
        block = np.asarray(columns, dtype=float)
        if block.ndim == 1:
            block = block.reshape(-1, 1)
        return self._request(
            "POST", f"/datasets/{dataset}/append", {"columns": block.T.tolist()}
        )

    def watch(self, dataset: str, query: QuerySpec) -> Dict[str, object]:
        """``POST /datasets/{name}/watch``: register a standing threshold query."""
        body = query_to_wire(query) if isinstance(query, SlidingQuery) else dict(query)
        return self._request("POST", f"/datasets/{dataset}/watch", body)

    def watch_results(self, dataset: str, watch_id: str) -> Dict[str, object]:
        """``GET /datasets/{name}/watch/{id}``: windows emitted so far."""
        return self._request("GET", f"/datasets/{dataset}/watch/{watch_id}")
