"""The service's multi-process worker pool over shared mmap segments.

One :class:`WorkerPool` holds N forked session workers.  Each worker is a
tiny loop on a pipe: it receives query jobs naming a dataset, a wire query
spec, and the ``(segment path, generation)`` of the dataset's current shared
segment; attaches the segment read-only (``np.load(mmap_mode="r")`` — the
kernel shares the file-backed pages across every worker, so the dominant
sketch arrays exist once in memory, not once per worker); seeds a private
:class:`~repro.storage.cache.SketchCache` with the attached sketch; and
executes the query through the ordinary
:class:`~repro.api.planner.QueryPlanner` path, returning the wire result
document plus the plan's ``cost_key`` and observed wall seconds so the
parent can feed its :class:`~repro.api.cost.FeedbackStore`.

Workers re-attach when a job names a generation newer than the one they
hold (the parent bumps the generation on every append), and the pool
replaces a worker that dies mid-request — the caller's job is retried once
on a fresh worker before surfacing a 503.

Fork is the only start method used for real process workers (the config —
engine options, cost model — is inherited, never pickled).  Environments
without working ``fork`` (or whose sandbox blocks process creation) degrade
to ``inline`` mode: the same attach-and-execute path runs in the calling
process, keeping the API and tests uniform while the throughput benchmarks
self-skip their scaling assertions.
"""

from __future__ import annotations

import multiprocessing
import queue
import signal
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.api.cost import CostModel
from repro.api.planner import QueryPlanner
from repro.api.session import CorrelationSession
from repro.exceptions import ReproError, ServiceError
from repro.service.batching import exact_scan_options
from repro.service.wire import query_from_wire, result_to_wire
from repro.storage.cache import SketchCache
from repro.storage.shared import SharedSegment, attach_segment
from repro.timeseries.matrix import TimeSeriesMatrix

MODE_PROCESS = "process"
MODE_INLINE = "inline"


def rss_anon_bytes() -> Optional[int]:
    """This process's anonymous-resident-set size in bytes (Linux only).

    ``RssAnon`` deliberately excludes file-backed pages: a worker scanning a
    shared mmap segment grows its ``VmRSS`` by the pages it touches, but
    those pages are shared with every sibling — only anonymous memory is a
    private, per-worker cost, which is what the service's memory assertion
    bounds.  Returns ``None`` where ``/proc`` is unavailable.
    """
    try:
        text = Path("/proc/self/status").read_text()
    except OSError:
        return None
    for line in text.splitlines():
        if line.startswith("RssAnon:"):
            return int(line.split()[1]) * 1024
    return None


@dataclass
class WorkerConfig:
    """The session configuration workers execute under (inherited via fork)."""

    engine: str = "dangoron"
    engine_options: Dict[str, object] = field(default_factory=dict)
    basic_window_size: int = 16
    memory_budget: Optional[int] = None
    cost_model: Optional[CostModel] = None


class _Attachment:
    """One worker's warm state for one attached segment generation."""

    def __init__(self, segment: SharedSegment, config: WorkerConfig) -> None:
        self.generation = segment.generation
        self.segment = segment
        self.config = config
        self.matrix = TimeSeriesMatrix(segment.values, series_ids=segment.series_ids)
        self.cache = SketchCache()
        # Adopt the manifest's fingerprint before seeding: the cache then
        # keys the attached sketch without re-hashing O(N·L) history the
        # parent already fingerprinted.
        self.cache.adopt_fingerprint(self.matrix, segment.fingerprint)
        self.cache.seed(self.matrix, segment.sketch)
        # Keyed (workers, exact_scan): batch-leader jobs run threshold-exact
        # scans (jumping heuristic off) so derived members stay bit-identical.
        self._sessions: Dict[tuple, CorrelationSession] = {}

    def session_for(
        self, workers: Optional[int], exact_scan: bool = False
    ) -> CorrelationSession:
        key = (workers, exact_scan)
        session = self._sessions.get(key)
        if session is None:
            options = (
                exact_scan_options(self.config.engine, self.config.engine_options)
                if exact_scan
                else self.config.engine_options
            )
            session = CorrelationSession(
                self.matrix,
                planner=QueryPlanner(
                    engine=self.config.engine,
                    engine_options=options,
                    basic_window_size=self.config.basic_window_size,
                    sketch_cache=self.cache,
                    workers=workers,
                    memory_budget=self.config.memory_budget,
                    cost_model=self.config.cost_model,
                ),
            )
            self._sessions[key] = session
        return session


class AttachmentCache:
    """``(dataset, generation)`` → warm :class:`_Attachment`, LRU-bounded.

    This is the worker-side half of the generation protocol: a job carries
    the generation the parent exported, and a worker without a warm
    attachment for that generation re-opens the named segment directory.
    Several generations stay warm at once — different query shapes export
    different basic-window layouts under distinct generations, and holding
    only the latest would re-attach (and rebuild warm sessions) on every
    alternation.  Least-recently-used attachments beyond :attr:`CAPACITY`
    are dropped; their memmaps close with them.
    """

    #: Warm attachments kept per worker (covers the distinct query layouts
    #: a workload alternates between; superseded generations age out).
    CAPACITY = 8

    def __init__(self, config: WorkerConfig) -> None:
        self.config = config
        self._attachments: "OrderedDict[tuple, _Attachment]" = OrderedDict()

    def attachment_for(
        self, dataset: str, segment_dir: str, generation: int
    ) -> _Attachment:
        key = (dataset, generation)
        attachment = self._attachments.get(key)
        if attachment is None:
            segment = attach_segment(segment_dir)
            if segment.generation != generation:
                raise ServiceError(
                    f"segment at {segment_dir} carries generation "
                    f"{segment.generation} but the job was dispatched for "
                    f"generation {generation}",
                    status=503,
                )
            attachment = _Attachment(segment, self.config)
            self._attachments[key] = attachment
        self._attachments.move_to_end(key)
        while len(self._attachments) > self.CAPACITY:
            self._attachments.popitem(last=False)
        return attachment


def _execute_query(
    attachments: AttachmentCache, message: Dict[str, object]
) -> Dict[str, object]:
    attachment = attachments.attachment_for(
        message["dataset"], message["segment_dir"], message["generation"]
    )
    query = query_from_wire(message["spec"])
    session = attachment.session_for(
        message.get("workers"), bool(message.get("exact_scan"))
    )
    plan = session.plan(query)
    started = time.perf_counter()
    result = session.planner.execute(attachment.matrix, plan)
    wall = time.perf_counter() - started
    return {
        "payload": {
            "plan": plan.describe(),
            **result_to_wire(result, include_edges=bool(message.get("include_edges"))),
        },
        "cost_key": plan.cost_key,
        "wall_seconds": wall,
        "generation": attachment.generation,
    }


def _worker_main(conn, config: WorkerConfig) -> None:
    """The forked worker loop: attach, execute, reply, until told to stop."""
    # The parent coordinates shutdown; a terminal Ctrl-C must not race it.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    attachments = AttachmentCache(config)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message.get("op")
        if op == "stop":
            break
        try:
            if op == "rss":
                reply = {"ok": True, "rss_anon_bytes": rss_anon_bytes()}
            elif op == "query":
                reply = {"ok": True, **_execute_query(attachments, message)}
            else:
                raise ServiceError(f"unknown worker op {op!r}")
        except BaseException as error:  # noqa: BLE001 — errors cross the pipe
            reply = {
                "ok": False,
                "error": type(error).__name__,
                "message": str(error),
                "status": getattr(error, "status", None),
                "repro": isinstance(error, ReproError),
            }
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class _WorkerHandle:
    """Parent-side end of one worker: the process and its pipe."""

    __slots__ = ("process", "conn", "spawn_rss")

    def __init__(self, process, conn, spawn_rss: Optional[int]) -> None:
        self.process = process
        self.conn = conn
        self.spawn_rss = spawn_rss


class WorkerPool:
    """N forked query workers behind a free-handle queue.

    ``run_query`` blocks until a worker is free (that wait *is* the
    admission queue's service order), sends the job, and returns the
    worker's reply.  A worker that dies mid-request is replaced and the job
    retried once on a fresh worker — the window a restarting deployment
    exposes to clients — before a 503 surfaces.
    """

    def __init__(
        self, size: int, config: WorkerConfig, mode: str = "auto"
    ) -> None:
        if size < 1:
            raise ServiceError(f"worker pool size must be at least 1, got {size}")
        if mode not in ("auto", MODE_PROCESS, MODE_INLINE):
            raise ServiceError(f"unknown worker pool mode {mode!r}")
        self.size = size
        self.config = config
        self._lock = threading.Lock()
        self.restarts = 0  # guarded-by: _lock
        self.dispatched = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._handles: List[_WorkerHandle] = []  # guarded-by: _lock
        self._free: "queue.Queue[_WorkerHandle]" = queue.Queue()
        self._inline_attachments = AttachmentCache(config)
        self._inline_lock = threading.Lock()
        self.mode = MODE_INLINE
        if mode != MODE_INLINE:
            try:
                self._start_processes()
                self.mode = MODE_PROCESS
            except (OSError, ValueError, EOFError):
                if mode == MODE_PROCESS:
                    raise
                # auto: sandboxes without fork/semaphores keep the same API
                # through the in-process path; benchmarks check .mode and
                # self-skip their scaling floors.
                self._teardown_processes()

    # ------------------------------------------------------------------ spawn
    @staticmethod
    def _context():
        return multiprocessing.get_context("fork")

    def _spawn(self) -> _WorkerHandle:
        ctx = self._context()
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main,
            args=(child_conn, self.config),
            name="repro-service-worker",
            daemon=True,
        )
        process.start()
        child_conn.close()
        # Handshake doubles as the spawn-time RSS baseline for the shared
        # memory assertion (RssAnon: anonymous pages only — see
        # :func:`rss_anon_bytes`).
        parent_conn.send({"op": "rss"})
        baseline = parent_conn.recv()
        return _WorkerHandle(process, parent_conn, baseline.get("rss_anon_bytes"))

    def _start_processes(self) -> None:
        for _ in range(self.size):
            handle = self._spawn()
            with self._lock:
                self._handles.append(handle)
            self._free.put(handle)

    def _teardown_processes(self) -> None:
        with self._lock:
            handles, self._handles = self._handles, []
        for handle in handles:
            try:
                handle.conn.send({"op": "stop"})
            except (BrokenPipeError, OSError):
                pass
            handle.conn.close()
            handle.process.join(timeout=5)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.terminate()
        while True:
            try:
                self._free.get_nowait()
            except queue.Empty:
                break

    def _replace(self, dead: _WorkerHandle) -> None:
        dead.conn.close()
        dead.process.join(timeout=5)
        replacement = self._spawn()
        with self._lock:
            self.restarts += 1
            try:
                self._handles.remove(dead)
            except ValueError:  # pragma: no cover - already torn down
                pass
            self._handles.append(replacement)
        self._free.put(replacement)

    # --------------------------------------------------------------- dispatch
    def run_query(
        self,
        dataset: str,
        spec: Dict[str, object],
        segment_dir: str,
        generation: int,
        workers: Optional[int] = None,
        include_edges: bool = False,
        exact_scan: bool = False,
    ) -> Dict[str, object]:
        """Execute one query on a free worker; returns the worker's reply.

        The reply carries ``payload`` (the wire result document including the
        plan string), ``cost_key``/``wall_seconds`` for the parent's feedback
        store, and the ``generation`` the worker ended up attached to.
        ``exact_scan`` jobs run under the threshold-exact session (see
        :meth:`_Attachment.session_for`) — batch leaders dispatch them so
        members derived from the floor scan stay bit-identical.
        """
        job = {
            "op": "query",
            "dataset": dataset,
            "spec": spec,
            "segment_dir": str(segment_dir),
            "generation": int(generation),
            "workers": workers,
            "include_edges": include_edges,
            "exact_scan": exact_scan,
        }
        with self._lock:
            self.dispatched += 1
        if self.mode == MODE_INLINE:
            # Execute in-process but surface errors exactly as a forked
            # worker would, so callers see one error contract per mode.
            with self._inline_lock:
                try:
                    reply = {"ok": True, **_execute_query(self._inline_attachments, job)}
                except ServiceError:
                    raise
                except Exception as error:  # noqa: BLE001 — mirrors the pipe
                    reply = {
                        "ok": False,
                        "error": type(error).__name__,
                        "message": str(error),
                        "status": getattr(error, "status", None),
                        "repro": isinstance(error, ReproError),
                    }
            return self._unwrap(dataset, reply)
        last_error: Optional[BaseException] = None
        for _ in range(2):  # the original dispatch plus one restart retry
            handle = self._free.get()
            try:
                handle.conn.send(job)
                reply = handle.conn.recv()
            except (BrokenPipeError, EOFError, OSError) as error:
                last_error = error
                self._replace(handle)
                continue
            self._free.put(handle)
            return self._unwrap(dataset, reply)
        raise ServiceError(
            f"worker died executing query on dataset {dataset!r} "
            f"(twice; last error: {last_error})",
            status=503,
        )

    @staticmethod
    def _unwrap(dataset: str, reply: Dict[str, object]) -> Dict[str, object]:
        if reply.get("ok"):
            return reply
        status = reply.get("status")
        if status is None:
            status = 400 if reply.get("repro") else 500
        raise ServiceError(
            f"{reply.get('error')}: {reply.get('message')}", status=int(status)
        )

    # ---------------------------------------------------------------- observe
    def worker_rss(self) -> List[Dict[str, Optional[int]]]:
        """Spawn-baseline and current ``RssAnon`` of every live worker.

        Acquires every free handle (so it waits out in-flight queries) and
        asks each worker for its current anonymous RSS.  Returns one
        ``{"spawn": ..., "now": ...}`` dict per worker; empty in inline mode.
        """
        if self.mode != MODE_PROCESS:
            return []
        held = [self._free.get() for _ in range(self.size)]
        samples = []
        try:
            for handle in held:
                handle.conn.send({"op": "rss"})
                reply = handle.conn.recv()
                samples.append(
                    {"spawn": handle.spawn_rss, "now": reply.get("rss_anon_bytes")}
                )
        finally:
            for handle in held:
                self._free.put(handle)
        return samples

    def describe(self) -> Dict[str, object]:
        with self._lock:
            return {
                "size": self.size,
                "mode": self.mode,
                "restarts": self.restarts,
                "dispatched": self.dispatched,
            }

    # ------------------------------------------------------------------ close
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self.mode == MODE_PROCESS:
            self._teardown_processes()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
