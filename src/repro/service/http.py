"""HTTP transport for the correlation query service (stdlib only).

A :class:`~http.server.ThreadingHTTPServer` fronting one
:class:`~repro.service.service.CorrelationService`.  The handler is a pure
JSON shim: it parses the path and body, calls the matching service method,
and writes the returned document — every piece of domain logic (sessions,
coalescing, standing queries) lives in the service layer so it is testable
without sockets.

Routes::

    GET  /healthz                          liveness + version + dataset count
    GET  /metrics                          service-wide observability document
    GET  /datasets                         catalog inventory
    GET  /datasets/{name}                  one dataset + runtime statistics
    POST /datasets/{name}/query            unified query spec -> result document
    POST /datasets/{name}/append           stream new time steps in
    POST /datasets/{name}/watch            register a standing threshold query
    GET  /datasets/{name}/watch/{id}       windows the standing query emitted

Error mapping: :class:`~repro.exceptions.ServiceError` carries its own
status (404 for unknown datasets/routes, 429 for shed load, 400 otherwise);
every other :class:`~repro.exceptions.ReproError` is a 400 (the request was
understood but invalid); anything else is a 500.  Error bodies are always
``{"error": {"type": ..., "message": ...}}``; a shed 429 additionally sends
a ``Retry-After`` header (the service's ``retry_after_seconds``).
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import ReproError, ServiceError
from repro.service.service import CorrelationService

#: Cap on accepted request bodies (a threshold sweep's append bursts are
#: far below this; the cap exists so a bad client cannot exhaust memory).
MAX_BODY_BYTES = 64 * 1024 * 1024

_ROUTES: List[Tuple[str, re.Pattern, str]] = [
    ("GET", re.compile(r"^/healthz$"), "health"),
    ("GET", re.compile(r"^/metrics$"), "metrics"),
    ("GET", re.compile(r"^/datasets$"), "datasets"),
    ("GET", re.compile(r"^/datasets/([^/]+)$"), "dataset_info"),
    ("POST", re.compile(r"^/datasets/([^/]+)/query$"), "query"),
    ("POST", re.compile(r"^/datasets/([^/]+)/append$"), "append"),
    ("POST", re.compile(r"^/datasets/([^/]+)/watch$"), "watch"),
    ("GET", re.compile(r"^/datasets/([^/]+)/watch/([^/]+)$"), "watch_results"),
]


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests to the server's :class:`CorrelationService`."""

    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    # --------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args) -> None:  # noqa: A002 (stdlib name)
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _write_json(self, status: int, document: Dict[str, object]) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in getattr(self, "_extra_headers", []):
            self.send_header(name, value)
        self._extra_headers = []
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _write_error(
        self,
        status: int,
        error_type: str,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        # An error may leave an unread request body on the (HTTP/1.1
        # keep-alive) socket — e.g. the 413 cap rejects before reading, a 405
        # hits a POST whose body was never consumed.  Leftover bytes would be
        # parsed as the next request line, desynchronizing the connection, so
        # every error response closes it.
        self.close_connection = True
        self._extra_headers = (
            [("Retry-After", f"{retry_after:g}")] if retry_after is not None else []
        )
        self._write_json(status, {"error": {"type": error_type, "message": message}})

    def _read_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length", 0))
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body of {length} bytes exceeds the {MAX_BODY_BYTES} byte cap",
                status=413,
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError("request body must be a JSON object")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(f"request body is not valid JSON: {error}") from error

    # ---------------------------------------------------------------- routing
    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0]
        service: CorrelationService = self.server.service
        for route_method, pattern, endpoint in _ROUTES:
            match = pattern.match(path)
            if not match:
                continue
            if route_method != method:
                self._write_error(405, "MethodNotAllowed",
                                  f"{method} is not supported on {path}")
                return
            try:
                handler: Callable = getattr(service, endpoint)
                if method == "POST":
                    document = handler(*match.groups(), self._read_body())
                else:
                    document = handler(*match.groups())
                self._write_json(200, document)
            except ServiceError as error:
                self._write_error(
                    error.status,
                    type(error).__name__,
                    str(error),
                    retry_after=error.retry_after,
                )
            except ReproError as error:
                self._write_error(400, type(error).__name__, str(error))
            except BrokenPipeError:  # client went away mid-response
                pass
            except Exception as error:  # noqa: BLE001 — last-resort mapping
                self._write_error(500, type(error).__name__, str(error))
            return
        self._write_error(404, "NotFound", f"no route for {method} {path}")

    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
        self._dispatch("POST")


class CorrelationServer:
    """The long-lived server: a threading HTTP front over one service.

    ``port=0`` (the default) binds an ephemeral port — read it back from
    :attr:`port`/:attr:`url` — which is what the docs doctest, the tests and
    the CI smoke job use to run an in-process server without port
    collisions.  Use :meth:`start`/:meth:`stop` for a background server (or
    the context-manager form), :meth:`serve_forever` for a foreground one
    (the ``repro serve`` CLI).
    """

    def __init__(
        self,
        service: CorrelationService,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), _ServiceHandler)
        self._httpd.daemon_threads = True
        self._httpd.service = service
        self._httpd.verbose = verbose
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ where
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ---------------------------------------------------------------- running
    def start(self) -> "CorrelationServer":
        """Serve in a daemon background thread; returns self for chaining."""
        if self._thread is not None:
            raise ServiceError("server is already running")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()
            self.service.close()

    def stop(self) -> None:
        """Shut the server down, release the socket and close the service's
        worker pool and segment exports (idempotent)."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=10)
            self._thread = None
        self._httpd.server_close()
        self.service.close()

    def __enter__(self) -> "CorrelationServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
