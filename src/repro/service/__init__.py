"""Correlation query service: a long-lived server over the dataset catalog.

The paper frames Dangoron as a data-management system — statistics are
precomputed, stored and reused by every subsequent query.  This package is
that deployment shape: a stdlib-only HTTP server that loads datasets from a
:class:`~repro.storage.catalog.Catalog`, keeps one warm
:class:`~repro.api.CorrelationSession` + sketch cache per dataset, coalesces
identical concurrent queries, lazily materializes persisted
:class:`~repro.storage.stats_index.StatsIndex` artefacts into the cache, and
feeds appended columns to standing threshold queries through the online
monitor.

Layers (each importable and testable on its own):

:mod:`repro.service.wire`
    The versioned JSON schema for query specs and the unified result
    protocol; ``result_from_wire(result_to_wire(r))`` is bit-identical.
:mod:`repro.service.batching`
    Compatible-query batching: one scan at ``min(threshold)``, each
    caller's answer filtered from it bit-identically.
:mod:`repro.service.workers`
    :class:`WorkerPool` — forked session workers executing scans over
    shared mmap segments (:mod:`repro.storage.shared`).
:mod:`repro.service.service`
    :class:`CorrelationService` — catalog lookup, warm sessions, admission
    control, batching/coalescing, appends and standing queries.  No sockets.
:mod:`repro.service.http`
    :class:`CorrelationServer` — the ``ThreadingHTTPServer`` front and the
    route table.
:mod:`repro.service.client`
    :class:`ServiceClient` — the typed client returning the same result
    objects a local session does.

See ``docs/service.md`` for the endpoint reference and a runnable
walkthrough; ``repro serve --catalog DIR`` starts a server from the CLI
(``--service-workers N`` turns on the multi-process pool).
"""

from repro.service.batching import (
    QueryBatch,
    batch_key_for,
    canonical_request_key,
    filter_threshold_result,
    is_batchable,
)
from repro.service.client import ServiceClient
from repro.service.http import CorrelationServer
from repro.service.service import CorrelationService, DatasetRuntime
from repro.service.wire import (
    RESULT_SCHEMA,
    query_from_wire,
    query_to_wire,
    result_from_wire,
    result_to_wire,
)
from repro.service.workers import WorkerConfig, WorkerPool, rss_anon_bytes

__all__ = [
    "CorrelationServer",
    "CorrelationService",
    "DatasetRuntime",
    "QueryBatch",
    "RESULT_SCHEMA",
    "ServiceClient",
    "WorkerConfig",
    "WorkerPool",
    "batch_key_for",
    "canonical_request_key",
    "filter_threshold_result",
    "is_batchable",
    "query_from_wire",
    "query_to_wire",
    "result_from_wire",
    "result_to_wire",
    "rss_anon_bytes",
]
