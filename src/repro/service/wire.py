"""JSON wire schema for the unified query spec family and result protocol.

The service speaks the same objects the library does — query specs in,
results implementing ``describe``/``iter_windows``/``to_edges`` out — so this
module is a *bijection*, not a lossy view: ``result_from_wire(result_to_wire(r))``
reconstructs a result that is bit-identical to ``r`` (JSON round-trips Python
floats exactly via their shortest repr), which is what lets a client assert
equality with an in-process :class:`~repro.api.CorrelationSession` run.

Wire documents are versioned under ``schema = "repro.result/v1"``.  Every
result document carries:

``kind``
    The discriminator (``"threshold"`` / ``"topk"`` / ``"lagged"``) — the
    ``kind`` attribute of the result classes.
``query``
    The query spec document (see :func:`query_to_wire`), discriminated by
    ``mode``.
``num_windows``, ``num_series``, ``describe``
    Redundant summaries so dashboards can render without decoding windows.
``windows``
    The per-window payloads: sparse ``rows``/``cols``/``values`` triples for
    threshold and top-k results, dense ``best_corr``/``best_lag`` matrices
    for lagged results.
``edges`` (optional)
    The flattened ``to_edges()`` records as ``[window, source, target,
    weight, lag]`` rows, included when serialized with ``include_edges=True``.

The exact field lists are documented with JSON examples in
``docs/service.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.api.queries import LaggedQuery, ThresholdQuery, TopKQuery
from repro.api.results import LaggedSeriesResult
from repro.core.lag import LagMatrices
from repro.core.query import SlidingQuery, THRESHOLD_SIGNED
from repro.core.result import CorrelationSeriesResult, Edge, EngineStats, ThresholdedMatrix
from repro.core.topk import TopKResult, TopKWindow
from repro.exceptions import ServiceError

#: Version tag stamped on (and required from) every result document.
RESULT_SCHEMA = "repro.result/v1"

_MODES = ("threshold", "topk", "lagged")

_COMMON_QUERY_FIELDS = ("mode", "start", "end", "window", "step", "threshold",
                        "threshold_mode")
_EXTRA_QUERY_FIELDS = {
    "threshold": (),
    "topk": ("k", "absolute"),
    "lagged": ("max_lag", "absolute"),
}


# ---------------------------------------------------------------------------
# Field coercion helpers
# ---------------------------------------------------------------------------

def _require(payload: Dict[str, object], field: str) -> object:
    if field not in payload:
        raise ServiceError(f"query spec is missing required field {field!r}")
    return payload[field]


def _as_int(payload: Dict[str, object], field: str, default: Optional[int] = None) -> int:
    value = payload.get(field, default) if default is not None else _require(payload, field)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(f"query field {field!r} must be an integer, got {value!r}")
    return value


def _as_float(payload: Dict[str, object], field: str, default: Optional[float] = None) -> float:
    if field in payload:
        value = payload[field]
    elif default is not None:
        value = default
    else:
        value = _require(payload, field)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServiceError(f"query field {field!r} must be a number, got {value!r}")
    return float(value)


# ---------------------------------------------------------------------------
# Query specs
# ---------------------------------------------------------------------------

def query_to_wire(query: SlidingQuery) -> Dict[str, object]:
    """Serialize any member of the query spec family to its wire document."""
    document: Dict[str, object] = {
        "mode": getattr(query, "mode", "threshold"),
        "start": query.start,
        "end": query.end,
        "window": query.window,
        "step": query.step,
        "threshold": query.threshold,
        "threshold_mode": query.threshold_mode,
    }
    if isinstance(query, TopKQuery):
        document["k"] = query.k
        document["absolute"] = query.absolute
    elif isinstance(query, LaggedQuery):
        document["max_lag"] = query.max_lag
        document["absolute"] = query.absolute
    return document


def query_from_wire(payload: Dict[str, object]) -> SlidingQuery:
    """Parse a wire document into the matching query spec object.

    Validation is two-layered: unknown fields and type errors raise
    :class:`ServiceError` here (they are *protocol* mistakes), while
    inconsistent query parameters raise the library's usual
    :class:`~repro.exceptions.QueryValidationError` from the spec
    constructors (they are *query* mistakes).  Both map to HTTP 400.
    """
    if not isinstance(payload, dict):
        raise ServiceError(f"query spec must be a JSON object, got {type(payload).__name__}")
    mode = payload.get("mode", "threshold")
    if mode not in _MODES:
        raise ServiceError(f"query mode must be one of {_MODES}, got {mode!r}")
    allowed = set(_COMMON_QUERY_FIELDS) | set(_EXTRA_QUERY_FIELDS[mode])
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ServiceError(
            f"unknown query field(s) {unknown} for mode {mode!r}; "
            f"allowed: {sorted(allowed)}"
        )
    common = dict(
        start=_as_int(payload, "start"),
        end=_as_int(payload, "end"),
        window=_as_int(payload, "window"),
        step=_as_int(payload, "step"),
        threshold_mode=str(payload.get("threshold_mode", THRESHOLD_SIGNED)),
    )
    absolute = payload.get("absolute", None)
    if absolute is not None and not isinstance(absolute, bool):
        raise ServiceError(f"query field 'absolute' must be a boolean or null, got {absolute!r}")
    if mode == "topk":
        return TopKQuery(
            threshold=_as_float(payload, "threshold", default=1.0),
            k=_as_int(payload, "k", default=10),
            absolute=absolute,
            **common,
        )
    if mode == "lagged":
        return LaggedQuery(
            threshold=_as_float(payload, "threshold", default=0.0),
            max_lag=_as_int(payload, "max_lag", default=1),
            absolute=absolute,
            **common,
        )
    return ThresholdQuery(threshold=_as_float(payload, "threshold"), **common)


# ---------------------------------------------------------------------------
# Engine statistics
# ---------------------------------------------------------------------------

_STATS_FIELDS = (
    "engine", "num_series", "num_windows", "exact_evaluations",
    "skipped_by_jumping", "pruned_horizontally", "candidate_pairs",
    "sketch_build_seconds", "query_seconds",
)


def stats_to_wire(stats: EngineStats) -> Dict[str, object]:
    document: Dict[str, object] = {f: getattr(stats, f) for f in _STATS_FIELDS}
    document["extra"] = dict(stats.extra)
    return document


def stats_from_wire(payload: Dict[str, object]) -> EngineStats:
    known = {f: payload[f] for f in _STATS_FIELDS if f in payload}
    return EngineStats(extra=dict(payload.get("extra", {})), **known)


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

def edges_to_wire(edges: Sequence[Edge]) -> List[List[object]]:
    """Flatten protocol edges to ``[window, source, target, weight, lag]`` rows."""
    return [[e.window, e.source, e.target, e.weight, e.lag] for e in edges]


def edges_from_wire(rows: Sequence[Sequence[object]]) -> List[Edge]:
    return [Edge(int(w), int(i), int(j), float(v), int(d)) for w, i, j, v, d in rows]


AnyResult = Union[CorrelationSeriesResult, TopKResult, LaggedSeriesResult]


def result_to_wire(result: AnyResult, include_edges: bool = False) -> Dict[str, object]:
    """Serialize any unified-protocol result to its versioned wire document."""
    kind = getattr(result, "kind", None)
    if kind == "threshold":
        windows = [
            {
                "index": k,
                "rows": edges.rows.tolist(),
                "cols": edges.cols.tolist(),
                "values": edges.values.tolist(),
            }
            for k, edges in result.iter_windows()
        ]
        extras: Dict[str, object] = {
            "num_series": result.num_series,
            "series_ids": list(result.series_ids) if result.series_ids else None,
            "stats": stats_to_wire(result.stats),
        }
    elif kind == "topk":
        windows = [
            {
                "index": window.window_index,
                "rows": window.rows.tolist(),
                "cols": window.cols.tolist(),
                "values": window.values.tolist(),
            }
            for window in result.windows
        ]
        extras = {"k": result.k, "absolute": result.absolute}
    elif kind == "lagged":
        windows = [
            {
                "index": window.window_index,
                "best_corr": window.best_corr.tolist(),
                "best_lag": window.best_lag.tolist(),
            }
            for window in result.windows
        ]
        extras = {"num_series": result.num_series}
    else:
        raise ServiceError(
            f"cannot serialize {type(result).__name__}: it declares no wire kind"
        )
    document: Dict[str, object] = {
        "schema": RESULT_SCHEMA,
        "kind": kind,
        "query": query_to_wire(result.query),
        "num_windows": result.num_windows,
        "describe": result.describe(),
        "windows": windows,
        **extras,
    }
    if include_edges:
        document["edges"] = edges_to_wire(result.to_edges())
    return document


def result_from_wire(payload: Dict[str, object]) -> AnyResult:
    """Reconstruct the typed result object from a wire document.

    The reconstruction is exact: arrays, query fields and engine statistics
    come back bit-identical, so ``describe()``/``to_edges()`` of the parsed
    result match the original's.
    """
    if not isinstance(payload, dict):
        raise ServiceError(f"result document must be a JSON object, got {type(payload).__name__}")
    schema = payload.get("schema")
    if schema != RESULT_SCHEMA:
        raise ServiceError(
            f"unsupported result schema {schema!r} (this client speaks {RESULT_SCHEMA!r})"
        )
    kind = payload.get("kind")
    try:
        query = query_from_wire(payload["query"])
        windows = payload["windows"]
        if kind == "threshold":
            num_series = int(payload["num_series"])
            matrices = [
                ThresholdedMatrix(
                    num_series,
                    np.asarray(w["rows"], dtype=np.int64),
                    np.asarray(w["cols"], dtype=np.int64),
                    np.asarray(w["values"], dtype=np.float64),
                )
                for w in windows
            ]
            series_ids = payload.get("series_ids")
            stats = stats_from_wire(payload.get("stats") or {})
            return CorrelationSeriesResult(query, matrices, stats=stats, series_ids=series_ids)
        if kind == "topk":
            topk_windows = [
                TopKWindow(
                    int(w["index"]),
                    np.asarray(w["rows"], dtype=np.int64),
                    np.asarray(w["cols"], dtype=np.int64),
                    np.asarray(w["values"], dtype=np.float64),
                )
                for w in windows
            ]
            return TopKResult(
                query=query,
                k=int(payload["k"]),
                absolute=bool(payload["absolute"]),
                windows=topk_windows,
            )
        if kind == "lagged":
            lag_windows = [
                LagMatrices(
                    window_index=int(w["index"]),
                    best_corr=np.asarray(w["best_corr"], dtype=np.float64),
                    best_lag=np.asarray(w["best_lag"], dtype=np.int64),
                )
                for w in windows
            ]
            return LaggedSeriesResult(query, lag_windows)
    except (KeyError, TypeError, ValueError) as error:
        raise ServiceError(f"malformed result document: {error}") from error
    raise ServiceError(f"unknown result kind {kind!r} (expected one of {_MODES})")
