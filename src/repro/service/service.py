"""The correlation query service: warm per-dataset sessions over a catalog.

This is the domain layer of ``repro.service`` — everything the HTTP handler
does is a thin JSON shim over :class:`CorrelationService`.  The paper frames
Dangoron as a data-management system whose precomputed statistics are shared
by every subsequent query; the service is that deployment shape:

* one :class:`~repro.storage.catalog.Catalog` names the datasets,
* each dataset gets a lazily-created :class:`DatasetRuntime` holding the raw
  :class:`~repro.storage.chunk_store.ChunkStore` in memory, one warm
  :class:`~repro.storage.cache.SketchCache`, and per-configuration
  :class:`~repro.api.CorrelationSession` objects that all share it,
* persisted :class:`~repro.storage.stats_index.StatsIndex` artefacts are
  *lazily materialized* into the cache: the first query that plans a layout
  matching an on-disk index seeds the cache from disk instead of paying the
  γ·N² build,
* identical concurrent queries are **coalesced**: the first request executes,
  the rest wait on it and share the same response document,
* *compatible* concurrent threshold queries — same dataset, same window
  grid, different thresholds — are **batched**: one threshold-exact scan
  runs at the lowest requested threshold and each caller's answer is
  filtered from it, bit-identically to an independent exact run of its own
  query (:mod:`repro.service.batching`),
* a bounded per-dataset **admission queue** sheds overload with a 429 +
  ``Retry-After`` envelope instead of collapsing, and
* appended columns feed each registered standing query's
  :class:`~repro.streaming.online.OnlineCorrelationMonitor`, so monitors see
  new windows as soon as their data completes.

With ``service_workers=N`` the scans themselves run in a
:class:`~repro.service.workers.WorkerPool` of forked processes over shared
mmap-backed sketch segments (:mod:`repro.storage.shared`): the parent plans,
seeds, exports and keeps the counters; workers attach the exported segment
read-only and execute, so N concurrent queries use N cores instead of
contending on one GIL.  Without a pool, execution is serialized per dataset
exactly as before (sessions and sketch caches are not thread-safe);
different datasets always run concurrently.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional

import numpy as np

from repro import __version__
from repro.api.cost import CostModel
from repro.api.queries import ThresholdQuery
from repro.api.session import CorrelationSession
from repro.api.planner import QueryPlanner
from repro.config import DEFAULT_BASIC_WINDOW_SIZE
from repro.core.sketch import BasicWindowSketch
from repro.exceptions import ServiceError, StorageError
from repro.service.batching import (
    QueryBatch,
    batch_key_for,
    canonical_request_key,
    exact_scan_options,
    filter_threshold_result,
    is_batchable,
)
from repro.service.wire import (
    query_from_wire,
    query_to_wire,
    result_from_wire,
    result_to_wire,
)
from repro.service.workers import WorkerConfig, WorkerPool
from repro.storage.cache import SketchCache
from repro.storage.catalog import Catalog
from repro.storage.shared import SegmentManager
from repro.streaming.online import OnlineCorrelationMonitor
from repro.timeseries.matrix import TimeSeriesMatrix

#: Request fields understood by :meth:`CorrelationService.query` beyond the
#: query spec itself.
_REQUEST_ONLY_FIELDS = ("workers", "include_edges")


class _Flight:
    """One in-flight query execution that identical requests can join."""

    __slots__ = ("event", "payload", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.payload: Optional[Dict[str, object]] = None
        self.error: Optional[BaseException] = None


#: Window documents a standing query retains for ``GET .../watch/{id}``.
#: Appends in a long-lived server are unbounded, so the history must not be:
#: older windows fall off the front (the append response already delivered
#: them); ``emitted_windows`` keeps counting the full total.
WATCH_HISTORY_LIMIT = 256


class _StandingQuery:
    """A registered threshold query kept current by the append path."""

    def __init__(self, watch_id: str, query: ThresholdQuery,
                 monitor: OnlineCorrelationMonitor) -> None:
        self.watch_id = watch_id
        self.query = query
        self.monitor = monitor
        self.windows: Deque[Dict[str, object]] = deque(maxlen=WATCH_HISTORY_LIMIT)
        self.emitted_windows = 0

    def feed(self, columns: np.ndarray) -> List[Dict[str, object]]:
        emitted = []
        for result in self.monitor.append(columns):
            window_edges = result.matrix
            document = {
                "index": result.window_index,
                "start": result.start,
                "end": result.end,
                "rows": window_edges.rows.tolist(),
                "cols": window_edges.cols.tolist(),
                "values": window_edges.values.tolist(),
            }
            self.windows.append(document)
            self.emitted_windows += 1
            emitted.append(document)
        return emitted

    def describe(self) -> Dict[str, object]:
        return {
            "id": self.watch_id,
            "query": query_to_wire(self.query),
            "emitted_windows": self.emitted_windows,
            "retained_windows": len(self.windows),
        }


class DatasetRuntime:
    """Warm in-memory state of one catalog dataset.

    Owns the chunk store, the shared sketch cache, the session-per-worker
    configuration map, the standing queries and the per-dataset counters.
    ``lock`` serializes execution and mutation; the service's coalescing map
    keeps most concurrent duplicates from ever contending on it.
    """

    def __init__(
        self,
        name: str,
        catalog: Catalog,
        engine: str,
        engine_options: Optional[Dict[str, object]],
        basic_window_size: int,
        workers: Optional[int],
        memory_budget: Optional[int] = None,
        write_buffer_columns: Optional[int] = None,
        write_buffer_seconds: Optional[float] = None,
        cost_model: Optional[CostModel] = None,
        segments: Optional[SegmentManager] = None,
    ) -> None:
        self.name = name
        self.catalog = catalog
        self.engine = engine
        self.engine_options = dict(engine_options or {})
        self.basic_window_size = basic_window_size
        self.default_workers = workers
        self.memory_budget = memory_budget
        self.cost_model = cost_model
        self.write_buffer_columns = write_buffer_columns
        self.write_buffer_seconds = write_buffer_seconds
        self.store = catalog.load_dataset(name)
        if self.store.length == 0:
            raise StorageError(f"dataset {name!r} contains no columns")
        self.lock = threading.RLock()
        # The coalescing map has its own short-hold lock so arriving
        # duplicates can join a flight without contending on ``lock``,
        # which the leader holds for the whole execution.
        self.flights_lock = threading.Lock()
        self.flights: Dict[str, _Flight] = {}  # guarded-by: flights_lock
        # Open threshold batches, keyed by compatibility key (the request
        # minus its threshold); same short-hold discipline as ``flights``.
        self.batches_lock = threading.Lock()
        self.batches: Dict[str, QueryBatch] = {}  # guarded-by: batches_lock
        # Admission accounting has its own lock so shedding decisions never
        # wait on ``lock`` — a full queue must answer 429 immediately even
        # while a leader holds the runtime lock for a long scan.
        self.admission_lock = threading.Lock()
        self.admitted = 0  # guarded-by: admission_lock
        self.shed = 0  # guarded-by: admission_lock
        # Parent-side segment exports for pooled execution (None when the
        # service runs without a worker pool); mutated only under ``lock``.
        self.segments = segments
        self.watches: Dict[str, _StandingQuery] = {}  # guarded-by: lock
        # ``queries`` counts answered requests; ``executed`` counts planner
        # scans.  ``coalesced`` (identical request joined a flight/slot) and
        # ``batched`` (distinct threshold derived from a shared scan) count
        # the requests answered *without* their own scan, so at any snapshot
        # queries >= coalesced + batched.
        self.counters: Dict[str, int] = {
            "queries": 0,
            "executed": 0,
            "coalesced": 0,
            "batched": 0,
            "appended_columns": 0,
            "indexes_seeded": 0,
            "flushes": 0,
        }  # guarded-by: lock
        self._watch_counter = 0  # guarded-by: lock
        self._write_buffer: List[np.ndarray] = []  # guarded-by: lock
        self._write_buffer_columns = 0  # guarded-by: lock
        self._write_buffer_started: Optional[float] = None  # guarded-by: lock
        self._matrix: Optional[TimeSeriesMatrix] = None  # guarded-by: lock
        # Keyed (workers, exact_scan) -- see ``session_for``.
        self._sessions: Dict[tuple, CorrelationSession] = {}  # guarded-by: lock
        # One cache for the dataset's whole lifetime: every session (whatever
        # its worker count) and every seeded on-disk index shares it.
        self.sketch_cache = SketchCache()
        self._seed_labels_tried: set = set()  # guarded-by: lock

    # ------------------------------------------------------------------ state
    @property
    def matrix(self) -> TimeSeriesMatrix:  # requires-lock: lock
        """The matrix view of the stored columns (rebuilt after appends).

        With a ``memory_budget`` configured this is a lazy
        :class:`~repro.core.tiled.ChunkBackedMatrix` over the resident
        chunk store, so budgeted sketch builds stream the chunks directly
        and the service never holds a *second*, dense copy of the data.
        (The chunk store itself stays resident — the append/watch paths
        write to it; fully out-of-core, read-only serving is the
        ``CorrelationSession.from_chunk_store`` deployment.)
        """
        if self._matrix is None:
            if self.memory_budget is not None:
                from repro.core.tiled import ChunkBackedMatrix

                self._matrix = ChunkBackedMatrix(self.store)
            else:
                self._matrix = self.store.to_matrix()
        return self._matrix

    def session_for(
        self, workers: Optional[int], exact_scan: bool = False
    ) -> CorrelationSession:  # requires-lock: lock
        """The warm session answering queries at this worker count.

        ``exact_scan`` sessions run with the threshold-dependent jumping
        heuristic disabled (:func:`~repro.service.batching
        .exact_scan_options`) — the configuration multi-threshold batch
        leaders scan under so every member's derived answer is exact.
        """
        workers = workers if workers is not None else self.default_workers
        key = (workers, exact_scan)
        session = self._sessions.get(key)
        if session is None:
            options = (
                exact_scan_options(self.engine, self.engine_options)
                if exact_scan
                else self.engine_options
            )
            session = CorrelationSession(
                self.matrix,
                planner=QueryPlanner(
                    engine=self.engine,
                    engine_options=options,
                    basic_window_size=self.basic_window_size,
                    sketch_cache=self.sketch_cache,
                    workers=workers,
                    memory_budget=self.memory_budget,
                    cost_model=self.cost_model,
                ),
            )
            self._sessions[key] = session
        return session

    def seed_sketch_for(self, plan) -> bool:  # requires-lock: lock
        """Materialize a persisted stats index matching a plan's layout.

        Checks the plan's basic-window layout against the dataset's on-disk
        :class:`~repro.storage.stats_index.StatsIndex` artefacts; the first
        match is loaded once, **validated against the live data**, and seeded
        into the shared cache, so the engine recombines from disk statistics
        instead of rebuilding them.  Validation recomputes the cheap O(N·L)
        per-series sums and requires bitwise agreement — a stale artefact
        (data file regenerated, index built from other data) must degrade to
        a normal build, never silently answer with foreign statistics.
        Index files are tried at most once per runtime (a corrupt artefact
        must not re-raise on every query).
        """
        if plan.layout is None or self.sketch_cache.contains(self.matrix, plan.layout):
            return False
        for label in self.catalog.index_labels(self.name):
            if label in self._seed_labels_tried:
                continue
            self._seed_labels_tried.add(label)
            try:
                index = self.catalog.load_index(self.name, label)
            except StorageError:
                continue
            if (
                index.layout == plan.layout
                and index.num_series == self.matrix.num_series
                and self._index_matches_data(index)
            ):
                self.sketch_cache.seed(self.matrix, index.sketch)
                self.counters["indexes_seeded"] += 1
                return True
        return False

    def _index_matches_data(self, index) -> bool:
        """Bitwise-check a persisted index's per-series sums against the data.

        The full pairwise statistics are what seeding avoids recomputing, but
        the per-series sums/sums-of-squares cost only O(N·L) and pin the
        index to this exact data: the sketch build is deterministic, so a
        genuine index agrees bit for bit and anything else is stale.  Under
        a memory budget the check builds tiled (bit-identical), so it never
        materializes the dense matrix either.
        """
        if self.memory_budget is not None:
            from repro.core.tiled import build_sketch_tiled

            expected = build_sketch_tiled(
                self.store, index.layout, self.memory_budget, pairwise=False
            )
        else:
            expected = BasicWindowSketch.build(
                self.matrix.values,  # repro-lint: disable=RPR002 -- no-budget runtimes are dense by construction; the tiled branch above handles budgeted ones
                index.layout,
                pairwise=False,
            )
        sketch = index.sketch
        return np.array_equal(
            expected.series_sums, sketch.series_sums
        ) and np.array_equal(expected.series_sumsqs, sketch.series_sumsqs)

    # ----------------------------------------------------------------- writes
    def append_columns(self, columns: np.ndarray) -> Dict[str, object]:  # requires-lock: lock
        """Append new time steps and feed every standing query's monitor.

        Before the store grows, the append advances the sketch cache's
        fingerprint *chain* (``SketchCache.extend_chain``): cached sketches
        move to the grown matrix's digest instead of being orphaned, and the
        appended columns join the chain's tail buffer, so the next query
        refreshes its sketch in O(Δ) (``sketch_build=incremental``) instead
        of rebuilding O(history) statistics.
        """
        fingerprint = self.sketch_cache.extend_chain(self.matrix, columns)
        self.store.append(columns)
        self.counters["appended_columns"] += columns.shape[1]
        # The matrix view and its sessions describe the old length; drop them
        # so the next query sees the appended columns, and memoize the
        # chained fingerprint onto the rebuilt view so that query never
        # re-hashes the history the chain already accounted for.
        self._matrix = None
        self._sessions.clear()
        self.sketch_cache.adopt_fingerprint(self.matrix, fingerprint)
        watches = [
            {"id": watch.watch_id, "windows": watch.feed(columns)}
            for watch in self.watches.values()
        ]
        return {
            "appended_columns": int(columns.shape[1]),
            "length": self.store.length,
            "watches": watches,
        }

    def ingest_columns(self, columns: np.ndarray) -> Dict[str, object]:  # requires-lock: lock
        """Accept appended time steps, batching them when a write buffer is on.

        With no write buffer configured this is :meth:`append_columns` write-
        through.  Otherwise the columns are buffered and only flushed into
        the chunk store (and the standing-query monitors, and the sketch
        chain) once the buffered column count or the buffer's age crosses its
        threshold — sustained ingestion then amortizes storage writes and
        sketch extension over whole batches.  The response always reports the
        *logical* length (stored plus buffered) and whether this call
        flushed; buffered appends return no watch windows (they are delivered
        by the flushing call).
        """
        if self.write_buffer_columns is None and self.write_buffer_seconds is None:
            return {**self.append_columns(columns), "buffered_columns": 0,
                    "flushed": True}
        self._write_buffer.append(columns)
        self._write_buffer_columns += int(columns.shape[1])
        if self._write_buffer_started is None:
            self._write_buffer_started = time.monotonic()
        if self._write_buffer_due():
            result = self.flush_writes()
            return {**result, "buffered_columns": 0, "flushed": True}
        self.sketch_cache.set_buffered_columns(self._write_buffer_columns)
        return {
            "appended_columns": int(columns.shape[1]),
            "length": self.store.length + self._write_buffer_columns,
            "watches": [],
            "buffered_columns": self._write_buffer_columns,
            "flushed": False,
        }

    def _write_buffer_due(self) -> bool:  # requires-lock: lock
        if (
            self.write_buffer_columns is not None
            and self._write_buffer_columns >= self.write_buffer_columns
        ):
            return True
        return (
            self.write_buffer_seconds is not None
            and self._write_buffer_started is not None
            and time.monotonic() - self._write_buffer_started
            >= self.write_buffer_seconds
        )

    def flush_writes(self) -> Dict[str, object]:  # requires-lock: lock
        """Write buffered appends through to the store and standing queries.

        Query and watch paths call this first, so reads always observe every
        accepted append (read-your-writes); the age threshold is also
        enforced here, lazily, instead of by a background timer.
        """
        if not self._write_buffer:
            return {
                "appended_columns": 0,
                "length": self.store.length,
                "watches": [],
            }
        if len(self._write_buffer) == 1:
            columns = self._write_buffer[0]
        else:
            columns = np.concatenate(self._write_buffer, axis=1)
        self._write_buffer = []
        self._write_buffer_columns = 0
        self._write_buffer_started = None
        self.sketch_cache.set_buffered_columns(0)
        result = self.append_columns(columns)
        self.counters["flushes"] += 1
        return result

    def register_watch(self, query: ThresholdQuery) -> _StandingQuery:  # requires-lock: lock
        """Register a standing threshold query, caught up on stored history."""
        monitor = OnlineCorrelationMonitor.for_query(
            query,
            num_series=self.store.num_series,
            basic_window_size=self.basic_window_size,
            series_ids=self.store.series_ids,
        )
        self._watch_counter += 1
        watch = _StandingQuery(f"w{self._watch_counter}", query, monitor)
        if self.store.length:
            watch.feed(self.store.read_all())
        self.watches[watch.watch_id] = watch
        return watch

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, object]:
        """A consistent snapshot of the runtime's counters and cache state.

        Taken under the runtime locks (admission first, then the main lock;
        they never nest the other way), so a reader hammering this endpoint
        during queries and appends observes every counter set atomically —
        no torn reads, and the ``queries >= coalesced + batched`` invariant
        holds at every snapshot.
        """
        with self.admission_lock:
            admission = {"queue_depth": self.admitted, "shed": self.shed}
        with self.lock:
            cache = self.sketch_cache
            document: Dict[str, object] = {
                **self.counters,
                "admission": admission,
                "sessions": len(self._sessions),
                "watches": len(self.watches),
                "sketch_cache": {
                    "hits": cache.stats.hits,
                    "misses": cache.stats.misses,
                    "builds": cache.builds,
                    "seeds": cache.seeds,
                    "entries": len(cache),
                    "extensions": cache.stats.sketch_extensions,
                    "extended_windows": cache.stats.extended_windows,
                    "buffered_columns": cache.stats.buffered_columns,
                },
                # What the planner has learned: observed wall-clock per plan
                # key, the feedback that outranks calibration once samples
                # accumulate.  Pooled scans report their worker-side wall
                # back into this same store.
                "plan_timings": cache.feedback.snapshot(),
            }
            if self.segments is not None:
                document["segments"] = self.segments.describe()
        return document


class CorrelationService:
    """Catalog-backed, multi-dataset correlation query service.

    Parameters
    ----------
    catalog:
        The dataset catalog to serve (a :class:`Catalog` or a directory path).
    engine, engine_options, basic_window_size, workers:
        Defaults applied to every dataset session; a query request may
        override ``workers`` per call (``"workers": N`` in the request body).
    memory_budget:
        Bytes a dataset's sketch build may hold resident at once; larger
        datasets stream through the tiled builder (bit-identical results,
        invisible to ``repro.result/v1`` clients).  ``None`` keeps every
        build dense.
    write_buffer_columns, write_buffer_seconds:
        Bounded write buffer for sustained append streams: accepted columns
        batch in memory and flush into the chunk store (and the standing
        query monitors, and the sketch fingerprint chain) once either the
        buffered column count or the buffer's age crosses its threshold.
        Query and watch reads flush first, so they always observe every
        accepted append.  Both ``None`` (the default) keeps appends
        write-through, exactly as before the buffer existed.
    service_workers:
        Size of the forked :class:`~repro.service.workers.WorkerPool`
        executing scans over shared mmap segments.  ``None`` (the default)
        keeps execution in-process under each dataset's runtime lock.
    admission_queue_limit:
        Maximum requests a single dataset may have in flight (queued plus
        executing).  Beyond it, :meth:`query` sheds with a 429
        :class:`ServiceError` carrying ``retry_after``.  ``None`` admits
        everything.
    retry_after_seconds:
        The ``Retry-After`` hint attached to shed responses.
    batch_window_seconds:
        Group-commit window for threshold batching: a batch leader waits
        this long (lock-free) before fixing the floor threshold and
        scanning, so a burst of compatible queries lands in one scan.  The
        default ``0.0`` adds no latency — batches then only accumulate
        while a leader queues behind other work, which is when batching
        pays anyway.
    segment_root:
        Directory for segment exports when a pool is configured; a private
        temporary directory (removed by :meth:`close`) when omitted.
    worker_pool_mode:
        ``"auto"`` forks real processes and falls back to inline execution
        where fork is unavailable; ``"process"``/``"inline"`` force a mode.
    """

    def __init__(
        self,
        catalog,
        engine: str = "dangoron",
        engine_options: Optional[Dict[str, object]] = None,
        basic_window_size: int = DEFAULT_BASIC_WINDOW_SIZE,
        workers: Optional[int] = None,
        memory_budget: Optional[int] = None,
        write_buffer_columns: Optional[int] = None,
        write_buffer_seconds: Optional[float] = None,
        cost_model: Optional[CostModel] = None,
        service_workers: Optional[int] = None,
        admission_queue_limit: Optional[int] = None,
        retry_after_seconds: float = 1.0,
        batch_window_seconds: float = 0.0,
        segment_root=None,
        worker_pool_mode: str = "auto",
    ) -> None:
        if write_buffer_columns is not None and write_buffer_columns < 1:
            raise ServiceError(
                f"write_buffer_columns must be a positive column count, "
                f"got {write_buffer_columns}"
            )
        if write_buffer_seconds is not None and write_buffer_seconds <= 0:
            raise ServiceError(
                f"write_buffer_seconds must be a positive age in seconds, "
                f"got {write_buffer_seconds}"
            )
        if service_workers is not None and service_workers < 1:
            raise ServiceError(
                f"service_workers must be a positive worker count, "
                f"got {service_workers}"
            )
        if admission_queue_limit is not None and admission_queue_limit < 1:
            raise ServiceError(
                f"admission_queue_limit must be a positive request count, "
                f"got {admission_queue_limit}"
            )
        if retry_after_seconds <= 0:
            raise ServiceError(
                f"retry_after_seconds must be positive, got {retry_after_seconds}"
            )
        if batch_window_seconds < 0:
            raise ServiceError(
                f"batch_window_seconds must be non-negative, got {batch_window_seconds}"
            )
        self.catalog = catalog if isinstance(catalog, Catalog) else Catalog(catalog)
        self.engine = engine
        self.engine_options = dict(engine_options or {})
        self.basic_window_size = basic_window_size
        self.workers = workers
        self.memory_budget = memory_budget
        self.write_buffer_columns = write_buffer_columns
        self.write_buffer_seconds = write_buffer_seconds
        self.cost_model = cost_model
        self.service_workers = service_workers
        self.admission_queue_limit = admission_queue_limit
        self.retry_after_seconds = float(retry_after_seconds)
        self.batch_window_seconds = float(batch_window_seconds)
        self._runtimes: Dict[str, DatasetRuntime] = {}  # guarded-by: _runtimes_lock
        self._runtimes_lock = threading.Lock()
        self._closed = False
        self._pool: Optional[WorkerPool] = None
        self._segment_root: Optional[Path] = None
        self._owns_segment_root = False
        if service_workers is not None:
            # The pool forks at construction time — before the HTTP server's
            # request threads exist — so the children never inherit a
            # mid-mutation lock.
            self._pool = WorkerPool(
                service_workers,
                WorkerConfig(
                    engine=engine,
                    engine_options=dict(engine_options or {}),
                    basic_window_size=basic_window_size,
                    memory_budget=memory_budget,
                    cost_model=cost_model,
                ),
                mode=worker_pool_mode,
            )
            if segment_root is not None:
                self._segment_root = Path(segment_root)
                self._segment_root.mkdir(parents=True, exist_ok=True)
            else:
                self._segment_root = Path(
                    tempfile.mkdtemp(prefix="repro-segments-")
                )
                self._owns_segment_root = True

    # ------------------------------------------------------------- operations
    def health(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "version": __version__,
            "engine": self.engine,
            "datasets": len(self.catalog.dataset_names()),
        }

    def datasets(self) -> List[Dict[str, object]]:
        """Catalog inventory; loaded datasets also report their shape."""
        documents = []
        for name in self.catalog.dataset_names():
            entry = self.catalog.describe(name)
            document: Dict[str, object] = {
                "name": name,
                "description": entry.description,
                "index_labels": sorted(entry.index_files),
                "loaded": name in self._runtimes,
            }
            runtime = self._runtimes.get(name)
            if runtime is not None:
                document["num_series"] = runtime.store.num_series
                document["length"] = runtime.store.length
            documents.append(document)
        return documents

    def dataset_info(self, name: str) -> Dict[str, object]:
        """One dataset's catalog entry plus live runtime statistics."""
        runtime = self._runtime(name)
        entry = self.catalog.describe(name)
        return {
            "name": name,
            "description": entry.description,
            "index_labels": sorted(entry.index_files),
            "num_series": runtime.store.num_series,
            "length": runtime.store.length,
            "series_ids": list(runtime.store.series_ids),
            "stats": runtime.stats(),
            "watches": [w.describe() for w in runtime.watches.values()],
        }

    def query(self, name: str, request: Dict[str, object]) -> Dict[str, object]:
        """Answer one query request through admission, batching and coalescing.

        The request document is the query spec (see
        :func:`~repro.service.wire.query_from_wire`) plus the optional
        transport fields ``workers`` (sharded execution override) and
        ``include_edges`` (inline the flattened edge list).

        Admission first: with an ``admission_queue_limit`` configured, a
        dataset already saturated sheds this request with a 429 carrying
        ``retry_after`` — the caller got a correct *refusal*, never a wrong
        answer.  Admitted threshold requests join the dataset's open
        compatible batch (one scan at the minimum threshold, every member's
        answer filtered from it bit-identically); exact duplicates inside a
        batch coalesce onto one member slot.  Everything else keeps the
        exact-match singleflight.
        """
        if not isinstance(request, dict):
            raise ServiceError(f"request body must be a JSON object, got {type(request).__name__}")
        runtime = self._runtime(name)
        self._admit(runtime)
        try:
            if is_batchable(request):
                return self._query_batched(runtime, request)
            return self._query_singleflight(runtime, request)
        finally:
            self._leave(runtime)

    # ----------------------------------------------------------- admission
    def _admit(self, runtime: DatasetRuntime) -> None:
        limit = self.admission_queue_limit
        with runtime.admission_lock:
            if limit is not None and runtime.admitted >= limit:
                runtime.shed += 1
                raise ServiceError(
                    f"dataset {runtime.name!r} admission queue is full "
                    f"({runtime.admitted} requests in flight, limit {limit})",
                    status=429,
                    retry_after=self.retry_after_seconds,
                )
            runtime.admitted += 1

    def _leave(self, runtime: DatasetRuntime) -> None:
        with runtime.admission_lock:
            runtime.admitted -= 1

    # --------------------------------------------------------- query paths
    def _query_singleflight(
        self, runtime: DatasetRuntime, request: Dict[str, object]
    ) -> Dict[str, object]:
        """Exact-identity coalescing for non-batchable requests."""
        key = canonical_request_key(request)
        # Join or create the flight under the dataset's own coalescing lock:
        # requests for *other* datasets never touch it, and the service-wide
        # ``_runtimes_lock`` stays reserved for the runtimes map itself.
        with runtime.flights_lock:
            flight = runtime.flights.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                runtime.flights[key] = flight
        if not leader:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            # Count the join only once the shared payload is known-good, and
            # under ``runtime.lock`` like every other counter mutation, so a
            # stats snapshot never sees a joined-but-unanswered request.
            with runtime.lock:
                runtime.counters["queries"] += 1
                runtime.counters["coalesced"] += 1
            return flight.payload
        try:
            flight.payload = self._execute(runtime, request)
            with runtime.lock:
                runtime.counters["queries"] += 1
            return flight.payload
        except BaseException as error:
            flight.error = error
            raise
        finally:
            with runtime.flights_lock:
                runtime.flights.pop(key, None)
            flight.event.set()

    def _query_batched(
        self, runtime: DatasetRuntime, request: Dict[str, object]
    ) -> Dict[str, object]:
        """Compatible-batch coalescing for threshold requests."""
        # Parse *before* joining: a malformed request must fail alone, never
        # poison a batch other callers are waiting on.
        workers, include_edges, query = self._parse_request(request)
        exact_key = canonical_request_key(request)
        batch_key = batch_key_for(request)
        with runtime.batches_lock:
            batch = runtime.batches.get(batch_key)
            if batch is not None and batch.closed and exact_key not in batch.members:
                # The open batch already chose its floor and is scanning; a
                # *new* threshold cannot ride that scan (it may undercut the
                # floor), so it starts a replacement batch.  Exact duplicates
                # of a scanning member still coalesce below — identical
                # requests share one execution for its whole duration.
                batch = None
            leader = batch is None
            if leader:
                batch = QueryBatch(batch_key)
                runtime.batches[batch_key] = batch
            member, created = batch.join(exact_key, request)
            member.query = query
        if not leader:
            batch.event.wait()
            if batch.error is not None:
                raise batch.error
            with runtime.lock:
                runtime.counters["queries"] += 1
                # A distinct threshold was *batched* (derived from the shared
                # scan); an exact duplicate merely *coalesced* onto a slot.
                runtime.counters["batched" if created else "coalesced"] += 1
            return member.payload
        try:
            if self.batch_window_seconds > 0.0:
                # Group-commit: wait lock-free so a burst of compatible
                # queries joins before the floor threshold is fixed.
                time.sleep(self.batch_window_seconds)
            self._execute_batch(runtime, batch, workers, include_edges)
            with runtime.lock:
                runtime.counters["queries"] += 1
            return member.payload
        except BaseException as error:
            batch.error = error
            raise
        finally:
            with runtime.batches_lock:
                if runtime.batches.get(batch_key) is batch:
                    del runtime.batches[batch_key]
                batch.closed = True
            batch.event.set()

    def append(self, name: str, request: Dict[str, object]) -> Dict[str, object]:
        """Append streamed time steps to a dataset.

        The request body is ``{"columns": [[...], ...]}`` where every inner
        list is **one time step across all series** (the frame shape a live
        feed produces).  Returns the new length plus, per standing query, the
        windows that completed because of this append.
        """
        if not isinstance(request, dict) or "columns" not in request:
            raise ServiceError('append body must be {"columns": [[...], ...]}')
        runtime = self._runtime(name)
        try:
            steps = np.asarray(request["columns"], dtype=float)
        except (TypeError, ValueError) as error:
            raise ServiceError(f"append columns must be numeric: {error}") from error
        if steps.ndim == 1:
            steps = steps.reshape(1, -1)
        if steps.ndim != 2 or steps.shape[1] != runtime.store.num_series:
            raise ServiceError(
                f"each appended time step must list {runtime.store.num_series} "
                f"values (one per series), got shape {steps.shape}"
            )
        with runtime.lock:
            result = runtime.ingest_columns(np.ascontiguousarray(steps.T))
        return {"dataset": name, **result}

    def watch(self, name: str, request: Dict[str, object]) -> Dict[str, object]:
        """Register a standing threshold query over the dataset's stream."""
        runtime = self._runtime(name)
        query = query_from_wire(request)
        with runtime.lock:
            runtime.flush_writes()
            watch = runtime.register_watch(query)
            return {"dataset": name, **watch.describe(), "windows": list(watch.windows)}

    def watch_results(self, name: str, watch_id: str) -> Dict[str, object]:
        """Every window a standing query has emitted so far."""
        runtime = self._runtime(name)
        with runtime.lock:
            runtime.flush_writes()
            watch = runtime.watches.get(watch_id)
            if watch is None:
                raise ServiceError(
                    f"dataset {name!r} has no standing query {watch_id!r}", status=404
                )
            return {"dataset": name, **watch.describe(), "windows": list(watch.windows)}

    # ------------------------------------------------------------------ internal
    def _runtime(self, name: str) -> DatasetRuntime:
        with self._runtimes_lock:
            runtime = self._runtimes.get(name)
            if runtime is not None:
                return runtime
        if name not in self.catalog.dataset_names():
            raise ServiceError(f"unknown dataset {name!r}", status=404)
        loaded = DatasetRuntime(
            name,
            self.catalog,
            engine=self.engine,
            engine_options=self.engine_options,
            basic_window_size=self.basic_window_size,
            workers=self.workers,
            memory_budget=self.memory_budget,
            write_buffer_columns=self.write_buffer_columns,
            write_buffer_seconds=self.write_buffer_seconds,
            cost_model=self.cost_model,
            segments=(
                SegmentManager(self._segment_root / name)
                if self._segment_root is not None
                else None
            ),
        )
        with self._runtimes_lock:
            # Two threads may have built the runtime concurrently; first wins
            # so every request shares one warm cache.
            return self._runtimes.setdefault(name, loaded)

    @staticmethod
    def _parse_request(request: Dict[str, object]):
        spec = {k: v for k, v in request.items() if k not in _REQUEST_ONLY_FIELDS}
        workers = request.get("workers")
        if workers is not None and (isinstance(workers, bool) or not isinstance(workers, int)):
            raise ServiceError(f"request field 'workers' must be an integer, got {workers!r}")
        include_edges = bool(request.get("include_edges", False))
        return workers, include_edges, query_from_wire(spec)

    def _segment_job(self, runtime: DatasetRuntime, session, plan):  # requires-lock: lock
        """Prepare pooled execution for a plan, or ``None`` to run inline.

        Materializes the plan's sketch in the parent (through the shared
        cache — seeded, incremental and tiled builds all land here once) and
        ensures the current snapshot is exported as a shared segment.  Plans
        without a basic-window layout fall back inline, as does a pool-less
        service.
        """
        if self._pool is None or runtime.segments is None or plan.layout is None:
            return None
        sketch = session.planner.materialize_sketch(session.matrix, plan)
        if sketch is None or not sketch.has_pairwise:
            return None
        fingerprint = runtime.sketch_cache.fingerprint_of(session.matrix)
        path, generation = runtime.segments.ensure(
            runtime.store, sketch, fingerprint, runtime.store.series_ids
        )
        return str(path), generation

    def _run_scan(self, runtime: DatasetRuntime, choose_query, workers, include_edges):
        """Plan and run one scan; returns ``(payload, result_or_None)``.

        ``choose_query`` is called under the runtime lock (after the write
        flush) and returns ``(query, exact_scan)`` — for a batch leader
        that is the moment the batch closes and its floor threshold is
        fixed, so joiners keep accumulating for as long as the leader
        queued on the lock; ``exact_scan`` is True for multi-threshold
        batches, whose scan must be threshold-exact to derive every
        member bit-identically.  Planning, seeding and segment export also happen under the
        lock; a pooled scan then executes *outside* it, which is the
        concurrency this PR buys — N compatible batches or distinct queries
        scan on N cores while the parent lock only covers the cheap
        bookkeeping.  The worker's observed wall feeds the planner's
        :class:`~repro.api.cost.FeedbackStore` exactly as an inline run
        would, so the adaptive planner keeps learning under pooled serving.
        """
        with runtime.lock:
            runtime.flush_writes()
            query, exact_scan = choose_query()
            session = runtime.session_for(workers, exact_scan)
            plan = session.plan(query)
            runtime.seed_sketch_for(plan)
            job = self._segment_job(runtime, session, plan)
            if job is None:
                # Execute the plan we just seeded for (not session.run, which
                # would re-plan): the seeded layout and the executed layout
                # can never diverge, and planning happens once per request.
                result = session.planner.execute(session.matrix, plan)
                runtime.counters["executed"] += 1
                payload = {
                    "dataset": runtime.name,
                    "plan": plan.describe(),
                    **result_to_wire(result, include_edges=include_edges),
                }
                return payload, result
        segment_dir, generation = job
        reply = self._pool.run_query(
            runtime.name,
            query_to_wire(query),
            segment_dir,
            generation,
            workers=workers,
            include_edges=include_edges,
            exact_scan=exact_scan,
        )
        with runtime.lock:
            runtime.counters["executed"] += 1
            cost_key = reply.get("cost_key")
            if cost_key:
                runtime.sketch_cache.feedback.record(
                    cost_key, float(reply["wall_seconds"])
                )
        return {"dataset": runtime.name, **reply["payload"]}, None

    def _execute(self, runtime: DatasetRuntime, request: Dict[str, object]) -> Dict[str, object]:
        workers, include_edges, query = self._parse_request(request)
        payload, _ = self._run_scan(
            runtime, lambda: (query, False), workers, include_edges
        )
        return payload

    def _execute_batch(
        self,
        runtime: DatasetRuntime,
        batch: QueryBatch,
        workers: Optional[int],
        include_edges: bool,
    ) -> None:
        """Run one scan at the batch's minimum threshold; fill every member.

        The batch *closes* only once the leader holds the runtime lock —
        new thresholds accumulate for as long as the leader queued behind
        other scans, which is exactly when batching pays.  New thresholds
        arriving after the close open a replacement batch instead of missing
        this scan; exact duplicates keep coalescing until it completes.
        Multi-threshold batches scan with the threshold-dependent jumping
        heuristic disabled (:func:`~repro.service.batching
        .exact_scan_options`) — its skip schedule varies with the scan
        threshold, so an exact scan is what makes the members derivable.
        Members' payloads are derived through
        :func:`filter_threshold_result` — a pure subset filter,
        bit-identical to an independent exact run of each member's query
        and independent of the batch's composition — and carry a ``batch``
        marker documenting the shared scan.  Single-threshold batches are
        pure coalescing and keep the normal plan.
        """
        state: Dict[str, object] = {}

        def close_and_choose_floor():
            # Runs under ``runtime.lock`` (see ``_run_scan``); the nested
            # batches_lock hold is the only lock -> batches_lock nesting in
            # the service and nothing nests them the other way around.  The
            # batch stays in the open map (closed) until the leader's
            # ``finally`` removes it, so exact duplicates keep coalescing
            # onto their scanning member for the execution's whole duration.
            with runtime.batches_lock:
                batch.closed = True
                members = list(batch.members.values())
            floor = min(members, key=lambda m: m.query.threshold)
            state["members"] = members
            state["floor"] = floor
            exact_scan = len({m.query.threshold for m in members}) > 1
            return floor.query, exact_scan

        floor_payload, result = self._run_scan(
            runtime, close_and_choose_floor, workers, include_edges
        )
        members = state["members"]
        floor = state["floor"]
        floor.payload = floor_payload
        others = [member for member in members if member is not floor]
        if not others:
            return
        if result is None:
            # Pooled scan: rebuild the result object from the wire document.
            # ``repro.result/v1`` round-trips bit-identically, so the derived
            # members are exactly what an inline scan would have produced.
            result = result_from_wire(floor_payload)
        for member in others:
            derived = filter_threshold_result(result, member.query)
            member.payload = {
                "dataset": runtime.name,
                "plan": floor_payload["plan"],
                "batch": {
                    "floor_threshold": float(floor.query.threshold),
                    "members": len(members),
                },
                **result_to_wire(derived, include_edges=include_edges),
            }

    # ------------------------------------------------------------------ metrics
    def metrics(self) -> Dict[str, object]:
        """Service-wide observability document (``GET /metrics``).

        Per-dataset counters (queries/executed/coalesced/batched), admission
        queue depths and shed counts, sketch-cache statistics, per-plan
        timings, segment generations, plus the worker pool's own accounting.
        """
        with self._runtimes_lock:
            runtimes = dict(self._runtimes)
        return {
            "service": {
                "version": __version__,
                "engine": self.engine,
                "service_workers": self.service_workers,
                "admission_queue_limit": self.admission_queue_limit,
                "retry_after_seconds": self.retry_after_seconds,
            },
            "worker_pool": self._pool.describe() if self._pool is not None else None,
            "datasets": {name: runtime.stats() for name, runtime in runtimes.items()},
        }

    def close(self) -> None:
        """Stop the worker pool and remove owned segment exports (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()
        with self._runtimes_lock:
            runtimes = list(self._runtimes.values())
        for runtime in runtimes:
            if runtime.segments is not None:
                runtime.segments.close()
        if self._owns_segment_root and self._segment_root is not None:
            shutil.rmtree(self._segment_root, ignore_errors=True)

    def __enter__(self) -> "CorrelationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
