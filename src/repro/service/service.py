"""The correlation query service: warm per-dataset sessions over a catalog.

This is the domain layer of ``repro.service`` — everything the HTTP handler
does is a thin JSON shim over :class:`CorrelationService`.  The paper frames
Dangoron as a data-management system whose precomputed statistics are shared
by every subsequent query; the service is that deployment shape:

* one :class:`~repro.storage.catalog.Catalog` names the datasets,
* each dataset gets a lazily-created :class:`DatasetRuntime` holding the raw
  :class:`~repro.storage.chunk_store.ChunkStore` in memory, one warm
  :class:`~repro.storage.cache.SketchCache`, and per-configuration
  :class:`~repro.api.CorrelationSession` objects that all share it,
* persisted :class:`~repro.storage.stats_index.StatsIndex` artefacts are
  *lazily materialized* into the cache: the first query that plans a layout
  matching an on-disk index seeds the cache from disk instead of paying the
  γ·N² build,
* identical concurrent queries are **coalesced**: the first request executes,
  the rest wait on it and share the same response document, and
* appended columns feed each registered standing query's
  :class:`~repro.streaming.online.OnlineCorrelationMonitor`, so monitors see
  new windows as soon as their data completes.

Execution is serialized per dataset (sessions and sketch caches are not
thread-safe); different datasets run concurrently.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

import numpy as np

from repro import __version__
from repro.api.cost import CostModel
from repro.api.queries import ThresholdQuery
from repro.api.session import CorrelationSession
from repro.api.planner import QueryPlanner
from repro.config import DEFAULT_BASIC_WINDOW_SIZE
from repro.core.sketch import BasicWindowSketch
from repro.exceptions import ServiceError, StorageError
from repro.service.wire import query_from_wire, query_to_wire, result_to_wire
from repro.storage.cache import SketchCache
from repro.storage.catalog import Catalog
from repro.streaming.online import OnlineCorrelationMonitor
from repro.timeseries.matrix import TimeSeriesMatrix

#: Request fields understood by :meth:`CorrelationService.query` beyond the
#: query spec itself.
_REQUEST_ONLY_FIELDS = ("workers", "include_edges")


class _Flight:
    """One in-flight query execution that identical requests can join."""

    __slots__ = ("event", "payload", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.payload: Optional[Dict[str, object]] = None
        self.error: Optional[BaseException] = None


#: Window documents a standing query retains for ``GET .../watch/{id}``.
#: Appends in a long-lived server are unbounded, so the history must not be:
#: older windows fall off the front (the append response already delivered
#: them); ``emitted_windows`` keeps counting the full total.
WATCH_HISTORY_LIMIT = 256


class _StandingQuery:
    """A registered threshold query kept current by the append path."""

    def __init__(self, watch_id: str, query: ThresholdQuery,
                 monitor: OnlineCorrelationMonitor) -> None:
        self.watch_id = watch_id
        self.query = query
        self.monitor = monitor
        self.windows: Deque[Dict[str, object]] = deque(maxlen=WATCH_HISTORY_LIMIT)
        self.emitted_windows = 0

    def feed(self, columns: np.ndarray) -> List[Dict[str, object]]:
        emitted = []
        for result in self.monitor.append(columns):
            window_edges = result.matrix
            document = {
                "index": result.window_index,
                "start": result.start,
                "end": result.end,
                "rows": window_edges.rows.tolist(),
                "cols": window_edges.cols.tolist(),
                "values": window_edges.values.tolist(),
            }
            self.windows.append(document)
            self.emitted_windows += 1
            emitted.append(document)
        return emitted

    def describe(self) -> Dict[str, object]:
        return {
            "id": self.watch_id,
            "query": query_to_wire(self.query),
            "emitted_windows": self.emitted_windows,
            "retained_windows": len(self.windows),
        }


class DatasetRuntime:
    """Warm in-memory state of one catalog dataset.

    Owns the chunk store, the shared sketch cache, the session-per-worker
    configuration map, the standing queries and the per-dataset counters.
    ``lock`` serializes execution and mutation; the service's coalescing map
    keeps most concurrent duplicates from ever contending on it.
    """

    def __init__(
        self,
        name: str,
        catalog: Catalog,
        engine: str,
        engine_options: Optional[Dict[str, object]],
        basic_window_size: int,
        workers: Optional[int],
        memory_budget: Optional[int] = None,
        write_buffer_columns: Optional[int] = None,
        write_buffer_seconds: Optional[float] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.name = name
        self.catalog = catalog
        self.engine = engine
        self.engine_options = dict(engine_options or {})
        self.basic_window_size = basic_window_size
        self.default_workers = workers
        self.memory_budget = memory_budget
        self.cost_model = cost_model
        self.write_buffer_columns = write_buffer_columns
        self.write_buffer_seconds = write_buffer_seconds
        self.store = catalog.load_dataset(name)
        if self.store.length == 0:
            raise StorageError(f"dataset {name!r} contains no columns")
        self.lock = threading.RLock()
        # The coalescing map has its own short-hold lock so arriving
        # duplicates can join a flight without contending on ``lock``,
        # which the leader holds for the whole execution.
        self.flights_lock = threading.Lock()
        self.flights: Dict[str, _Flight] = {}  # guarded-by: flights_lock
        self.watches: Dict[str, _StandingQuery] = {}  # guarded-by: lock
        self.counters: Dict[str, int] = {
            "queries": 0,
            "coalesced": 0,
            "appended_columns": 0,
            "indexes_seeded": 0,
            "flushes": 0,
        }  # guarded-by: lock
        self._watch_counter = 0  # guarded-by: lock
        self._write_buffer: List[np.ndarray] = []  # guarded-by: lock
        self._write_buffer_columns = 0  # guarded-by: lock
        self._write_buffer_started: Optional[float] = None  # guarded-by: lock
        self._matrix: Optional[TimeSeriesMatrix] = None  # guarded-by: lock
        self._sessions: Dict[Optional[int], CorrelationSession] = {}  # guarded-by: lock
        # One cache for the dataset's whole lifetime: every session (whatever
        # its worker count) and every seeded on-disk index shares it.
        self.sketch_cache = SketchCache()
        self._seed_labels_tried: set = set()  # guarded-by: lock

    # ------------------------------------------------------------------ state
    @property
    def matrix(self) -> TimeSeriesMatrix:  # requires-lock: lock
        """The matrix view of the stored columns (rebuilt after appends).

        With a ``memory_budget`` configured this is a lazy
        :class:`~repro.core.tiled.ChunkBackedMatrix` over the resident
        chunk store, so budgeted sketch builds stream the chunks directly
        and the service never holds a *second*, dense copy of the data.
        (The chunk store itself stays resident — the append/watch paths
        write to it; fully out-of-core, read-only serving is the
        ``CorrelationSession.from_chunk_store`` deployment.)
        """
        if self._matrix is None:
            if self.memory_budget is not None:
                from repro.core.tiled import ChunkBackedMatrix

                self._matrix = ChunkBackedMatrix(self.store)
            else:
                self._matrix = self.store.to_matrix()
        return self._matrix

    def session_for(self, workers: Optional[int]) -> CorrelationSession:  # requires-lock: lock
        """The warm session answering queries at this worker count."""
        workers = workers if workers is not None else self.default_workers
        session = self._sessions.get(workers)
        if session is None:
            session = CorrelationSession(
                self.matrix,
                planner=QueryPlanner(
                    engine=self.engine,
                    engine_options=self.engine_options,
                    basic_window_size=self.basic_window_size,
                    sketch_cache=self.sketch_cache,
                    workers=workers,
                    memory_budget=self.memory_budget,
                    cost_model=self.cost_model,
                ),
            )
            self._sessions[workers] = session
        return session

    def seed_sketch_for(self, plan) -> bool:  # requires-lock: lock
        """Materialize a persisted stats index matching a plan's layout.

        Checks the plan's basic-window layout against the dataset's on-disk
        :class:`~repro.storage.stats_index.StatsIndex` artefacts; the first
        match is loaded once, **validated against the live data**, and seeded
        into the shared cache, so the engine recombines from disk statistics
        instead of rebuilding them.  Validation recomputes the cheap O(N·L)
        per-series sums and requires bitwise agreement — a stale artefact
        (data file regenerated, index built from other data) must degrade to
        a normal build, never silently answer with foreign statistics.
        Index files are tried at most once per runtime (a corrupt artefact
        must not re-raise on every query).
        """
        if plan.layout is None or self.sketch_cache.contains(self.matrix, plan.layout):
            return False
        for label in self.catalog.index_labels(self.name):
            if label in self._seed_labels_tried:
                continue
            self._seed_labels_tried.add(label)
            try:
                index = self.catalog.load_index(self.name, label)
            except StorageError:
                continue
            if (
                index.layout == plan.layout
                and index.num_series == self.matrix.num_series
                and self._index_matches_data(index)
            ):
                self.sketch_cache.seed(self.matrix, index.sketch)
                self.counters["indexes_seeded"] += 1
                return True
        return False

    def _index_matches_data(self, index) -> bool:
        """Bitwise-check a persisted index's per-series sums against the data.

        The full pairwise statistics are what seeding avoids recomputing, but
        the per-series sums/sums-of-squares cost only O(N·L) and pin the
        index to this exact data: the sketch build is deterministic, so a
        genuine index agrees bit for bit and anything else is stale.  Under
        a memory budget the check builds tiled (bit-identical), so it never
        materializes the dense matrix either.
        """
        if self.memory_budget is not None:
            from repro.core.tiled import build_sketch_tiled

            expected = build_sketch_tiled(
                self.store, index.layout, self.memory_budget, pairwise=False
            )
        else:
            expected = BasicWindowSketch.build(
                self.matrix.values,  # repro-lint: disable=RPR002 -- no-budget runtimes are dense by construction; the tiled branch above handles budgeted ones
                index.layout,
                pairwise=False,
            )
        sketch = index.sketch
        return np.array_equal(
            expected.series_sums, sketch.series_sums
        ) and np.array_equal(expected.series_sumsqs, sketch.series_sumsqs)

    # ----------------------------------------------------------------- writes
    def append_columns(self, columns: np.ndarray) -> Dict[str, object]:  # requires-lock: lock
        """Append new time steps and feed every standing query's monitor.

        Before the store grows, the append advances the sketch cache's
        fingerprint *chain* (``SketchCache.extend_chain``): cached sketches
        move to the grown matrix's digest instead of being orphaned, and the
        appended columns join the chain's tail buffer, so the next query
        refreshes its sketch in O(Δ) (``sketch_build=incremental``) instead
        of rebuilding O(history) statistics.
        """
        fingerprint = self.sketch_cache.extend_chain(self.matrix, columns)
        self.store.append(columns)
        self.counters["appended_columns"] += columns.shape[1]
        # The matrix view and its sessions describe the old length; drop them
        # so the next query sees the appended columns, and memoize the
        # chained fingerprint onto the rebuilt view so that query never
        # re-hashes the history the chain already accounted for.
        self._matrix = None
        self._sessions.clear()
        self.sketch_cache.adopt_fingerprint(self.matrix, fingerprint)
        watches = [
            {"id": watch.watch_id, "windows": watch.feed(columns)}
            for watch in self.watches.values()
        ]
        return {
            "appended_columns": int(columns.shape[1]),
            "length": self.store.length,
            "watches": watches,
        }

    def ingest_columns(self, columns: np.ndarray) -> Dict[str, object]:  # requires-lock: lock
        """Accept appended time steps, batching them when a write buffer is on.

        With no write buffer configured this is :meth:`append_columns` write-
        through.  Otherwise the columns are buffered and only flushed into
        the chunk store (and the standing-query monitors, and the sketch
        chain) once the buffered column count or the buffer's age crosses its
        threshold — sustained ingestion then amortizes storage writes and
        sketch extension over whole batches.  The response always reports the
        *logical* length (stored plus buffered) and whether this call
        flushed; buffered appends return no watch windows (they are delivered
        by the flushing call).
        """
        if self.write_buffer_columns is None and self.write_buffer_seconds is None:
            return {**self.append_columns(columns), "buffered_columns": 0,
                    "flushed": True}
        self._write_buffer.append(columns)
        self._write_buffer_columns += int(columns.shape[1])
        if self._write_buffer_started is None:
            self._write_buffer_started = time.monotonic()
        if self._write_buffer_due():
            result = self.flush_writes()
            return {**result, "buffered_columns": 0, "flushed": True}
        self.sketch_cache.set_buffered_columns(self._write_buffer_columns)
        return {
            "appended_columns": int(columns.shape[1]),
            "length": self.store.length + self._write_buffer_columns,
            "watches": [],
            "buffered_columns": self._write_buffer_columns,
            "flushed": False,
        }

    def _write_buffer_due(self) -> bool:  # requires-lock: lock
        if (
            self.write_buffer_columns is not None
            and self._write_buffer_columns >= self.write_buffer_columns
        ):
            return True
        return (
            self.write_buffer_seconds is not None
            and self._write_buffer_started is not None
            and time.monotonic() - self._write_buffer_started
            >= self.write_buffer_seconds
        )

    def flush_writes(self) -> Dict[str, object]:  # requires-lock: lock
        """Write buffered appends through to the store and standing queries.

        Query and watch paths call this first, so reads always observe every
        accepted append (read-your-writes); the age threshold is also
        enforced here, lazily, instead of by a background timer.
        """
        if not self._write_buffer:
            return {
                "appended_columns": 0,
                "length": self.store.length,
                "watches": [],
            }
        if len(self._write_buffer) == 1:
            columns = self._write_buffer[0]
        else:
            columns = np.concatenate(self._write_buffer, axis=1)
        self._write_buffer = []
        self._write_buffer_columns = 0
        self._write_buffer_started = None
        self.sketch_cache.set_buffered_columns(0)
        result = self.append_columns(columns)
        self.counters["flushes"] += 1
        return result

    def register_watch(self, query: ThresholdQuery) -> _StandingQuery:  # requires-lock: lock
        """Register a standing threshold query, caught up on stored history."""
        monitor = OnlineCorrelationMonitor.for_query(
            query,
            num_series=self.store.num_series,
            basic_window_size=self.basic_window_size,
            series_ids=self.store.series_ids,
        )
        self._watch_counter += 1
        watch = _StandingQuery(f"w{self._watch_counter}", query, monitor)
        if self.store.length:
            watch.feed(self.store.read_all())
        self.watches[watch.watch_id] = watch
        return watch

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, object]:
        cache = self.sketch_cache
        return {
            **self.counters,
            "sessions": len(self._sessions),
            "watches": len(self.watches),
            "sketch_cache": {
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "builds": cache.builds,
                "seeds": cache.seeds,
                "entries": len(cache),
                "extensions": cache.stats.sketch_extensions,
                "extended_windows": cache.stats.extended_windows,
                "buffered_columns": cache.stats.buffered_columns,
            },
            # What the planner has learned: observed wall-clock per plan key,
            # the feedback that outranks calibration once samples accumulate.
            "plan_timings": cache.feedback.snapshot(),
        }


class CorrelationService:
    """Catalog-backed, multi-dataset correlation query service.

    Parameters
    ----------
    catalog:
        The dataset catalog to serve (a :class:`Catalog` or a directory path).
    engine, engine_options, basic_window_size, workers:
        Defaults applied to every dataset session; a query request may
        override ``workers`` per call (``"workers": N`` in the request body).
    memory_budget:
        Bytes a dataset's sketch build may hold resident at once; larger
        datasets stream through the tiled builder (bit-identical results,
        invisible to ``repro.result/v1`` clients).  ``None`` keeps every
        build dense.
    write_buffer_columns, write_buffer_seconds:
        Bounded write buffer for sustained append streams: accepted columns
        batch in memory and flush into the chunk store (and the standing
        query monitors, and the sketch fingerprint chain) once either the
        buffered column count or the buffer's age crosses its threshold.
        Query and watch reads flush first, so they always observe every
        accepted append.  Both ``None`` (the default) keeps appends
        write-through, exactly as before the buffer existed.
    """

    def __init__(
        self,
        catalog,
        engine: str = "dangoron",
        engine_options: Optional[Dict[str, object]] = None,
        basic_window_size: int = DEFAULT_BASIC_WINDOW_SIZE,
        workers: Optional[int] = None,
        memory_budget: Optional[int] = None,
        write_buffer_columns: Optional[int] = None,
        write_buffer_seconds: Optional[float] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if write_buffer_columns is not None and write_buffer_columns < 1:
            raise ServiceError(
                f"write_buffer_columns must be a positive column count, "
                f"got {write_buffer_columns}"
            )
        if write_buffer_seconds is not None and write_buffer_seconds <= 0:
            raise ServiceError(
                f"write_buffer_seconds must be a positive age in seconds, "
                f"got {write_buffer_seconds}"
            )
        self.catalog = catalog if isinstance(catalog, Catalog) else Catalog(catalog)
        self.engine = engine
        self.engine_options = dict(engine_options or {})
        self.basic_window_size = basic_window_size
        self.workers = workers
        self.memory_budget = memory_budget
        self.write_buffer_columns = write_buffer_columns
        self.write_buffer_seconds = write_buffer_seconds
        self.cost_model = cost_model
        self._runtimes: Dict[str, DatasetRuntime] = {}  # guarded-by: _runtimes_lock
        self._runtimes_lock = threading.Lock()

    # ------------------------------------------------------------- operations
    def health(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "version": __version__,
            "engine": self.engine,
            "datasets": len(self.catalog.dataset_names()),
        }

    def datasets(self) -> List[Dict[str, object]]:
        """Catalog inventory; loaded datasets also report their shape."""
        documents = []
        for name in self.catalog.dataset_names():
            entry = self.catalog.describe(name)
            document: Dict[str, object] = {
                "name": name,
                "description": entry.description,
                "index_labels": sorted(entry.index_files),
                "loaded": name in self._runtimes,
            }
            runtime = self._runtimes.get(name)
            if runtime is not None:
                document["num_series"] = runtime.store.num_series
                document["length"] = runtime.store.length
            documents.append(document)
        return documents

    def dataset_info(self, name: str) -> Dict[str, object]:
        """One dataset's catalog entry plus live runtime statistics."""
        runtime = self._runtime(name)
        entry = self.catalog.describe(name)
        return {
            "name": name,
            "description": entry.description,
            "index_labels": sorted(entry.index_files),
            "num_series": runtime.store.num_series,
            "length": runtime.store.length,
            "series_ids": list(runtime.store.series_ids),
            "stats": runtime.stats(),
            "watches": [w.describe() for w in runtime.watches.values()],
        }

    def query(self, name: str, request: Dict[str, object]) -> Dict[str, object]:
        """Answer one query request, coalescing identical concurrent ones.

        The request document is the query spec (see
        :func:`~repro.service.wire.query_from_wire`) plus the optional
        transport fields ``workers`` (sharded execution override) and
        ``include_edges`` (inline the flattened edge list).  Identical
        concurrent requests — same dataset, same canonical JSON — share one
        planner execution: the first becomes the leader, the rest block on its
        flight and return the same response object.
        """
        if not isinstance(request, dict):
            raise ServiceError(f"request body must be a JSON object, got {type(request).__name__}")
        runtime = self._runtime(name)
        key = json.dumps(request, sort_keys=True, separators=(",", ":"))
        # Join or create the flight under the dataset's own coalescing lock:
        # requests for *other* datasets never touch it, and the service-wide
        # ``_runtimes_lock`` stays reserved for the runtimes map itself.
        with runtime.flights_lock:
            flight = runtime.flights.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                runtime.flights[key] = flight
        if not leader:
            # Count the join under ``runtime.lock`` like every other counter
            # mutation (previously this increment raced the leader's
            # ``counters["queries"]`` update, which runs under that lock).
            with runtime.lock:
                runtime.counters["coalesced"] += 1
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.payload
        try:
            flight.payload = self._execute(runtime, request)
            return flight.payload
        except BaseException as error:
            flight.error = error
            raise
        finally:
            with runtime.flights_lock:
                runtime.flights.pop(key, None)
            flight.event.set()

    def append(self, name: str, request: Dict[str, object]) -> Dict[str, object]:
        """Append streamed time steps to a dataset.

        The request body is ``{"columns": [[...], ...]}`` where every inner
        list is **one time step across all series** (the frame shape a live
        feed produces).  Returns the new length plus, per standing query, the
        windows that completed because of this append.
        """
        if not isinstance(request, dict) or "columns" not in request:
            raise ServiceError('append body must be {"columns": [[...], ...]}')
        runtime = self._runtime(name)
        try:
            steps = np.asarray(request["columns"], dtype=float)
        except (TypeError, ValueError) as error:
            raise ServiceError(f"append columns must be numeric: {error}") from error
        if steps.ndim == 1:
            steps = steps.reshape(1, -1)
        if steps.ndim != 2 or steps.shape[1] != runtime.store.num_series:
            raise ServiceError(
                f"each appended time step must list {runtime.store.num_series} "
                f"values (one per series), got shape {steps.shape}"
            )
        with runtime.lock:
            result = runtime.ingest_columns(np.ascontiguousarray(steps.T))
        return {"dataset": name, **result}

    def watch(self, name: str, request: Dict[str, object]) -> Dict[str, object]:
        """Register a standing threshold query over the dataset's stream."""
        runtime = self._runtime(name)
        query = query_from_wire(request)
        with runtime.lock:
            runtime.flush_writes()
            watch = runtime.register_watch(query)
            return {"dataset": name, **watch.describe(), "windows": list(watch.windows)}

    def watch_results(self, name: str, watch_id: str) -> Dict[str, object]:
        """Every window a standing query has emitted so far."""
        runtime = self._runtime(name)
        with runtime.lock:
            runtime.flush_writes()
            watch = runtime.watches.get(watch_id)
            if watch is None:
                raise ServiceError(
                    f"dataset {name!r} has no standing query {watch_id!r}", status=404
                )
            return {"dataset": name, **watch.describe(), "windows": list(watch.windows)}

    # ------------------------------------------------------------------ internal
    def _runtime(self, name: str) -> DatasetRuntime:
        with self._runtimes_lock:
            runtime = self._runtimes.get(name)
            if runtime is not None:
                return runtime
        if name not in self.catalog.dataset_names():
            raise ServiceError(f"unknown dataset {name!r}", status=404)
        loaded = DatasetRuntime(
            name,
            self.catalog,
            engine=self.engine,
            engine_options=self.engine_options,
            basic_window_size=self.basic_window_size,
            workers=self.workers,
            memory_budget=self.memory_budget,
            write_buffer_columns=self.write_buffer_columns,
            write_buffer_seconds=self.write_buffer_seconds,
            cost_model=self.cost_model,
        )
        with self._runtimes_lock:
            # Two threads may have built the runtime concurrently; first wins
            # so every request shares one warm cache.
            return self._runtimes.setdefault(name, loaded)

    def _execute(self, runtime: DatasetRuntime, request: Dict[str, object]) -> Dict[str, object]:
        spec = {k: v for k, v in request.items() if k not in _REQUEST_ONLY_FIELDS}
        workers = request.get("workers")
        if workers is not None and (isinstance(workers, bool) or not isinstance(workers, int)):
            raise ServiceError(f"request field 'workers' must be an integer, got {workers!r}")
        include_edges = bool(request.get("include_edges", False))
        query = query_from_wire(spec)
        with runtime.lock:
            runtime.flush_writes()
            session = runtime.session_for(workers)
            plan = session.plan(query)
            runtime.seed_sketch_for(plan)
            # Execute the plan we just seeded for (not session.run, which
            # would re-plan): the seeded layout and the executed layout can
            # never diverge, and planning happens once per request.
            result = session.planner.execute(session.matrix, plan)
            runtime.counters["queries"] += 1
        return {
            "dataset": runtime.name,
            "plan": plan.describe(),
            **result_to_wire(result, include_edges=include_edges),
        }
