"""Compatible-query batching: one scan at ``min(threshold)``, filtered per caller.

PR 3's singleflight coalesced *identical* concurrent requests onto one
execution.  This module generalizes it: concurrent **threshold** queries
that differ *only* in their threshold — same dataset, same window grid, same
``threshold_mode``, same transport fields — are compatible, because the
engine's scan at the *lowest* requested threshold computes a superset of
every member's answer with bit-identical values:

* every execution strategy in this repo emits bit-identical correlation
  values for a surviving pair regardless of the threshold (the canonical
  layout + pairwise-sum invariants, property-tested per strategy), and
* Dangoron's horizontal pruning is *sound* — a pair pruned at threshold
  ``t`` is provably below ``t``, hence below every member threshold
  ``>= t``,

so deriving a member's result is a pure order-preserving subset filter of
the floor scan's entries through the member query's own ``keep_mask``.
:func:`filter_threshold_result` is that filter; the Hypothesis property
suite asserts it is bit-identical to an independent per-threshold run
across random thresholds, layouts and batch compositions.

One engine mechanism is excluded from batch scans: Dangoron's *temporal
jumping* (Eq. 2) is a threshold-dependent recall heuristic — under its
stationarity assumption a below-threshold pair skips windows, and a pair
whose correlation rises faster than the bound predicts is caught late.
Which windows get skipped depends on the scan's threshold, so a floor scan
with jumping on could not reproduce each member's own schedule.  Batch
leaders therefore run the floor scan with :func:`exact_scan_options`
(jumping disabled; horizontal pruning, which is exact per window, stays
on): the scan's survivor set is exactly ``{corr >= floor}``, derivation is
bit-identical to an independent exact run of each member's query, and the
answer is independent of batch composition.  Single-threshold batches are
pure coalescing and keep the normal plan untouched.

The bookkeeping classes (:class:`BatchMember`, :class:`QueryBatch`) carry
one open batch per ``(dataset, batch key)``: the first arrival becomes the
leader, compatible arrivals join until the leader *closes* the batch at
execution time, and everyone wakes on one event with their own payload.
Instances are shared across request threads; every mutation happens under
the owning runtime's ``batches_lock`` (see
:meth:`repro.service.service.CorrelationService.query`) or before the
batch is published to it.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional

from repro.core.engine import engine_options
from repro.core.query import SlidingQuery
from repro.core.result import CorrelationSeriesResult, ThresholdedMatrix
from repro.exceptions import ServiceError

#: A request is batchable when it is a threshold query with a numeric
#: threshold; everything else (top-k, lagged, malformed bodies) goes through
#: the exact-match singleflight instead.
BATCHABLE_MODE = "threshold"


def canonical_request_key(request: Dict[str, object]) -> str:
    """The exact-identity key of a request: its canonical JSON."""
    return json.dumps(request, sort_keys=True, separators=(",", ":"))


def is_batchable(request: Dict[str, object]) -> bool:
    threshold = request.get("threshold")
    return (
        request.get("mode") == BATCHABLE_MODE
        and isinstance(threshold, (int, float))
        and not isinstance(threshold, bool)
    )


def batch_key_for(request: Dict[str, object]) -> str:
    """The compatibility key: the request minus its threshold, canonically.

    Everything else — window grid, ``threshold_mode``, ``workers``,
    ``include_edges`` — must match for two requests to share a scan; a
    differing ``threshold_mode`` changes the keep predicate and therefore
    the key, never silently the semantics.
    """
    spec = {key: value for key, value in request.items() if key != "threshold"}
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


def exact_scan_options(engine: str, options: Dict[str, object]) -> Dict[str, object]:
    """Engine options making ``engine``'s threshold scans threshold-exact.

    For engines with Dangoron's temporal-jumping knob the heuristic is
    switched off (its skip schedule depends on the scan threshold — see the
    module docstring); engines without the knob run exhaustive or
    soundly-pruned scans already and keep their options untouched.
    """
    if "use_temporal_pruning" in engine_options(engine):
        return {**options, "use_temporal_pruning": False}
    return dict(options)


def filter_threshold_result(
    result: CorrelationSeriesResult, query: SlidingQuery
) -> CorrelationSeriesResult:
    """Derive ``query``'s result from a floor scan at a threshold ``<=`` its own.

    ``result`` must be the answer to the same query at a lower-or-equal
    threshold (same grid, same ``threshold_mode``), produced by a
    threshold-exact scan (see :func:`exact_scan_options`); each window's
    surviving entries are filtered through ``query.keep_mask`` — an
    order-preserving subset, bit-identical to an independent exact run of
    ``query``.  The engine statistics are the floor scan's (one scan
    happened; per-member work counters would be fiction).
    """
    floor = result.query
    if query.with_threshold(floor.threshold) != floor:
        raise ServiceError(
            "batched filter requires queries differing only in threshold: "
            f"cannot derive {query!r} from a scan of {floor!r}"
        )
    if floor.threshold > query.threshold:
        raise ServiceError(
            f"floor scan threshold {floor.threshold} exceeds the member "
            f"threshold {query.threshold}; the scan is not a superset"
        )
    matrices: List[ThresholdedMatrix] = []
    for window in result.matrices:
        mask = query.keep_mask(window.values)
        matrices.append(
            ThresholdedMatrix(
                window.num_series,
                rows=window.rows[mask],
                cols=window.cols[mask],
                values=window.values[mask],
            )
        )
    return CorrelationSeriesResult(
        query, matrices, stats=result.stats, series_ids=result.series_ids
    )


class BatchMember:
    """One distinct request inside a batch (duplicates share the slot).

    ``query`` is the parsed :class:`~repro.core.query.SlidingQuery` — callers
    validate their own request *before* joining, so a malformed body fails
    its sender alone instead of poisoning the batch.
    """

    __slots__ = ("request", "query", "payload")

    def __init__(self, request: Dict[str, object]) -> None:
        self.request = dict(request)
        self.query: Optional[SlidingQuery] = None
        self.payload: Optional[Dict[str, object]] = None


class QueryBatch:
    """One open (then closed) batch of compatible threshold requests.

    Members join under the runtime's ``batches_lock`` while ``closed`` is
    false; the leader flips ``closed`` (same lock) when execution starts,
    removes the batch from the open map, runs the floor scan, fills every
    member's ``payload`` (or ``error``), and sets ``event``.
    """

    __slots__ = ("key", "members", "closed", "event", "error")

    def __init__(self, key: str) -> None:
        self.key = key
        self.members: Dict[str, BatchMember] = {}
        self.closed = False
        self.event = threading.Event()
        self.error: Optional[BaseException] = None

    def join(self, exact_key: str, request: Dict[str, object]) -> tuple:
        """Add a request; returns ``(member, created)``.

        ``created`` is true when this request opened a new member slot (a
        distinct threshold — it will be *batched*); false when it joined an
        existing slot (an exact duplicate — it is *coalesced*).  Caller
        holds the runtime's ``batches_lock``.
        """
        member = self.members.get(exact_key)
        if member is not None:
            return member, False
        member = BatchMember(request)
        self.members[exact_key] = member
        return member, True

    def thresholds(self) -> List[float]:
        return [float(member.request["threshold"]) for member in self.members.values()]
