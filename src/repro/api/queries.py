"""The query spec family: every capability of the library as *data*.

The seed exposed the paper's query variants through four differently-shaped
entry points.  This module folds them into one hierarchy rooted at the
validated :class:`~repro.core.query.SlidingQuery` core (range, window, step,
threshold), so what used to be a choice of *function* is now a choice of
*query object* handed to one front door:

:class:`ThresholdQuery`
    The paper's problem definition — one thresholded correlation matrix per
    window.  Semantically identical to a plain :class:`SlidingQuery` (which
    the planner keeps accepting for back compatibility).
:class:`TopKQuery`
    The k most correlated pairs per window; the threshold field is unused
    (``k`` replaces it) and defaults accordingly.
:class:`LaggedQuery`
    The strongest lagged correlation per pair per window over
    ``[-max_lag, max_lag]``; the threshold applies when flattening to edges.

Because queries are data, batching (``session.run_many``), planning and
caching are uniform: the planner inspects the query type to pick an engine
and keys its sketch cache on the shared range/window/step core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.query import THRESHOLD_ABSOLUTE, SlidingQuery
from repro.exceptions import QueryValidationError


@dataclass(frozen=True)
class ThresholdQuery(SlidingQuery):
    """A sliding thresholded-correlation-matrix query (the paper's Problem 1).

    Today's :class:`SlidingQuery` semantics under the unified spec family:
    every field, validation rule and helper is inherited unchanged.  Exists so
    call sites can say what they mean (`ThresholdQuery` vs `TopKQuery`) and so
    the planner's routing is symmetric across the family.

    Examples
    --------
    >>> query = ThresholdQuery(start=0, end=240, window=96, step=48,
    ...                        threshold=0.7)
    >>> query.num_windows
    4
    >>> query.window_bounds(1)
    (48, 144)
    >>> query.with_threshold(0.9).threshold   # sweeps reuse one spec
    0.9
    >>> ThresholdQuery(start=0, end=50, window=96, step=48, threshold=0.7)
    Traceback (most recent call last):
        ...
    repro.exceptions.QueryValidationError: query range of length 50 is \
shorter than the window size 96
    """


@dataclass(frozen=True)
class TopKQuery(SlidingQuery):
    """The k most correlated pairs of every sliding window.

    ``k`` replaces the threshold (which is ignored and defaults to 1.0, the
    vacuous value); ``absolute`` overrides the ranking mode, defaulting to the
    query's ``threshold_mode`` like the legacy ``sliding_top_k`` did.

    Examples
    --------
    >>> query = TopKQuery(start=0, end=128, window=64, step=32, k=5)
    >>> query.k, query.effective_absolute
    (5, False)
    >>> TopKQuery(start=0, end=128, window=64, step=32, k=5,
    ...           absolute=True).effective_absolute
    True
    >>> TopKQuery(start=0, end=128, window=64, step=32, k=0)
    Traceback (most recent call last):
        ...
    repro.exceptions.QueryValidationError: k must be at least 1, got 0
    """

    mode = "topk"

    threshold: float = 1.0
    k: int = 10
    absolute: Optional[bool] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.k < 1:
            raise QueryValidationError(f"k must be at least 1, got {self.k}")

    @property
    def effective_absolute(self) -> bool:
        """Whether ranking uses ``|c|`` (explicit flag, else the threshold mode)."""
        if self.absolute is not None:
            return self.absolute
        return self.threshold_mode == THRESHOLD_ABSOLUTE

    def describe(self) -> str:
        return f"top-k k={self.k} abs={self.effective_absolute} {super().describe()}"


@dataclass(frozen=True)
class LaggedQuery(SlidingQuery):
    """Best lagged correlation per pair per window over ``[-max_lag, max_lag]``.

    The threshold (default 0.0) applies when the result is flattened to edges
    — the per-window lag matrices themselves are kept dense, mirroring the
    legacy ``sliding_lagged_correlation``.  ``absolute`` overrides the ranking
    mode, defaulting to the query's ``threshold_mode``.

    Examples
    --------
    >>> query = LaggedQuery(start=0, end=128, window=64, step=32,
    ...                     max_lag=4, threshold=0.6)
    >>> query.max_lag, query.effective_absolute
    (4, False)
    >>> LaggedQuery(start=0, end=128, window=4, step=2, max_lag=3)
    Traceback (most recent call last):
        ...
    repro.exceptions.QueryValidationError: window of length 4 cannot \
support max_lag=3
    """

    mode = "lagged"

    threshold: float = 0.0
    max_lag: int = 1
    absolute: Optional[bool] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.max_lag < 0:
            raise QueryValidationError(
                f"max_lag must be non-negative, got {self.max_lag}"
            )
        if self.window - self.max_lag < 2:
            raise QueryValidationError(
                f"window of length {self.window} cannot support "
                f"max_lag={self.max_lag}"
            )

    @property
    def effective_absolute(self) -> bool:
        """Whether ranking uses ``|c|`` (explicit flag, else the threshold mode)."""
        if self.absolute is not None:
            return self.absolute
        return self.threshold_mode == THRESHOLD_ABSOLUTE

    def describe(self) -> str:
        return f"lagged max_lag={self.max_lag} {super().describe()}"
