"""Cost-based planning substrate: calibrated throughputs + runtime feedback.

The planner's strategy decisions (serial vs sharded, dense vs tiled vs
incremental, worker and tile-size counts) are ranked by *predicted wall
seconds*, not by fixed heuristics.  Two ingredients produce a prediction:

:class:`Calibration`
    Machine throughputs for the four primitive operations every plan is
    composed of — sketch build (elements reduced per second), pair scan
    (pair-windows recombined per second), shard dispatch/merge, and tile
    IO.  Three sources exist, recorded in ``Calibration.source``:

    ``measured``
        Micro-benchmarked on first use (:func:`measure_calibration`),
        cached per process via :meth:`CostModel.shared`.  The default
        outside test runs: a few tens of milliseconds, once.
    ``fixture``
        The committed :data:`FIXTURE_CALIBRATION` constants — selected by
        ``REPRO_COST_CALIBRATION=off`` so tier-1 tests and the CI smoke
        make machine-independent decisions.
    ``injected``
        Constructed explicitly by a test (``CostModel(Calibration(...))``)
        to force a particular ranking.

:class:`FeedbackStore`
    Observed wall seconds per *plan key*, recorded by
    ``QueryPlanner.execute`` after every run.  Once every candidate of a
    decision has at least :data:`MIN_FEEDBACK_SAMPLES` observations, the
    planner ranks by the observed means (blended with the calibrated
    prediction as a weak prior) instead of by calibration alone —
    ``plan.describe()`` then says ``source=feedback(n=...)``.  Requiring
    *full* candidate coverage before switching keeps rankings
    apples-to-apples: an observed mean is never compared against a
    calibrated guess.

The store lives on :class:`~repro.storage.cache.SketchCache` (``cache
.feedback``) and shares the cache's lock, so sessions and service runtimes
that share sketches also share what the planner learned.  It persists as a
small JSON document next to the cache's other artifacts; a corrupt or
truncated file raises :class:`~repro.exceptions.StorageError` naming the
path.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Deque, Dict, Optional

import numpy as np

from repro.config import DEFAULT_SHARDS_PER_WORKER, FLOAT_DTYPE
from repro.exceptions import StorageError

#: Environment knob selecting the calibration source.  ``off`` / ``fixture``
#: load :data:`FIXTURE_CALIBRATION`; anything else (or unset) micro-benchmarks.
ENV_CALIBRATION = "REPRO_COST_CALIBRATION"

#: Feedback replaces calibration only when *every* candidate of a decision
#: has at least this many observed runs (see module docstring).
MIN_FEEDBACK_SAMPLES = 3

#: Observations kept per plan key (a sliding window, newest last).
MAX_FEEDBACK_SAMPLES = 32

#: Wire schema of the persisted feedback document.
FEEDBACK_SCHEMA = "repro.feedback/v1"


@dataclass(frozen=True)
class Calibration:
    """Primitive-operation throughputs a plan's wall cost is predicted from.

    All throughputs are "per second of one worker"; overheads are absolute
    seconds.  ``parallel_efficiency`` scales the ideal ``workers``-way scan
    speedup (1.0 = perfect scaling).
    """

    #: Sketch build: matrix elements reduced into γ·N² statistics per second.
    sketch_build_elems_per_s: float
    #: Incremental extension: Δ elements appended to a chained sketch per second.
    sketch_extend_elems_per_s: float
    #: Pair scan: (pair, window) recombinations answered per second.
    pair_scan_pair_windows_per_s: float
    #: Shard merge: (pair, window) results folded into one result per second.
    merge_pair_windows_per_s: float
    #: Fixed cost of dispatching one shard to the worker pool.
    shard_dispatch_seconds: float
    #: Fraction of the ideal ``workers``-way speedup actually realized.
    parallel_efficiency: float
    #: Tiled build: bytes streamed through the bounded tile buffer per second.
    tile_io_bytes_per_s: float
    #: Fixed per-tile cost (buffer turnover, bookkeeping).
    tile_overhead_seconds: float
    #: Where the numbers came from: ``measured`` / ``fixture`` / ``injected``.
    source: str = "injected"

    def __post_init__(self) -> None:
        for field in fields(self):
            if field.name == "source":
                continue
            value = getattr(self, field.name)
            if not math.isfinite(value) or value < 0:
                raise StorageError(
                    f"calibration field {field.name} must be finite and "
                    f"non-negative, got {value!r}"
                )
        for name in (
            "sketch_build_elems_per_s",
            "sketch_extend_elems_per_s",
            "pair_scan_pair_windows_per_s",
            "merge_pair_windows_per_s",
            "tile_io_bytes_per_s",
        ):
            if getattr(self, name) <= 0:
                raise StorageError(f"calibration throughput {name} must be positive")
        if not 0 < self.parallel_efficiency <= 1:
            raise StorageError(
                f"parallel_efficiency must be in (0, 1], got {self.parallel_efficiency}"
            )


#: The committed calibration behind ``REPRO_COST_CALIBRATION=off``.  The
#: numbers are *idealized*, not measured: dispatch and tile overheads are
#: near zero and scan throughput is conservative, so on the toy matrices the
#: test suite plans over, the cost ranking reproduces the historic heuristic
#: decisions exactly (workers configured + eligible → sharded; budget below
#: the data → tiled at the full budget; chained coverage → incremental).
#: Machine-adaptive behaviour comes from ``measured`` mode, which tier-1
#: deliberately does not exercise.
FIXTURE_CALIBRATION = Calibration(
    sketch_build_elems_per_s=2.0e8,
    sketch_extend_elems_per_s=2.0e8,
    pair_scan_pair_windows_per_s=1.0e6,
    merge_pair_windows_per_s=5.0e7,
    shard_dispatch_seconds=1.0e-6,
    parallel_efficiency=0.95,
    tile_io_bytes_per_s=1.0e9,
    tile_overhead_seconds=1.0e-6,
    source="fixture",
)


# ------------------------------------------------------------- calibration
#: Micro-benchmark geometry: small enough to finish in tens of
#: milliseconds, large enough that per-call overhead does not dominate.
_CAL_SERIES = 16
_CAL_LENGTH = 4096
_CAL_BASIC = 32
#: Minimum measured span per primitive; calls repeat until it is reached.
_CAL_MIN_SECONDS = 0.004
_CAL_MAX_CALLS = 64


def _timed_per_call(fn) -> float:
    """Seconds per call of ``fn``, repeated until the span is measurable."""
    fn()  # warm-up: first call pays allocation/compilation costs
    calls = 0
    started = time.perf_counter()
    while True:
        fn()
        calls += 1
        elapsed = time.perf_counter() - started
        if elapsed >= _CAL_MIN_SECONDS or calls >= _CAL_MAX_CALLS:
            return max(elapsed, 1e-9) / calls


def measure_calibration() -> Calibration:
    """Micro-benchmark the primitive throughputs on this machine.

    Uses the real kernels (``BasicWindowSketch.build`` / ``extend`` /
    ``exact_matrix_scan``, a worker-pool round trip, a bounded-buffer
    column copy) over a small deterministic matrix, so the measured ratios
    track the machine the planner is deciding for.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.core.basic_window import BasicWindowLayout
    from repro.core.sketch import BasicWindowSketch

    phases = np.arange(_CAL_SERIES, dtype=FLOAT_DTYPE)[:, None]
    ticks = np.arange(_CAL_LENGTH, dtype=FLOAT_DTYPE)[None, :]
    values = np.sin(0.01 * ticks + phases) + 0.1 * np.cos(0.37 * ticks * (1 + phases))
    layout = BasicWindowLayout.for_range(0, _CAL_LENGTH, _CAL_BASIC)
    elems = _CAL_SERIES * _CAL_LENGTH

    build_s = _timed_per_call(lambda: BasicWindowSketch.build(values, layout))
    sketch = BasicWindowSketch.build(values, layout)

    delta = values[:, : 4 * _CAL_BASIC]
    extend_s = _timed_per_call(lambda: sketch.extend(delta))
    extend_elems = _CAL_SERIES * delta.shape[1]

    scan_windows = layout.count // 4

    def _scan():
        for first in range(0, layout.count - scan_windows, scan_windows):
            sketch.exact_matrix_scan(first, scan_windows)

    scan_s = _timed_per_call(_scan)
    scanned_pair_windows = (
        _CAL_SERIES * (_CAL_SERIES - 1) // 2
    ) * ((layout.count - scan_windows) // scan_windows)

    order = np.argsort(np.tile(np.arange(4096), 4), kind="stable")
    merge_s = _timed_per_call(lambda: np.take(order, order).sum())
    merged = order.size

    with ThreadPoolExecutor(max_workers=2) as pool:
        def _dispatch():
            futures = [pool.submit(int, 1) for _ in range(8)]
            for future in futures:
                future.result()

        dispatch_s = _timed_per_call(_dispatch) / 8

    tile = np.empty((_CAL_SERIES, 512), dtype=FLOAT_DTYPE)

    def _tile_copy():
        for start in range(0, _CAL_LENGTH - 512, 512):
            np.copyto(tile, values[:, start : start + 512])

    tile_s = _timed_per_call(_tile_copy)
    tile_bytes = values[:, : (_CAL_LENGTH - 512) // 512 * 512].nbytes

    return Calibration(
        sketch_build_elems_per_s=elems / build_s,
        sketch_extend_elems_per_s=extend_elems / extend_s,
        pair_scan_pair_windows_per_s=scanned_pair_windows / scan_s,
        merge_pair_windows_per_s=merged / merge_s,
        shard_dispatch_seconds=dispatch_s,
        parallel_efficiency=0.85,
        tile_io_bytes_per_s=tile_bytes / tile_s,
        tile_overhead_seconds=max(dispatch_s, 1e-7),
        source="measured",
    )


# ------------------------------------------------------------------- model
@dataclass(frozen=True)
class PlanWorkload:
    """The size numbers one query's candidate costs are predicted from."""

    kind: str
    pairs: int
    windows: int
    #: ``2 * max_lag + 1`` for lagged queries, 1 otherwise: every lag offset
    #: multiplies the scan work.
    lag_span: int = 1
    #: Elements a fresh sketch build reduces (0 for raw-value paths).
    sketch_elems: int = 0
    #: Elements an incremental extension reduces (the Δ tail).
    delta_elems: int = 0
    #: Bytes of raw data a tiled build / streamed run moves.
    data_bytes: int = 0
    #: The needed sketch is already cached: builds cost nothing.
    cached: bool = False


class CostModel:
    """Predicts wall seconds for candidate plans from a :class:`Calibration`.

    The model is additive — ``build + scan (+ dispatch + merge)`` — which is
    exactly the structure of ``QueryPlanner.execute``.  It is deliberately
    coarse: its job is *ranking* a handful of candidates, and ranking
    mistakes are corrected by the feedback loop, not by more model terms.
    """

    _shared: Optional["CostModel"] = None
    _shared_lock = threading.Lock()

    def __init__(self, calibration: Calibration) -> None:
        self.calibration = calibration

    # ------------------------------------------------------------- factories
    @classmethod
    def fixture(cls) -> "CostModel":
        """The committed machine-independent calibration (CI / tier-1)."""
        return cls(FIXTURE_CALIBRATION)

    @classmethod
    def measured(cls) -> "CostModel":
        """Micro-benchmark this machine (tens of milliseconds, once)."""
        return cls(measure_calibration())

    @classmethod
    def from_environment(cls, environ=None) -> "CostModel":
        """``measured`` unless :data:`ENV_CALIBRATION` says ``off``/``fixture``."""
        value = (environ if environ is not None else os.environ).get(
            ENV_CALIBRATION, ""
        )
        if value.strip().lower() in ("off", "fixture", "0", "false"):
            return cls.fixture()
        return cls.measured()

    @classmethod
    def shared(cls) -> "CostModel":
        """The per-process model planners default to (calibrated once)."""
        with cls._shared_lock:
            if cls._shared is None:
                cls._shared = cls.from_environment()
            return cls._shared

    @classmethod
    def reset_shared(cls) -> None:
        """Drop the per-process model (tests that flip the env knob)."""
        with cls._shared_lock:
            cls._shared = None

    # ------------------------------------------------------------ prediction
    def predict(
        self,
        workload: PlanWorkload,
        execution: str,
        workers: int,
        sketch_build: str,
        tile_budget: Optional[int] = None,
    ) -> float:
        """Predicted wall seconds of one candidate plan."""
        c = self.calibration
        pair_windows = workload.pairs * workload.windows * workload.lag_span

        if sketch_build == "incremental":
            prepare = workload.delta_elems / c.sketch_extend_elems_per_s
        elif sketch_build == "tiled":
            if workload.kind == "lagged":
                # Streamed window buffers: the raw columns flow through one
                # bounded buffer instead of being sliced from a resident array.
                prepare = workload.data_bytes / c.tile_io_bytes_per_s
            elif workload.cached:
                prepare = 0.0
            else:
                tiles = (
                    math.ceil(workload.data_bytes / tile_budget)
                    if tile_budget
                    else 1
                )
                prepare = (
                    workload.sketch_elems / c.sketch_build_elems_per_s
                    + workload.data_bytes / c.tile_io_bytes_per_s
                    + tiles * c.tile_overhead_seconds
                )
        elif workload.cached:
            prepare = 0.0
        else:
            prepare = workload.sketch_elems / c.sketch_build_elems_per_s

        scan = pair_windows / c.pair_scan_pair_windows_per_s
        if execution == "sharded":
            shards = workers * DEFAULT_SHARDS_PER_WORKER
            scan = (
                scan / (workers * c.parallel_efficiency)
                + shards * c.shard_dispatch_seconds
                + pair_windows / c.merge_pair_windows_per_s
            )
        return prepare + scan


# ---------------------------------------------------------------- feedback
class FeedbackStore:
    """Observed wall seconds per plan key, persisted as a JSON document.

    Thread safety: pass the owning cache's lock (``SketchCache`` does) so
    recordings from concurrent request threads serialize with the cache's
    own bookkeeping; standalone stores create a private lock.
    """

    def __init__(
        self,
        path: Optional[object] = None,
        max_samples: int = MAX_FEEDBACK_SAMPLES,
        lock: Optional[object] = None,
    ) -> None:
        if max_samples < 1:
            raise StorageError(f"max_samples must be at least 1, got {max_samples}")
        self.path = Path(path) if path is not None else None
        self.max_samples = max_samples
        self._lock = lock if lock is not None else threading.RLock()
        self._samples: Dict[str, Deque[float]] = {}  # guarded-by: _lock
        self.records = 0  # guarded-by: _lock
        #: Set instead of raising when an owner loads leniently (the planner
        #: must fall back to calibration, not crash, on a corrupt file).
        self.load_error: Optional[str] = None  # guarded-by: _lock

    # -------------------------------------------------------------- recording
    def record(self, key: str, seconds: float) -> None:
        """Record one observed wall time for ``key`` (newest kept, bounded)."""
        if not math.isfinite(seconds) or seconds < 0:
            raise StorageError(
                f"observed wall seconds must be finite and non-negative, "
                f"got {seconds!r}"
            )
        with self._lock:
            samples = self._samples.get(key)
            if samples is None:
                samples = deque(maxlen=self.max_samples)
                self._samples[key] = samples
            samples.append(float(seconds))
            self.records += 1

    def count(self, key: str) -> int:
        """Observations currently held for ``key``."""
        with self._lock:
            samples = self._samples.get(key)
            return len(samples) if samples is not None else 0

    def mean(self, key: str) -> Optional[float]:
        """Mean observed seconds for ``key`` (``None`` when unobserved)."""
        with self._lock:
            samples = self._samples.get(key)
            if not samples:
                return None
            return sum(samples) / len(samples)

    def blended(self, key: str, predicted: float) -> float:
        """Observed mean blended with the calibrated prediction as a prior.

        The prediction carries the weight of one sample, so with ``n``
        observations the blend is ``(n·mean + predicted) / (n + 1)`` —
        observed beats calibrated as soon as samples accumulate, but a
        single noisy run cannot fully override the model.
        """
        with self._lock:
            samples = self._samples.get(key)
            if not samples:
                return predicted
            return (sum(samples) + predicted) / (len(samples) + 1)

    def clear(self) -> None:
        """Drop every observation (the bounded history, not the file)."""
        with self._lock:
            self._samples.clear()
            self.records = 0

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-key summary (``samples`` / ``mean_seconds`` / ``last_seconds``)."""
        with self._lock:
            return {
                key: {
                    "samples": len(samples),
                    "mean_seconds": sum(samples) / len(samples),
                    "last_seconds": samples[-1],
                }
                for key, samples in sorted(self._samples.items())
                if samples
            }

    # ------------------------------------------------------------ persistence
    def save(self, path: Optional[object] = None) -> Path:
        """Write the store as JSON; returns the path written."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise StorageError("feedback store has no path to save to")
        with self._lock:
            document = {
                "schema": FEEDBACK_SCHEMA,
                "samples": {
                    key: [round(value, 9) for value in samples]
                    for key, samples in sorted(self._samples.items())
                },
            }
        target.write_text(json.dumps(document, indent=2) + "\n")
        return target

    @classmethod
    def load(
        cls,
        path: object,
        max_samples: int = MAX_FEEDBACK_SAMPLES,
        lock: Optional[object] = None,
    ) -> "FeedbackStore":
        """Read a persisted store; corrupt/truncated files raise ``StorageError``.

        The error names the path so an operator can find (and delete) the
        bad file; callers that must stay up — the sketch cache — catch it,
        start empty, and surface the message on ``load_error``.
        """
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise StorageError(f"feedback store at {path} is unreadable: {exc}") from exc
        try:
            document = json.loads(text)
        except ValueError as exc:
            raise StorageError(
                f"feedback store at {path} is corrupt or truncated: {exc}"
            ) from exc
        if not isinstance(document, dict) or document.get("schema") != FEEDBACK_SCHEMA:
            raise StorageError(
                f"feedback store at {path} is not a {FEEDBACK_SCHEMA} document"
            )
        samples = document.get("samples")
        if not isinstance(samples, dict):
            raise StorageError(
                f"feedback store at {path} is truncated: no samples table"
            )
        store = cls(path=path, max_samples=max_samples, lock=lock)
        for key, walls in samples.items():
            if not isinstance(walls, list) or not all(
                isinstance(wall, (int, float))
                and not isinstance(wall, bool)
                and math.isfinite(wall)
                and wall >= 0
                for wall in walls
            ):
                raise StorageError(
                    f"feedback store at {path} has a corrupt sample row "
                    f"for key {key!r}"
                )
            for wall in walls[-max_samples:]:
                store.record(key, float(wall))
        return store
