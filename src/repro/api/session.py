"""`CorrelationSession`: the single front door over one time-series matrix.

The seed exposed four disconnected entry points (engine ``run``, two free
functions, a streaming monitor class), each with its own argument conventions
and result shapes.  A session holds the matrix plus a
:class:`~repro.api.planner.QueryPlanner` and answers every query spec through
one verb family:

``session.run(query)``
    Any member of the query family; returns an object implementing the
    unified result protocol (``describe``/``num_windows``/``iter_windows``/
    ``to_edges``).
``session.run_many(queries)``
    Batched execution; queries sharing a basic-window layout share one sketch
    build (the planner's cache), which is what makes threshold sweeps cheap.
``session.sweep_thresholds(query, betas)``
    The common special case of ``run_many``.
``session.stream(query)``
    The same query answered window-by-window through the online monitor, as
    a generator — for code paths that want results as soon as each window
    completes rather than after the whole range.

Sessions are cheap: they own no data copies, only the planner's caches.
Sharing one ``SketchCache`` between sessions (pass it to both planners)
extends sketch reuse across matrices-with-identical-content too, because the
cache keys on a content fingerprint.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.api.cost import CostModel, FeedbackStore
from repro.api.planner import ExecutionPlan, QueryPlanner
from repro.api.queries import LaggedQuery, TopKQuery
from repro.config import DEFAULT_BASIC_WINDOW_SIZE
from repro.core.basic_window import choose_basic_window_size
from repro.core.engine import SlidingCorrelationEngine
from repro.core.query import THRESHOLD_ABSOLUTE, SlidingQuery
from repro.exceptions import QueryValidationError
from repro.storage.cache import CacheStats, SketchCache
from repro.streaming.online import OnlineCorrelationMonitor, OnlineWindowResult
from repro.timeseries.matrix import TimeSeriesMatrix


class CorrelationSession:
    """A planned, cached query interface over one :class:`TimeSeriesMatrix`.

    Parameters
    ----------
    matrix:
        The data every query of this session runs over.
    engine:
        Registered engine name answering threshold queries (default
        ``"dangoron"``).
    engine_options:
        Constructor options for that engine (see ``repro.core.engine
        .engine_options``); invalid options raise ``ExperimentError``.
    basic_window_size:
        Requested basic-window size (sketch granularity) for engines that
        take one, for top-k alignment, and for streaming.
    workers:
        When greater than 1, threshold queries over large pair spaces run
        sharded across this many pool workers (see
        :class:`repro.parallel.ShardedExecutor`); results are bit-identical
        to serial runs.  Small matrices stay serial automatically.
    memory_budget:
        Bytes the sketch build may hold resident at once; data larger than
        the budget streams through the tiled out-of-core builder
        (:mod:`repro.core.tiled`) with bit-identical results.  Combine with
        :meth:`from_chunk_store` so the dense matrix is never materialized.
    cost_model:
        The :class:`~repro.api.cost.CostModel` the planner ranks eligible
        execution/build candidates with; defaults to the per-process shared
        model.  Inject one for deterministic decisions in tests.
    planner:
        A preconfigured :class:`QueryPlanner`; overrides the options above.
        Pass planners sharing one :class:`SketchCache` to share sketch
        builds across sessions.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.api import CorrelationSession, ThresholdQuery
    >>> from repro.timeseries.matrix import TimeSeriesMatrix
    >>> rng = np.random.default_rng(7)
    >>> base = rng.standard_normal(256)
    >>> values = np.stack([base + 0.1 * rng.standard_normal(256) for _ in range(6)])
    >>> session = CorrelationSession(TimeSeriesMatrix(values), basic_window_size=16)
    >>> result = session.run(ThresholdQuery(start=0, end=256, window=64,
    ...                                     step=32, threshold=0.8))
    >>> result.num_windows
    7
    >>> all(m.num_edges == 15 for m in result)   # 6 near-copies: every pair correlates
    True
    """

    def __init__(
        self,
        matrix: TimeSeriesMatrix,
        engine: str = "dangoron",
        engine_options: Optional[Dict[str, object]] = None,
        basic_window_size: int = DEFAULT_BASIC_WINDOW_SIZE,
        workers: Optional[int] = None,
        memory_budget: Optional[int] = None,
        cost_model: Optional[CostModel] = None,
        planner: Optional[QueryPlanner] = None,
    ) -> None:
        self.matrix = matrix
        self.planner = (
            planner
            if planner is not None
            else QueryPlanner(
                engine=engine,
                engine_options=engine_options,
                basic_window_size=basic_window_size,
                workers=workers,
                memory_budget=memory_budget,
                cost_model=cost_model,
            )
        )

    @classmethod
    def from_chunk_store(
        cls,
        source,
        engine: str = "dangoron",
        engine_options: Optional[Dict[str, object]] = None,
        basic_window_size: int = DEFAULT_BASIC_WINDOW_SIZE,
        workers: Optional[int] = None,
        memory_budget: Optional[int] = None,
    ) -> "CorrelationSession":
        """A session over a chunk store (or lazy reader) without loading it.

        ``source`` is anything with the chunk-source surface — an in-memory
        :class:`~repro.storage.chunk_store.ChunkStore` or, for catalogs
        bigger than RAM, the lazy
        :class:`~repro.storage.chunk_store.ChunkStoreReader`.  The session's
        matrix is a :class:`~repro.core.tiled.ChunkBackedMatrix`: metadata is
        available immediately, but the dense array is only assembled if a
        query actually needs raw values.  With ``memory_budget`` set, aligned
        threshold and top-k queries build their sketch tiled and never
        materialize it at all (``session.matrix.materialized`` stays
        ``False``) — see ``docs/scaling.md``.
        """
        from repro.core.tiled import ChunkBackedMatrix

        return cls(
            ChunkBackedMatrix(source),
            engine=engine,
            engine_options=engine_options,
            basic_window_size=basic_window_size,
            workers=workers,
            memory_budget=memory_budget,
        )

    # ------------------------------------------------------------------ running
    def plan(self, query: SlidingQuery) -> ExecutionPlan:
        """The execution plan :meth:`run` would follow for this query."""
        return self.planner.plan(self.matrix, query)

    def run(self, query: SlidingQuery):
        """Answer one query; the result implements the unified protocol."""
        return self.planner.run(self.matrix, query)

    def run_many(self, queries: Iterable[SlidingQuery]) -> List[object]:
        """Answer a batch of queries, sharing sketch builds where layouts agree."""
        return [self.run(query) for query in queries]

    def sweep_thresholds(
        self, query: SlidingQuery, thresholds: Iterable[float]
    ) -> List[object]:
        """Run the query once per threshold (one sketch build for the sweep).

        Examples
        --------
        >>> import numpy as np
        >>> from repro.api import CorrelationSession, ThresholdQuery
        >>> from repro.timeseries.matrix import TimeSeriesMatrix
        >>> matrix = TimeSeriesMatrix(
        ...     np.random.default_rng(5).standard_normal((5, 128)))
        >>> session = CorrelationSession(matrix, basic_window_size=16)
        >>> query = ThresholdQuery(start=0, end=128, window=32, step=16,
        ...                        threshold=0.5)
        >>> sweep = session.sweep_thresholds(query, [0.3, 0.5, 0.7])
        >>> [r.query.threshold for r in sweep]
        [0.3, 0.5, 0.7]
        >>> session.sketch_cache.builds    # the whole sweep shared one sketch
        1
        """
        return self.run_many(query.with_threshold(beta) for beta in thresholds)

    def run_with_engine(
        self, engine: SlidingCorrelationEngine, query: SlidingQuery
    ):
        """Answer a threshold query with an explicit engine instance.

        The engine still shares this session's sketch cache when it plans a
        layout — this is how the experiment harness runs its whole engine
        line-up over one workload with at most one sketch build per distinct
        layout.
        """
        return self.planner.run(self.matrix, query, engine=engine)

    # ---------------------------------------------------------------- streaming
    def stream(
        self, query: SlidingQuery, chunk_columns: Optional[int] = None
    ) -> Iterator[OnlineWindowResult]:
        """Answer a threshold query window-by-window through the online monitor.

        Feeds the session's matrix into an
        :class:`~repro.streaming.online.OnlineCorrelationMonitor` in chunks of
        ``chunk_columns`` (default: the query step) and yields each window's
        :class:`OnlineWindowResult` as soon as its data is complete — the
        push-based view of the same answer ``run`` returns in one batch.

        Only signed-threshold queries stream (the monitor's semantics);
        top-k, lagged and absolute-mode queries raise
        :class:`QueryValidationError`.
        """
        if isinstance(query, (TopKQuery, LaggedQuery)):
            raise QueryValidationError(
                f"streaming supports threshold queries only, got "
                f"{type(query).__name__}"
            )
        if query.threshold_mode == THRESHOLD_ABSOLUTE:
            raise QueryValidationError(
                "streaming supports signed thresholds only (the online "
                "monitor's semantics)"
            )
        query.validate_against_length(self.matrix.length)
        basic = choose_basic_window_size(
            query.window, query.step, self.planner.basic_window_size
        )
        monitor = OnlineCorrelationMonitor(
            num_series=self.matrix.num_series,
            window=query.window,
            step=query.step,
            threshold=query.threshold,
            basic_window_size=basic,
            series_ids=list(self.matrix.series_ids),
        )
        chunk = chunk_columns if chunk_columns is not None else query.step
        if chunk < 1:
            raise QueryValidationError(
                f"chunk_columns must be positive, got {chunk}"
            )
        values = self.matrix.values[  # repro-lint: disable=RPR002 -- streaming replays raw blocks by design; callers opt in explicitly
            :, query.start : query.end
        ]
        for start in range(0, values.shape[1], chunk):
            block = np.ascontiguousarray(values[:, start : start + chunk])
            for emitted in monitor.append(block):
                yield emitted

    # ------------------------------------------------------------------ caching
    @property
    def sketch_cache(self) -> SketchCache:
        """The planner's shared sketch cache (its stats drive the reuse tests)."""
        return self.planner.sketch_cache

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the sketch cache."""
        return self.planner.sketch_cache.stats

    @property
    def feedback(self) -> FeedbackStore:
        """Observed per-plan runtimes the planner learns from (shared with
        everything that shares this session's sketch cache)."""
        return self.planner.sketch_cache.feedback

    def describe(self) -> str:
        """One-line summary of the session (data shape plus planner config)."""
        cache = self.planner.sketch_cache
        return (
            f"CorrelationSession({self.matrix.num_series} series x "
            f"{self.matrix.length} columns, engine={self.planner.engine_name}, "
            f"b<={self.planner.basic_window_size}, sketches cached={len(cache)}, "
            f"hit rate={cache.stats.hit_rate:.2f})"
        )
