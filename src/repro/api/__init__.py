"""Unified front door: one query family, one planner, one result protocol.

Everything the library computes — thresholded matrices, top-k pairs, lagged
networks, online monitoring — is a variant of one sliding-window correlation
problem over one sketch.  This package exposes it that way (the same
quickstart as README.md, kept runnable as a doctest):

>>> import numpy as np
>>> from repro.api import CorrelationSession, ThresholdQuery, TopKQuery
>>> from repro.timeseries.matrix import TimeSeriesMatrix
>>> rng = np.random.default_rng(7)
>>> base = rng.standard_normal(256)                  # one shared driver signal
>>> values = np.stack([base + 0.1 * rng.standard_normal(256) for _ in range(6)])
>>> matrix = TimeSeriesMatrix(values)                # 6 series x 256 steps
>>> session = CorrelationSession(matrix, basic_window_size=16)
>>> result = session.run(ThresholdQuery(start=0, end=256, window=64,
...                                     step=32, threshold=0.8))
>>> result.num_windows                               # (256 - 64) / 32 + 1
7
>>> result.total_edges()                             # all 15 pairs, all windows
105
>>> top = session.run(TopKQuery(start=0, end=256, window=64, step=32, k=3))
>>> len(top.to_edges())                              # 3 pairs per window
21
>>> sweep = session.sweep_thresholds(result.query, [0.5, 0.7, 0.9])
>>> session.sketch_cache.builds     # every query above shared ONE sketch build
1

The session's planner memoizes basic-window sketches across queries, so the
sweep above builds the γ·N² statistics exactly once, and every result —
whatever its query type — implements the same minimal protocol
(``describe``/``num_windows``/``iter_windows``/``to_edges``) consumed by the
network builders, the report helpers and the CLI.  Construct the session
with ``workers=N`` to shard large threshold queries across a worker pool
(:mod:`repro.parallel`) with bit-identical results.
"""

from repro.api.cost import Calibration, CostModel, FeedbackStore
from repro.api.planner import (
    KIND_LAGGED,
    KIND_THRESHOLD,
    KIND_TOPK,
    ExecutionPlan,
    QueryPlanner,
)
from repro.api.queries import LaggedQuery, ThresholdQuery, TopKQuery
from repro.api.results import (
    CorrelationResult,
    CorrelationSeriesResult,
    Edge,
    LaggedSeriesResult,
    TopKResult,
)
from repro.api.session import CorrelationSession

__all__ = [
    "Calibration",
    "CorrelationResult",
    "CorrelationSeriesResult",
    "CorrelationSession",
    "CostModel",
    "Edge",
    "ExecutionPlan",
    "FeedbackStore",
    "KIND_LAGGED",
    "KIND_THRESHOLD",
    "KIND_TOPK",
    "LaggedQuery",
    "LaggedSeriesResult",
    "QueryPlanner",
    "ThresholdQuery",
    "TopKQuery",
]
