"""Unified front door: one query family, one planner, one result protocol.

Everything the library computes — thresholded matrices, top-k pairs, lagged
networks, online monitoring — is a variant of one sliding-window correlation
problem over one sketch.  This package exposes it that way::

    from repro.api import CorrelationSession, ThresholdQuery, TopKQuery

    session = CorrelationSession(matrix, basic_window_size=24)
    result = session.run(ThresholdQuery(start=0, end=matrix.length,
                                        window=240, step=24, threshold=0.7))
    sweep = session.sweep_thresholds(result.query, [0.5, 0.6, 0.7, 0.8, 0.9])
    top = session.run(TopKQuery(start=0, end=matrix.length,
                                window=240, step=24, k=10))

The session's planner memoizes basic-window sketches across queries, so the
sweep above builds the γ·N² statistics exactly once, and every result —
whatever its query type — implements the same minimal protocol
(``describe``/``num_windows``/``iter_windows``/``to_edges``) consumed by the
network builders, the report helpers and the CLI.
"""

from repro.api.planner import (
    KIND_LAGGED,
    KIND_THRESHOLD,
    KIND_TOPK,
    ExecutionPlan,
    QueryPlanner,
)
from repro.api.queries import LaggedQuery, ThresholdQuery, TopKQuery
from repro.api.results import (
    CorrelationResult,
    CorrelationSeriesResult,
    Edge,
    LaggedSeriesResult,
    TopKResult,
)
from repro.api.session import CorrelationSession

__all__ = [
    "CorrelationResult",
    "CorrelationSeriesResult",
    "CorrelationSession",
    "Edge",
    "ExecutionPlan",
    "KIND_LAGGED",
    "KIND_THRESHOLD",
    "KIND_TOPK",
    "LaggedQuery",
    "LaggedSeriesResult",
    "QueryPlanner",
    "ThresholdQuery",
    "TopKQuery",
]
