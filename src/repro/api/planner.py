"""Query planning: route a query spec to an engine and reuse sketches across queries.

The planner is the piece that makes the unified API a performance feature
rather than sugar.  Every sketch-based execution path declares the
:class:`~repro.core.basic_window.BasicWindowLayout` it needs (engines via
``plan_layout``, top-k via the same alignment rule), and the planner resolves
that layout against a shared :class:`~repro.storage.cache.SketchCache` — so a
threshold sweep, a top-k refinement of the same range, or a batch of queries
over one matrix all pay the dominant γ·N² sketch-build cost once.

Routing rules (see :meth:`QueryPlanner.plan`):

=====================  ============================================  ==========
query type             execution path                                sketch
=====================  ============================================  ==========
ThresholdQuery /       registered engine (default ``dangoron``)      shared when
plain SlidingQuery                                                   the engine
                                                                     plans a layout
TopKQuery              ``sliding_top_k`` over the sketch             shared
LaggedQuery            ``sliding_lagged_correlation`` (raw or        none
                       streamed window buffers)
=====================  ============================================  ==========

Every family additionally carries an *execution* decision: with
``workers=N`` configured, the planner shards the pair space across a worker
pool (:class:`repro.parallel.ShardedExecutor`) whenever the path supports
pair subsets and the pair count clears ``parallel_min_pairs`` — small
matrices stay serial because the dispatch overhead would dominate.  Sharded
results are bit-identical to serial ones.  When a requested strategy is
declined by policy the plan stays serial/dense and records the reason
(surfaced by ``ExecutionPlan.describe()``); a configuration that cannot be
honoured at all — e.g. a lagged ``memory_budget`` smaller than one window
buffer — raises :class:`~repro.exceptions.ExperimentError` naming the query
family, the requested strategy and the reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.api.queries import LaggedQuery, TopKQuery
from repro.api.results import LaggedSeriesResult
from repro.config import (
    DEFAULT_BASIC_WINDOW_SIZE,
    DEFAULT_PARALLEL_MIN_PAIRS,
    FLOAT_DTYPE,
)
from repro.core.basic_window import BasicWindowLayout
from repro.core.engine import (
    SlidingCorrelationEngine,
    accepts_sketch_kwarg,
    create_engine,
    engine_options,
)
from repro.exceptions import ExperimentError
from repro.core.lag import sliding_lagged_correlation
from repro.core.query import SlidingQuery
from repro.core.topk import sliding_top_k
from repro.parallel.executor import MODE_AUTO, ShardedExecutor
from repro.parallel.partition import pair_count
from repro.storage.cache import SketchCache
from repro.timeseries.matrix import TimeSeriesMatrix

#: Plan kinds (``ExecutionPlan.kind``).
KIND_THRESHOLD = "threshold"
KIND_TOPK = "topk"
KIND_LAGGED = "lagged"

#: Execution strategies (``ExecutionPlan.execution``).
EXECUTION_SERIAL = "serial"
EXECUTION_SHARDED = "sharded"

#: Sketch-build strategies (``ExecutionPlan.sketch_build``).
SKETCH_BUILD_DENSE = "dense"
SKETCH_BUILD_TILED = "tiled"
SKETCH_BUILD_INCREMENTAL = "incremental"


@dataclass(frozen=True)
class ExecutionPlan:
    """How one query will be executed: the path, the engine, the layout.

    ``layout`` is the basic-window layout the execution will recombine from
    (``None`` for paths that read the raw values); two plans with equal
    layouts over the same matrix share a sketch build.  ``execution`` is
    ``"sharded"`` when the pair space will be partitioned across ``workers``
    pool workers (threshold queries only; results stay bit-identical).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.api import QueryPlanner, ThresholdQuery
    >>> from repro.timeseries.matrix import TimeSeriesMatrix
    >>> matrix = TimeSeriesMatrix(np.random.default_rng(0).standard_normal((8, 128)))
    >>> plan = QueryPlanner(basic_window_size=16).plan(
    ...     matrix, ThresholdQuery(start=0, end=128, window=32, step=16, threshold=0.5))
    >>> plan.kind, plan.execution, plan.workers
    ('threshold', 'serial', 1)
    >>> plan.describe()
    'plan[threshold] engine=dangoron[temporal, b<=16] sketch=b=16 x 8 exec=serial'
    """

    query: SlidingQuery
    kind: str
    engine: Optional[SlidingCorrelationEngine] = None
    layout: Optional[BasicWindowLayout] = None
    execution: str = EXECUTION_SERIAL
    workers: int = 1
    sketch_build: str = SKETCH_BUILD_DENSE
    memory_budget: Optional[int] = None
    #: Why a *requested* strategy was declined (``None`` when nothing was
    #: declined): ``execution_reason`` explains a serial plan under
    #: ``workers > 1``, ``build_reason`` a dense build under a configured
    #: ``memory_budget`` or under an available append chain.  On an
    #: ``incremental`` plan ``build_reason`` is instead the *positive*
    #: justification (which chained prefix will be extended).  Surfaced by
    #: :meth:`describe` so no fallback is silent.
    execution_reason: Optional[str] = None
    build_reason: Optional[str] = None

    def describe(self) -> str:
        engine = self.engine.describe() if self.engine is not None else "-"
        layout = (
            f"b={self.layout.size} x {self.layout.count}"
            if self.layout is not None
            else "raw"
        )
        execution = self.execution
        if self.execution == EXECUTION_SHARDED:
            execution = f"{self.execution}(workers={self.workers})"
        if self.execution_reason:
            execution += f" ({self.execution_reason})"
        summary = f"plan[{self.kind}] engine={engine} sketch={layout} exec={execution}"
        if self.sketch_build == SKETCH_BUILD_INCREMENTAL:
            summary += f" build=incremental({self.build_reason})"
        elif self.sketch_build == SKETCH_BUILD_TILED:
            summary += f" build=tiled(budget={self.memory_budget}B)"
            if self.build_reason:
                summary += f" ({self.build_reason})"
        elif self.build_reason:
            summary += f" build=dense ({self.build_reason})"
        return summary


class QueryPlanner:
    """Routes query specs to execution paths and memoizes sketches across them.

    Parameters
    ----------
    engine:
        Name of the registered engine answering threshold queries (default
        ``"dangoron"``).
    engine_options:
        Constructor options for that engine (``slack``, ``num_pivots``,
        ``use_horizontal_pruning``, ...).  ``basic_window_size`` is injected
        automatically when the engine accepts it and the options don't set it.
    basic_window_size:
        Requested basic-window size for the injected option and for the
        top-k sketch alignment.
    sketch_cache:
        The shared :class:`SketchCache`; pass one to share sketches across
        planners/sessions, omit for a private cache.
    workers:
        When greater than 1, threshold queries over at least
        ``parallel_min_pairs`` series pairs execute sharded across this many
        pool workers (engines that support pair subsets only; results are
        bit-identical to serial runs).  ``None``/``1`` keeps every query
        serial.
    parallel_min_pairs:
        Pair-count floor below which sharding is not worth the dispatch
        overhead (default :data:`~repro.config.DEFAULT_PARALLEL_MIN_PAIRS`).
    parallel_mode:
        Pool flavour for sharded runs: ``"auto"`` (default; processes for
        large pair-window counts, threads otherwise), ``"process"`` or
        ``"thread"``.
    memory_budget:
        When set (bytes), sketch-building queries whose raw data exceeds the
        budget build their sketch **tiled** (:mod:`repro.core.tiled`):
        column tiles stream through a bounded buffer instead of reducing the
        dense matrix in one pass.  Tiled sketches are bit-identical to dense
        ones and cached under the same key; combined with a lazy
        chunk-backed matrix (``CorrelationSession.from_chunk_store``) the
        dense matrix is never materialized for aligned queries.  Lagged
        queries honour the budget by *streaming window buffers* out of the
        matrix's column-chunk source instead of building a sketch.
        Unaligned windows need the raw values and stay dense (the plan
        records the reason).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.api import QueryPlanner, ThresholdQuery
    >>> from repro.timeseries.matrix import TimeSeriesMatrix
    >>> matrix = TimeSeriesMatrix(np.random.default_rng(1).standard_normal((6, 96)))
    >>> planner = QueryPlanner(engine="tsubasa", basic_window_size=8)
    >>> result = planner.run(matrix, ThresholdQuery(
    ...     start=0, end=96, window=32, step=16, threshold=0.9))
    >>> result.num_windows
    5
    >>> planner.sketch_cache.builds      # the run built (and cached) one sketch
    1
    """

    def __init__(
        self,
        engine: str = "dangoron",
        engine_options: Optional[Dict[str, object]] = None,
        basic_window_size: int = DEFAULT_BASIC_WINDOW_SIZE,
        sketch_cache: Optional[SketchCache] = None,
        workers: Optional[int] = None,
        parallel_min_pairs: int = DEFAULT_PARALLEL_MIN_PAIRS,
        parallel_mode: str = MODE_AUTO,
        memory_budget: Optional[int] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ExperimentError(f"workers must be at least 1, got {workers}")
        if memory_budget is not None and memory_budget < 1:
            raise ExperimentError(
                f"memory_budget must be a positive byte count, got {memory_budget}"
            )
        self.engine_name = engine
        self.engine_options = dict(engine_options or {})
        self.basic_window_size = basic_window_size
        self.sketch_cache = sketch_cache if sketch_cache is not None else SketchCache()
        self.workers = workers
        self.parallel_min_pairs = parallel_min_pairs
        self.parallel_mode = parallel_mode
        self.memory_budget = memory_budget
        self._default_engine: Optional[SlidingCorrelationEngine] = None

    # ---------------------------------------------------------------- engines
    def resolve_engine(self) -> SlidingCorrelationEngine:
        """The (memoized) engine instance answering threshold queries."""
        if self._default_engine is None:
            options = dict(self.engine_options)
            accepted = engine_options(self.engine_name)
            if "basic_window_size" in accepted and "basic_window_size" not in options:
                options["basic_window_size"] = self.basic_window_size
            if (
                "memory_budget" in accepted
                and "memory_budget" not in options
                and self.memory_budget is not None
            ):
                # Engines that can bound their own working set (e.g. the
                # rolling-sums engine streaming window buffers) inherit the
                # planner's budget, like ``basic_window_size`` above.
                options["memory_budget"] = self.memory_budget
            self._default_engine = create_engine(self.engine_name, **options)
        return self._default_engine

    # ---------------------------------------------------------------- planning
    def plan(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        engine: Optional[SlidingCorrelationEngine] = None,
    ) -> ExecutionPlan:
        """Decide the execution path for one query (no side effects).

        ``engine`` overrides the planner's default for threshold queries —
        this is how the experiment harness runs its engine line-up through
        one shared sketch cache.  Top-k and lagged queries execute on fixed
        sketch/raw paths, so an engine override there would be silently
        ignored; it raises instead.
        """
        query.validate_against_length(matrix.length)
        if isinstance(query, (LaggedQuery, TopKQuery)) and engine is not None:
            raise ExperimentError(
                f"engine overrides apply to threshold queries only; "
                f"{type(query).__name__} has a fixed execution path"
            )
        if isinstance(query, LaggedQuery):
            execution, workers, execution_reason = self._execution_for(matrix, query)
            sketch_build, build_reason = self._lagged_build_for(matrix, query)
            return ExecutionPlan(
                query=query,
                kind=KIND_LAGGED,
                execution=execution,
                workers=workers,
                sketch_build=sketch_build,
                memory_budget=self.memory_budget,
                execution_reason=execution_reason,
                build_reason=build_reason,
            )
        if isinstance(query, TopKQuery):
            layout = BasicWindowLayout.for_query(query, self.basic_window_size)
            execution, workers, execution_reason = self._execution_for(
                matrix, query, layout=layout
            )
            sketch_build, build_reason = self._sketch_build_for(matrix, layout, query)
            return ExecutionPlan(
                query=query,
                kind=KIND_TOPK,
                layout=layout,
                execution=execution,
                workers=workers,
                sketch_build=sketch_build,
                memory_budget=self.memory_budget,
                execution_reason=execution_reason,
                build_reason=build_reason,
            )
        if engine is None:
            engine = self.resolve_engine()
        layout = engine.plan_layout(query)
        execution, workers, execution_reason = self._execution_for(
            matrix, query, layout=layout, engine=engine
        )
        sketch_build, build_reason = self._sketch_build_for(
            matrix, layout, query, engine=engine
        )
        return ExecutionPlan(
            query=query,
            kind=KIND_THRESHOLD,
            engine=engine,
            layout=layout,
            execution=execution,
            workers=workers,
            sketch_build=sketch_build,
            memory_budget=self.memory_budget,
            execution_reason=execution_reason,
            build_reason=build_reason,
        )

    def _execution_for(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        layout: Optional[BasicWindowLayout] = None,
        engine: Optional[SlidingCorrelationEngine] = None,
    ) -> tuple:
        """The ``(execution, workers, reason)`` decision for any query family.

        Serial is the default; a reason string is recorded only when workers
        were *requested* (``workers > 1``) and the planner declined, so
        ``plan.describe()`` names why instead of falling back silently.
        Declines here are policy (the serial run answers the query exactly);
        impossible configurations raise from the build decisions instead.
        """
        if self.workers is None or self.workers <= 1:
            return EXECUTION_SERIAL, 1, None
        if engine is not None and not engine.supports_pair_subset():
            return (
                EXECUTION_SERIAL,
                1,
                f"engine {engine.describe()} does not support pair subsets",
            )
        if pair_count(matrix.num_series) < self.parallel_min_pairs:
            return (
                EXECUTION_SERIAL,
                1,
                f"pair count below parallel_min_pairs={self.parallel_min_pairs}",
            )
        if not self._windows_sketch_aligned(layout, query):
            return EXECUTION_SERIAL, 1, "windows not basic-window aligned"
        return EXECUTION_SHARDED, self.workers, None

    def _sketch_build_for(
        self,
        matrix: TimeSeriesMatrix,
        layout: Optional[BasicWindowLayout],
        query: SlidingQuery,
        engine: Optional[SlidingCorrelationEngine] = None,
    ) -> tuple:
        """The ``(sketch_build, reason)`` decision for a planned layout.

        Incremental is preferred whenever it applies: the matrix heads an
        append chain (``SketchCache.extend_chain`` ran on it) and a chained
        cache entry covers a prefix of the planned layout, so the sketch
        refreshes in O(Δ) — bit-identical to a rebuild — instead of
        recomputing O(history) statistics.  The plan's ``build_reason`` then
        states *which* prefix is extended; when a chain exists but cannot
        serve the query (unaligned windows, raw-values engine, no chained
        entry for this layout) the decline is named instead of silently
        rebuilding.  Cold matrices (never appended) skip the incremental
        question entirely and keep their historic plan strings.

        Tiled is chosen only when it pays *and* suffices: a budget is
        configured, the raw data it would have to hold at once exceeds it,
        every query window recombines from whole basic windows (an unaligned
        window needs the raw matrix for edge correction anyway, so tiling
        the build would not bound the run's memory), and the engine
        configuration is sketch-only (``engine.needs_raw_values`` — e.g.
        Dangoron's pivot selection under horizontal pruning would
        materialize the matrix regardless, so such plans honestly stay
        dense instead of claiming a bounded build).  The reason names why a
        configured budget fell back to dense.
        """
        declined = None
        if layout is not None and self.sketch_cache.has_chain(matrix):
            if not self._windows_sketch_aligned(layout, query):
                declined = "incremental declined: unaligned windows read raw values"
            elif engine is not None and engine.needs_raw_values(query):
                declined = (
                    "incremental declined: engine needs raw values (pivot selection)"
                )
            else:
                coverage = self.sketch_cache.extension_coverage(matrix, layout)
                if coverage is None:
                    declined = (
                        "incremental declined: no chained sketch entry covers "
                        "a prefix of this layout"
                    )
                else:
                    return SKETCH_BUILD_INCREMENTAL, (
                        f"chained sketch covers {coverage}/{layout.count} "
                        f"basic windows"
                    )
        if self.memory_budget is None:
            return SKETCH_BUILD_DENSE, declined
        if layout is None:
            return SKETCH_BUILD_DENSE, "execution path plans no sketch layout"
        if not self._windows_sketch_aligned(layout, query):
            return SKETCH_BUILD_DENSE, self._joined(
                declined, "unaligned windows read raw values"
            )
        if engine is not None and engine.needs_raw_values(query):
            return SKETCH_BUILD_DENSE, self._joined(
                declined, "engine needs raw values (pivot selection)"
            )
        dense_bytes = matrix.num_series * matrix.length * np.dtype(FLOAT_DTYPE).itemsize
        if dense_bytes <= self.memory_budget:
            return SKETCH_BUILD_DENSE, self._joined(
                declined, "raw data fits the budget"
            )
        return SKETCH_BUILD_TILED, declined

    @staticmethod
    def _joined(declined: Optional[str], reason: str) -> str:
        """Stack an incremental decline on top of the dense-build reason."""
        if declined is None or declined.endswith(reason):
            return declined or reason
        return f"{declined}; {reason}"

    def _lagged_build_for(self, matrix: TimeSeriesMatrix, query: SlidingQuery) -> tuple:
        """The ``(sketch_build, reason)`` decision for a lagged query.

        Lagged queries never build a sketch (``layout=None``); ``tiled``
        here means *streamed window buffers*: windows assemble out of the
        matrix's column-chunk source into one bounded rolling buffer
        (:func:`repro.core.lag.iter_query_windows`) instead of slicing a
        resident array.  A budget that cannot even hold one ``(N, window)``
        buffer is impossible to honour, not a policy decline, and raises.
        """
        if self.memory_budget is None:
            return SKETCH_BUILD_DENSE, None
        window_bytes = (
            matrix.num_series * query.window * np.dtype(FLOAT_DTYPE).itemsize
        )
        if window_bytes > self.memory_budget:
            raise ExperimentError(
                f"lagged query cannot execute tiled (streamed windows) under "
                f"memory_budget={self.memory_budget}: one "
                f"({matrix.num_series}, {query.window}) window buffer needs "
                f"{window_bytes} bytes; raise the budget or shrink the window"
            )
        dense_bytes = matrix.num_series * matrix.length * np.dtype(FLOAT_DTYPE).itemsize
        if dense_bytes <= self.memory_budget:
            return SKETCH_BUILD_DENSE, "raw data fits the budget"
        return SKETCH_BUILD_TILED, None

    @staticmethod
    def _windows_sketch_aligned(
        layout: Optional[BasicWindowLayout], query: SlidingQuery
    ) -> bool:
        """Sharding gate: every window must recombine from whole basic windows.

        An unaligned window makes each shard fall back to the dense
        edge-corrected matrix (TSUBASA's arbitrary-window path), so sharding
        would *multiply* that window's work by the shard count instead of
        dividing it.  Such queries stay serial.
        """
        if layout is None:
            return True
        begin, end = query.window_bounds(0)
        return layout.is_aligned(begin, end) and query.step % layout.size == 0

    # --------------------------------------------------------------- execution
    def execute(self, matrix: TimeSeriesMatrix, plan: ExecutionPlan):
        """Run a plan, fetching (or building) its sketch from the shared cache."""
        sketch = None
        cache_hit = False
        if plan.layout is not None:
            hits_before = self.sketch_cache.stats.hits
            if plan.sketch_build == SKETCH_BUILD_INCREMENTAL:
                sketch = self.sketch_cache.get_or_extend(
                    matrix,
                    plan.layout,
                    memory_budget=plan.memory_budget,
                    workers=self.workers or 1,
                )
            elif plan.sketch_build == SKETCH_BUILD_TILED:
                sketch = self.sketch_cache.get_or_build_tiled(
                    matrix,
                    plan.layout,
                    memory_budget=plan.memory_budget,
                    workers=self.workers or 1,
                )
            else:
                sketch = self.sketch_cache.get_or_build(matrix, plan.layout)
            cache_hit = self.sketch_cache.stats.hits > hits_before

        if plan.kind == KIND_LAGGED:
            query: LaggedQuery = plan.query  # type: ignore[assignment]
            # "tiled" on a lagged plan means streamed window buffers; a dense
            # build slices the resident matrix and needs no budget.
            budget = (
                plan.memory_budget
                if plan.sketch_build == SKETCH_BUILD_TILED
                else None
            )
            if plan.execution == EXECUTION_SHARDED:
                executor = ShardedExecutor(
                    workers=plan.workers, mode=self.parallel_mode
                )
                windows = executor.run_lagged(
                    matrix,
                    query,
                    query.max_lag,
                    absolute=query.effective_absolute,
                    memory_budget=budget,
                )
            else:
                windows = sliding_lagged_correlation(
                    matrix,
                    query,
                    query.max_lag,
                    absolute=query.effective_absolute,
                    memory_budget=budget,
                )
            return LaggedSeriesResult(query, windows)

        if plan.kind == KIND_TOPK:
            query: TopKQuery = plan.query  # type: ignore[assignment]
            if plan.execution == EXECUTION_SHARDED:
                executor = ShardedExecutor(
                    workers=plan.workers, mode=self.parallel_mode
                )
                return executor.run_topk(
                    matrix,
                    query,
                    query.k,
                    basic_window_size=self.basic_window_size,
                    absolute=query.effective_absolute,
                    sketch=sketch,
                )
            return sliding_top_k(
                matrix,
                query,
                query.k,
                basic_window_size=self.basic_window_size,
                absolute=query.effective_absolute,
                sketch=sketch,
            )

        engine = plan.engine if plan.engine is not None else self.resolve_engine()
        if plan.execution == EXECUTION_SHARDED:
            if sketch is not None:
                self._check_accepts_sketch(engine)
            executor = ShardedExecutor(workers=plan.workers, mode=self.parallel_mode)
            result = executor.run(engine, matrix, plan.query, sketch=sketch)
            if sketch is not None and getattr(result, "stats", None) is not None:
                result.stats.extra["sketch_cache_hit"] = float(cache_hit)
            return result
        if sketch is not None:
            # plan_layout() returning a layout is the engine's declaration that
            # run() accepts a prebuilt sketch for it; surface a broken
            # declaration as a clear error instead of a raw TypeError.
            self._check_accepts_sketch(engine)
            result = engine.run(matrix, plan.query, sketch=sketch)
            if getattr(result, "stats", None) is not None:
                result.stats.extra["sketch_cache_hit"] = float(cache_hit)
            return result
        return engine.run(matrix, plan.query)

    @staticmethod
    def _check_accepts_sketch(engine: SlidingCorrelationEngine) -> None:
        """Raise :class:`ExperimentError` when ``run`` rejects ``sketch=...``.

        An engine whose :meth:`plan_layout` returns a layout promises that its
        ``run`` accepts the matching prebuilt sketch.  A subclass that breaks
        that promise (overrides ``plan_layout`` but keeps a sketch-less
        ``run``) used to surface as a raw ``TypeError`` from deep inside the
        call; this names the engine and the fix instead.
        """
        if not accepts_sketch_kwarg(engine):
            raise ExperimentError(
                f"engine {engine.name!r} ({type(engine).__name__}) planned a "
                f"basic-window layout but its run() does not accept the "
                f"prebuilt 'sketch' keyword; accept sketch=... in run() or "
                f"return None from plan_layout()"
            )

    def run(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        engine: Optional[SlidingCorrelationEngine] = None,
    ):
        """Plan and execute one query (the session's hot path)."""
        return self.execute(matrix, self.plan(matrix, query, engine=engine))
