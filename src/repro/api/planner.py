"""Query planning: route a query spec to an engine and reuse sketches across queries.

The planner is the piece that makes the unified API a performance feature
rather than sugar.  Every sketch-based execution path declares the
:class:`~repro.core.basic_window.BasicWindowLayout` it needs (engines via
``plan_layout``, top-k via the same alignment rule), and the planner resolves
that layout against a shared :class:`~repro.storage.cache.SketchCache` — so a
threshold sweep, a top-k refinement of the same range, or a batch of queries
over one matrix all pay the dominant γ·N² sketch-build cost once.

Routing rules (see :meth:`QueryPlanner.plan`):

=====================  ============================================  ==========
query type             execution path                                sketch
=====================  ============================================  ==========
ThresholdQuery /       registered engine (default ``dangoron``)      shared when
plain SlidingQuery                                                   the engine
                                                                     plans a layout
TopKQuery              ``sliding_top_k`` over the sketch             shared
LaggedQuery            ``sliding_lagged_correlation`` (raw or        none
                       streamed window buffers)
=====================  ============================================  ==========

Every family additionally carries an *execution* and a *build* decision —
serial vs sharded (and across how many workers), dense vs tiled (and at
what tile size) vs incremental.  Eligibility is still gated by hard policy
(an engine must support pair subsets to shard; unaligned windows read raw
values; a budget below the data forbids a dense build), but among the
*eligible* candidates the planner now ranks by **predicted wall cost**: a
:class:`~repro.api.cost.CostModel` (micro-benchmark calibrated, or the
committed fixture under ``REPRO_COST_CALIBRATION=off``) prices every
candidate, and once the shared :class:`~repro.api.cost.FeedbackStore` has
observed every candidate of a decision often enough, observed runtimes
replace the calibrated guesses (``plan.describe()`` then says
``source=feedback(n=...)``).  Chosen or declined, the plan string names the
costs and reasons — no fallback is silent.  Sharded and tiled results are
bit-identical to serial/dense ones, so the ranking is free to pick any
eligible candidate.  A configuration that cannot be honoured at all — e.g.
a lagged ``memory_budget`` smaller than one window buffer — raises
:class:`~repro.exceptions.ExperimentError` naming the query family, the
requested strategy and the reason.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api.cost import MIN_FEEDBACK_SAMPLES, CostModel, PlanWorkload
from repro.api.queries import LaggedQuery, TopKQuery
from repro.api.results import LaggedSeriesResult
from repro.config import (
    DEFAULT_BASIC_WINDOW_SIZE,
    DEFAULT_PARALLEL_MIN_PAIRS,
    FLOAT_DTYPE,
)
from repro.core.basic_window import BasicWindowLayout
from repro.core.engine import (
    SlidingCorrelationEngine,
    accepts_sketch_kwarg,
    create_engine,
    engine_options,
)
from repro.exceptions import ExperimentError
from repro.core.lag import sliding_lagged_correlation
from repro.core.query import SlidingQuery
from repro.core.topk import sliding_top_k
from repro.parallel.executor import MODE_AUTO, ShardedExecutor
from repro.parallel.partition import pair_count
from repro.storage.cache import SketchCache
from repro.timeseries.matrix import TimeSeriesMatrix

#: Plan kinds (``ExecutionPlan.kind``).
KIND_THRESHOLD = "threshold"
KIND_TOPK = "topk"
KIND_LAGGED = "lagged"

#: Execution strategies (``ExecutionPlan.execution``).
EXECUTION_SERIAL = "serial"
EXECUTION_SHARDED = "sharded"

#: Sketch-build strategies (``ExecutionPlan.sketch_build``).
SKETCH_BUILD_DENSE = "dense"
SKETCH_BUILD_TILED = "tiled"
SKETCH_BUILD_INCREMENTAL = "incremental"


@dataclass(frozen=True)
class ExecutionPlan:
    """How one query will be executed: the path, the engine, the layout.

    ``layout`` is the basic-window layout the execution will recombine from
    (``None`` for paths that read the raw values); two plans with equal
    layouts over the same matrix share a sketch build.  ``execution`` is
    ``"sharded"`` when the pair space will be partitioned across ``workers``
    pool workers (threshold queries only; results stay bit-identical).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.api import QueryPlanner, ThresholdQuery
    >>> from repro.timeseries.matrix import TimeSeriesMatrix
    >>> matrix = TimeSeriesMatrix(np.random.default_rng(0).standard_normal((8, 128)))
    >>> plan = QueryPlanner(basic_window_size=16).plan(
    ...     matrix, ThresholdQuery(start=0, end=128, window=32, step=16, threshold=0.5))
    >>> plan.kind, plan.execution, plan.workers
    ('threshold', 'serial', 1)
    >>> plan.describe()
    'plan[threshold] engine=dangoron[temporal, b<=16] sketch=b=16 x 8 exec=serial'
    """

    query: SlidingQuery
    kind: str
    engine: Optional[SlidingCorrelationEngine] = None
    layout: Optional[BasicWindowLayout] = None
    execution: str = EXECUTION_SERIAL
    workers: int = 1
    sketch_build: str = SKETCH_BUILD_DENSE
    memory_budget: Optional[int] = None
    #: Why a *requested* strategy was declined (``None`` when nothing was
    #: declined): ``execution_reason`` explains a serial plan under
    #: ``workers > 1``, ``build_reason`` a dense build under a configured
    #: ``memory_budget`` or under an available append chain.  On an
    #: ``incremental`` plan ``build_reason`` is instead the *positive*
    #: justification (which chained prefix will be extended).  Surfaced by
    #: :meth:`describe` (via the unified :meth:`reasons` list) so no
    #: fallback is silent.
    execution_reason: Optional[str] = None
    build_reason: Optional[str] = None
    #: Cost-ranking provenance, set by :meth:`QueryPlanner.plan` whenever a
    #: cost model ranked this plan: the predicted wall seconds, whether the
    #: prediction came from ``calibration`` or ``feedback(n=...)``, the
    #: rendered ranking (``cost_detail``, only on the chosen plan of a
    #: multi-candidate decision), and the feedback key ``execute`` records
    #: the observed wall time under.
    predicted_seconds: Optional[float] = None
    cost_source: Optional[str] = None
    cost_detail: Optional[str] = None
    cost_key: Optional[str] = None

    def reasons(self) -> Tuple[Tuple[str, str], ...]:
        """Every recorded decision reason, as ordered ``(stage, reason)`` pairs.

        The single source :meth:`describe` renders reasons from — execution
        first, then build — so neither annotation can shadow or drop the
        other however the plan was put together.
        """
        out = []
        if self.execution_reason:
            out.append(("execution", self.execution_reason))
        if self.build_reason:
            out.append(("build", self.build_reason))
        return tuple(out)

    def describe(self) -> str:
        engine = self.engine.describe() if self.engine is not None else "-"
        layout = (
            f"b={self.layout.size} x {self.layout.count}"
            if self.layout is not None
            else "raw"
        )
        reasons = dict(self.reasons())
        execution = self.execution
        if self.execution == EXECUTION_SHARDED:
            execution = f"{self.execution}(workers={self.workers})"
        if "execution" in reasons:
            execution += f" ({reasons['execution']})"
        summary = f"plan[{self.kind}] engine={engine} sketch={layout} exec={execution}"
        if self.sketch_build == SKETCH_BUILD_INCREMENTAL:
            summary += f" build=incremental({reasons.get('build')})"
        elif self.sketch_build == SKETCH_BUILD_TILED:
            summary += f" build=tiled(budget={self.memory_budget}B)"
            if "build" in reasons:
                summary += f" ({reasons['build']})"
        elif "build" in reasons:
            summary += f" build=dense ({reasons['build']})"
        if self.cost_detail:
            summary += f" cost: {self.cost_detail}, source={self.cost_source}"
        return summary


@dataclass
class _BuildOption:
    """One feasible sketch-build candidate, pre-costing."""

    build: str
    reason: Optional[str] = None
    tile_budget: Optional[int] = None
    #: Basic windows an incremental extension must append (0 elsewhere).
    delta_windows: int = 0


@dataclass
class _Candidate:
    """One feasible (execution, workers, build, tile) combination, costed."""

    execution: str
    workers: int
    build: str
    tile_budget: Optional[int]
    build_reason: Optional[str]
    key: str
    predicted: float
    cost: float


class QueryPlanner:
    """Routes query specs to execution paths and memoizes sketches across them.

    Parameters
    ----------
    engine:
        Name of the registered engine answering threshold queries (default
        ``"dangoron"``).
    engine_options:
        Constructor options for that engine (``slack``, ``num_pivots``,
        ``use_horizontal_pruning``, ...).  ``basic_window_size`` is injected
        automatically when the engine accepts it and the options don't set it.
    basic_window_size:
        Requested basic-window size for the injected option and for the
        top-k sketch alignment.
    sketch_cache:
        The shared :class:`SketchCache`; pass one to share sketches across
        planners/sessions, omit for a private cache.
    workers:
        When greater than 1, threshold queries over at least
        ``parallel_min_pairs`` series pairs execute sharded across this many
        pool workers (engines that support pair subsets only; results are
        bit-identical to serial runs).  ``None``/``1`` keeps every query
        serial.
    parallel_min_pairs:
        Pair-count floor below which sharding is not worth the dispatch
        overhead (default :data:`~repro.config.DEFAULT_PARALLEL_MIN_PAIRS`).
    parallel_mode:
        Pool flavour for sharded runs: ``"auto"`` (default; processes for
        large pair-window counts, threads otherwise), ``"process"`` or
        ``"thread"``.
    memory_budget:
        When set (bytes), sketch-building queries whose raw data exceeds the
        budget build their sketch **tiled** (:mod:`repro.core.tiled`):
        column tiles stream through a bounded buffer instead of reducing the
        dense matrix in one pass.  Tiled sketches are bit-identical to dense
        ones and cached under the same key; combined with a lazy
        chunk-backed matrix (``CorrelationSession.from_chunk_store``) the
        dense matrix is never materialized for aligned queries.  Lagged
        queries honour the budget by *streaming window buffers* out of the
        matrix's column-chunk source instead of building a sketch.
        Unaligned windows need the raw values and stay dense (the plan
        records the reason).
    cost_model:
        The :class:`~repro.api.cost.CostModel` ranking eligible candidates.
        Defaults to the per-process shared model (micro-benchmark
        calibrated, or the committed fixture under
        ``REPRO_COST_CALIBRATION=off``); inject one to force deterministic
        decisions in tests.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.api import QueryPlanner, ThresholdQuery
    >>> from repro.timeseries.matrix import TimeSeriesMatrix
    >>> matrix = TimeSeriesMatrix(np.random.default_rng(1).standard_normal((6, 96)))
    >>> planner = QueryPlanner(engine="tsubasa", basic_window_size=8)
    >>> result = planner.run(matrix, ThresholdQuery(
    ...     start=0, end=96, window=32, step=16, threshold=0.9))
    >>> result.num_windows
    5
    >>> planner.sketch_cache.builds      # the run built (and cached) one sketch
    1
    """

    def __init__(
        self,
        engine: str = "dangoron",
        engine_options: Optional[Dict[str, object]] = None,
        basic_window_size: int = DEFAULT_BASIC_WINDOW_SIZE,
        sketch_cache: Optional[SketchCache] = None,
        workers: Optional[int] = None,
        parallel_min_pairs: int = DEFAULT_PARALLEL_MIN_PAIRS,
        parallel_mode: str = MODE_AUTO,
        memory_budget: Optional[int] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ExperimentError(f"workers must be at least 1, got {workers}")
        if memory_budget is not None and memory_budget < 1:
            raise ExperimentError(
                f"memory_budget must be a positive byte count, got {memory_budget}"
            )
        self.engine_name = engine
        self.engine_options = dict(engine_options or {})
        self.basic_window_size = basic_window_size
        self.sketch_cache = sketch_cache if sketch_cache is not None else SketchCache()
        self.workers = workers
        self.parallel_min_pairs = parallel_min_pairs
        self.parallel_mode = parallel_mode
        self.memory_budget = memory_budget
        self.cost_model = cost_model
        self._default_engine: Optional[SlidingCorrelationEngine] = None

    # ---------------------------------------------------------------- engines
    def resolve_engine(self) -> SlidingCorrelationEngine:
        """The (memoized) engine instance answering threshold queries."""
        if self._default_engine is None:
            options = dict(self.engine_options)
            accepted = engine_options(self.engine_name)
            if "basic_window_size" in accepted and "basic_window_size" not in options:
                options["basic_window_size"] = self.basic_window_size
            if (
                "memory_budget" in accepted
                and "memory_budget" not in options
                and self.memory_budget is not None
            ):
                # Engines that can bound their own working set (e.g. the
                # rolling-sums engine streaming window buffers) inherit the
                # planner's budget, like ``basic_window_size`` above.
                options["memory_budget"] = self.memory_budget
            self._default_engine = create_engine(self.engine_name, **options)
        return self._default_engine

    def _resolve_cost_model(self) -> CostModel:
        """The planner's cost model, defaulting to the per-process one."""
        if self.cost_model is None:
            self.cost_model = CostModel.shared()
        return self.cost_model

    # ---------------------------------------------------------------- planning
    def plan(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        engine: Optional[SlidingCorrelationEngine] = None,
    ) -> ExecutionPlan:
        """Decide the execution path for one query (no side effects).

        The decision is the cheapest member of :meth:`candidate_plans`:
        hard eligibility gates prune the candidate set (with the decline
        reasons recorded on the plan), and predicted wall cost — observed
        runtimes once the feedback store has seen every candidate — ranks
        what remains.

        ``engine`` overrides the planner's default for threshold queries —
        this is how the experiment harness runs its engine line-up through
        one shared sketch cache.  Top-k and lagged queries execute on fixed
        sketch/raw paths, so an engine override there would be silently
        ignored; it raises instead.
        """
        return self.candidate_plans(matrix, query, engine=engine)[0]

    def candidate_plans(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        engine: Optional[SlidingCorrelationEngine] = None,
    ) -> List[ExecutionPlan]:
        """Every eligible candidate plan for one query, cheapest first.

        All candidates answer the query bit-identically; they differ only
        in predicted wall cost (``predicted_seconds`` / ``cost_source``,
        with the rendered ranking on the chosen plan's ``cost_detail``).
        The explore phase of the planner-quality benchmark executes each
        one to feed the :class:`~repro.api.cost.FeedbackStore`.
        """
        query.validate_against_length(matrix.length)
        if isinstance(query, (LaggedQuery, TopKQuery)) and engine is not None:
            raise ExperimentError(
                f"engine overrides apply to threshold queries only; "
                f"{type(query).__name__} has a fixed execution path"
            )
        if isinstance(query, LaggedQuery):
            kind, layout, engine_obj = KIND_LAGGED, None, None
            builds = self._lagged_build_options(matrix, query)
        elif isinstance(query, TopKQuery):
            kind, engine_obj = KIND_TOPK, None
            layout = BasicWindowLayout.for_query(query, self.basic_window_size)
            builds = self._build_options(matrix, layout, query)
        else:
            kind = KIND_THRESHOLD
            engine_obj = engine if engine is not None else self.resolve_engine()
            layout = engine_obj.plan_layout(query)
            builds = self._build_options(matrix, layout, query, engine=engine_obj)
        executions, execution_reason = self._execution_options(
            matrix, query, layout=layout, engine=engine_obj
        )
        return self._ranked_plans(
            matrix, query, kind, layout, engine_obj, builds, executions,
            execution_reason,
        )

    def _ranked_plans(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        kind: str,
        layout: Optional[BasicWindowLayout],
        engine: Optional[SlidingCorrelationEngine],
        builds: List[_BuildOption],
        executions: List[Tuple[str, int]],
        execution_reason: Optional[str],
    ) -> List[ExecutionPlan]:
        """Cost every (build x execution) combination and sort cheapest first.

        Ties keep enumeration order (builds outer: incremental before
        dense/tiled; executions inner: serial before sharded), which is how
        a fully-cached sketch still plans ``incremental`` — both prepare
        for free, and the historic preference breaks the tie.

        The ranking source is ``calibration`` until the feedback store
        holds :data:`~repro.api.cost.MIN_FEEDBACK_SAMPLES` observations for
        *every* candidate key; from then on observed means (blended with
        the calibrated prior) rank the candidates and the plans say
        ``source=feedback(n=...)``.  Partial coverage never mixes sources —
        an observed mean is not comparable to a calibrated guess.
        """
        model = self._resolve_cost_model()
        feedback = self.sketch_cache.feedback
        itemsize = np.dtype(FLOAT_DTYPE).itemsize
        pairs = pair_count(matrix.num_series)
        data_bytes = matrix.num_series * matrix.length * itemsize
        cached = layout is not None and self.sketch_cache.contains(matrix, layout)
        sketch_elems = (
            matrix.num_series * layout.count * layout.size
            if layout is not None
            else 0
        )
        candidates: List[_Candidate] = []
        for option in builds:
            workload = PlanWorkload(
                kind=kind,
                pairs=pairs,
                windows=query.num_windows,
                lag_span=(2 * query.max_lag + 1) if kind == KIND_LAGGED else 1,
                sketch_elems=sketch_elems,
                delta_elems=(
                    matrix.num_series * option.delta_windows * layout.size
                    if layout is not None
                    else 0
                ),
                data_bytes=data_bytes,
                cached=cached,
            )
            if option.build == SKETCH_BUILD_INCREMENTAL:
                state = "prefix"
            elif layout is None:
                state = "raw"
            else:
                state = "warm" if cached else "cold"
            for execution, workers in executions:
                predicted = model.predict(
                    workload, execution, workers, option.build, option.tile_budget
                )
                key = self._feedback_key(
                    matrix, query, kind, engine, execution, workers, option, state
                )
                candidates.append(
                    _Candidate(
                        execution=execution,
                        workers=workers,
                        build=option.build,
                        tile_budget=option.tile_budget,
                        build_reason=option.reason,
                        key=key,
                        predicted=predicted,
                        cost=predicted,
                    )
                )
        observed = min(feedback.count(candidate.key) for candidate in candidates)
        if observed >= MIN_FEEDBACK_SAMPLES:
            source = f"feedback(n={observed})"
            for candidate in candidates:
                candidate.cost = feedback.blended(candidate.key, candidate.predicted)
        else:
            source = "calibration"
        ranked = sorted(candidates, key=lambda candidate: candidate.cost)
        detail = self._cost_detail(ranked) if len(ranked) > 1 else None
        plans = []
        for index, candidate in enumerate(ranked):
            budget = (
                candidate.tile_budget
                if candidate.build == SKETCH_BUILD_TILED
                and candidate.tile_budget is not None
                else self.memory_budget
            )
            plans.append(
                ExecutionPlan(
                    query=query,
                    kind=kind,
                    engine=engine,
                    layout=layout,
                    execution=candidate.execution,
                    workers=candidate.workers,
                    sketch_build=candidate.build,
                    memory_budget=budget,
                    execution_reason=execution_reason,
                    build_reason=candidate.build_reason,
                    predicted_seconds=candidate.cost,
                    cost_source=source,
                    cost_detail=detail if index == 0 else None,
                    cost_key=candidate.key,
                )
            )
        return plans

    @staticmethod
    def _cost_detail(ranked: List[_Candidate]) -> str:
        """The rendered ranking, cheapest first: ``sharded(4w)=0.8s < serial=2.1s``."""
        multi_exec = len({(c.execution, c.workers) for c in ranked}) > 1
        multi_build = len({(c.build, c.tile_budget) for c in ranked}) > 1

        def label(candidate: _Candidate) -> str:
            exec_part = (
                f"sharded({candidate.workers}w)"
                if candidate.execution == EXECUTION_SHARDED
                else "serial"
            )
            build_part = candidate.build
            if (
                candidate.build == SKETCH_BUILD_TILED
                and candidate.tile_budget is not None
            ):
                build_part = f"tiled@{candidate.tile_budget}B"
            if multi_build and multi_exec:
                return f"{exec_part}+{build_part}"
            if multi_build:
                return build_part
            return exec_part

        return " < ".join(
            f"{label(candidate)}={candidate.cost:.3g}s" for candidate in ranked
        )

    def _feedback_key(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        kind: str,
        engine: Optional[SlidingCorrelationEngine],
        execution: str,
        workers: int,
        option: _BuildOption,
        state: str,
    ) -> str:
        """The key observed wall times are recorded under.

        Identifies the workload (family, sizes, engine) and the candidate
        (execution, workers, build, tile size) plus the sketch state at
        plan time (``cold``/``warm``/``prefix``/``raw``) — a cold build and
        a warm repeat are different workloads and must not share samples.
        Thresholds are deliberately absent: wall cost barely depends on
        them, and sweeps should pool their observations.
        """
        parts = [
            kind,
            f"N={matrix.num_series}",
            f"L={matrix.length}",
            f"range={query.start}:{query.end}",
            f"win={query.window}",
            f"step={query.step}",
        ]
        if kind == KIND_TOPK:
            parts.append(f"k={query.k}")
        if kind == KIND_LAGGED:
            parts.append(f"lag={query.max_lag}")
        if engine is not None:
            parts.append(f"engine={engine.name}")
        exec_part = (
            execution if execution == EXECUTION_SERIAL else f"{execution}@{workers}"
        )
        build_part = option.build
        if option.build == SKETCH_BUILD_TILED and option.tile_budget is not None:
            build_part = f"{option.build}@{option.tile_budget}"
        parts += [f"exec={exec_part}", f"build={build_part}", f"sketch={state}"]
        return "|".join(parts)

    def _execution_options(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        layout: Optional[BasicWindowLayout] = None,
        engine: Optional[SlidingCorrelationEngine] = None,
    ) -> Tuple[List[Tuple[str, int]], Optional[str]]:
        """Eligible ``(execution, workers)`` candidates plus the decline reason.

        Serial is always eligible.  Sharded variants join the candidate set
        — for the cost ranking to price, not as a foregone decision — only
        when workers were *requested* (``workers > 1``) and the hard gates
        pass; a failed gate records why, so ``plan.describe()`` names the
        decline instead of falling back silently.  Declines here are policy
        (the serial run answers the query exactly); impossible
        configurations raise from the build decisions instead.
        """
        serial: List[Tuple[str, int]] = [(EXECUTION_SERIAL, 1)]
        if self.workers is None or self.workers <= 1:
            return serial, None
        if engine is not None and not engine.supports_pair_subset():
            return serial, f"engine {engine.describe()} does not support pair subsets"
        if pair_count(matrix.num_series) < self.parallel_min_pairs:
            return (
                serial,
                f"pair count below parallel_min_pairs={self.parallel_min_pairs}",
            )
        if not self._windows_sketch_aligned(layout, query):
            return serial, "windows not basic-window aligned"
        return (
            serial + [(EXECUTION_SHARDED, w) for w in self._worker_candidates()],
            None,
        )

    def _worker_candidates(self) -> List[int]:
        """Worker counts worth pricing: the configured count and its half.

        Two points are enough for the ranking to notice when dispatch
        overhead beats parallel speedup at this workload's size; the
        feedback loop refines the choice from observed runs.
        """
        half = (self.workers or 1) // 2
        out = [half] if half > 1 and half != self.workers else []
        return out + [self.workers]

    def _build_options(
        self,
        matrix: TimeSeriesMatrix,
        layout: Optional[BasicWindowLayout],
        query: SlidingQuery,
        engine: Optional[SlidingCorrelationEngine] = None,
    ) -> List[_BuildOption]:
        """Feasible sketch-build candidates for a planned layout.

        Incremental joins the candidate set whenever it applies: the matrix
        heads an append chain (``SketchCache.extend_chain`` ran on it) and a
        chained cache entry covers a prefix of the planned layout, so the
        sketch refreshes in O(Δ) — bit-identical to a rebuild — instead of
        recomputing O(history) statistics.  Its reason states *which*
        prefix is extended; when a chain exists but cannot serve the query
        (unaligned windows, raw-values engine, no chained entry for this
        layout) the decline is named instead of silently rebuilding.  Cold
        matrices (never appended) skip the incremental question entirely
        and keep their historic plan strings.

        Tiled candidates appear only when tiling pays *and* suffices: a
        budget is configured, the raw data it would have to hold at once
        exceeds it (a dense build is then infeasible, not merely slower),
        every query window recombines from whole basic windows (an
        unaligned window needs the raw matrix for edge correction anyway,
        so tiling the build would not bound the run's memory), and the
        engine configuration is sketch-only (``engine.needs_raw_values`` —
        e.g. Dangoron's pivot selection under horizontal pruning would
        materialize the matrix regardless, so such plans honestly stay
        dense instead of claiming a bounded build).  The reason names why a
        configured budget fell back to dense; the cost ranking picks the
        tile size (:meth:`_tile_candidates`).
        """
        declined = None
        options: List[_BuildOption] = []
        if layout is not None and self.sketch_cache.has_chain(matrix):
            if not self._windows_sketch_aligned(layout, query):
                declined = "incremental declined: unaligned windows read raw values"
            elif engine is not None and engine.needs_raw_values(query):
                declined = (
                    "incremental declined: engine needs raw values (pivot selection)"
                )
            else:
                coverage = self.sketch_cache.extension_coverage(matrix, layout)
                if coverage is None:
                    declined = (
                        "incremental declined: no chained sketch entry covers "
                        "a prefix of this layout"
                    )
                else:
                    options.append(
                        _BuildOption(
                            build=SKETCH_BUILD_INCREMENTAL,
                            reason=(
                                f"chained sketch covers {coverage}/{layout.count} "
                                f"basic windows"
                            ),
                            delta_windows=layout.count - coverage,
                        )
                    )
        if self.memory_budget is None:
            options.append(_BuildOption(build=SKETCH_BUILD_DENSE, reason=declined))
            return options
        if layout is None:
            options.append(
                _BuildOption(
                    build=SKETCH_BUILD_DENSE,
                    reason="execution path plans no sketch layout",
                )
            )
            return options
        if not self._windows_sketch_aligned(layout, query):
            options.append(
                _BuildOption(
                    build=SKETCH_BUILD_DENSE,
                    reason=self._joined(
                        declined, "unaligned windows read raw values"
                    ),
                )
            )
            return options
        if engine is not None and engine.needs_raw_values(query):
            options.append(
                _BuildOption(
                    build=SKETCH_BUILD_DENSE,
                    reason=self._joined(
                        declined, "engine needs raw values (pivot selection)"
                    ),
                )
            )
            return options
        dense_bytes = matrix.num_series * matrix.length * np.dtype(FLOAT_DTYPE).itemsize
        if dense_bytes <= self.memory_budget:
            options.append(
                _BuildOption(
                    build=SKETCH_BUILD_DENSE,
                    reason=self._joined(declined, "raw data fits the budget"),
                )
            )
            return options
        options += [
            _BuildOption(build=SKETCH_BUILD_TILED, reason=declined, tile_budget=tile)
            for tile in self._tile_candidates(matrix, layout)
        ]
        return options

    def _tile_candidates(
        self, matrix: TimeSeriesMatrix, layout: BasicWindowLayout
    ) -> List[int]:
        """Tile sizes worth pricing: the full budget, and its half when that
        still holds one basic-window column block per series.  Fewer, larger
        tiles amortize per-tile overhead; the cost ranking decides."""
        budget = self.memory_budget
        floor = matrix.num_series * layout.size * np.dtype(FLOAT_DTYPE).itemsize
        half = budget // 2
        out = [budget]
        if half >= floor and half != budget:
            out.append(half)
        return out

    @staticmethod
    def _joined(declined: Optional[str], reason: str) -> str:
        """Stack an incremental decline on top of the dense-build reason."""
        if declined is None or declined.endswith(reason):
            return declined or reason
        return f"{declined}; {reason}"

    def _lagged_build_options(
        self, matrix: TimeSeriesMatrix, query: SlidingQuery
    ) -> List[_BuildOption]:
        """The sketch-build candidate for a lagged query.

        Lagged queries never build a sketch (``layout=None``); ``tiled``
        here means *streamed window buffers*: windows assemble out of the
        matrix's column-chunk source into one bounded rolling buffer
        (:func:`repro.core.lag.iter_query_windows`) instead of slicing a
        resident array.  The budget dictates the single feasible candidate
        — streaming when the data exceeds it, dense when it fits — so the
        cost ranking only prices the execution axis here.  A budget that
        cannot even hold one ``(N, window)`` buffer is impossible to
        honour, not a policy decline, and raises.
        """
        if self.memory_budget is None:
            return [_BuildOption(build=SKETCH_BUILD_DENSE, reason=None)]
        window_bytes = (
            matrix.num_series * query.window * np.dtype(FLOAT_DTYPE).itemsize
        )
        if window_bytes > self.memory_budget:
            raise ExperimentError(
                f"lagged query cannot execute tiled (streamed windows) under "
                f"memory_budget={self.memory_budget}: one "
                f"({matrix.num_series}, {query.window}) window buffer needs "
                f"{window_bytes} bytes; raise the budget or shrink the window"
            )
        dense_bytes = matrix.num_series * matrix.length * np.dtype(FLOAT_DTYPE).itemsize
        if dense_bytes <= self.memory_budget:
            return [
                _BuildOption(
                    build=SKETCH_BUILD_DENSE, reason="raw data fits the budget"
                )
            ]
        return [
            _BuildOption(
                build=SKETCH_BUILD_TILED,
                reason=None,
                tile_budget=self.memory_budget,
            )
        ]

    @staticmethod
    def _windows_sketch_aligned(
        layout: Optional[BasicWindowLayout], query: SlidingQuery
    ) -> bool:
        """Sharding gate: every window must recombine from whole basic windows.

        An unaligned window makes each shard fall back to the dense
        edge-corrected matrix (TSUBASA's arbitrary-window path), so sharding
        would *multiply* that window's work by the shard count instead of
        dividing it.  Such queries stay serial.
        """
        if layout is None:
            return True
        begin, end = query.window_bounds(0)
        return layout.is_aligned(begin, end) and query.step % layout.size == 0

    # --------------------------------------------------------------- execution
    def execute(self, matrix: TimeSeriesMatrix, plan: ExecutionPlan):
        """Run a plan, fetching (or building) its sketch from the shared cache.

        Closes the feedback loop: the observed wall time is recorded under
        the plan's ``cost_key`` in the cache's
        :class:`~repro.api.cost.FeedbackStore`, so repeated workloads rank
        future candidates by what actually happened on this machine.
        Hand-built plans (``cost_key=None``) run without recording.
        """
        started = time.perf_counter()
        result = self._run_plan(matrix, plan)
        if plan.cost_key is not None:
            self.sketch_cache.feedback.record(
                plan.cost_key, time.perf_counter() - started
            )
        return result

    def materialize_sketch(self, matrix: TimeSeriesMatrix, plan: ExecutionPlan):
        """Fetch (or build) the sketch a plan will recombine from.

        This is the exact sketch-acquisition step :meth:`execute` performs —
        honoring the plan's build strategy (incremental extension, tiled
        out-of-core, dense) against the shared cache — exposed so the service
        can materialize a plan's sketch once in the parent process and export
        it to an mmap-backed segment for the worker pool.  Returns ``None``
        for plans that read raw values (``plan.layout is None``).
        """
        if plan.layout is None:
            return None
        if plan.sketch_build == SKETCH_BUILD_INCREMENTAL:
            return self.sketch_cache.get_or_extend(
                matrix,
                plan.layout,
                memory_budget=plan.memory_budget,
                workers=self.workers or 1,
            )
        if plan.sketch_build == SKETCH_BUILD_TILED:
            return self.sketch_cache.get_or_build_tiled(
                matrix,
                plan.layout,
                memory_budget=plan.memory_budget,
                workers=self.workers or 1,
            )
        return self.sketch_cache.get_or_build(matrix, plan.layout)

    def _run_plan(self, matrix: TimeSeriesMatrix, plan: ExecutionPlan):
        """Dispatch one plan to its execution path (no feedback bookkeeping)."""
        cache_hit = False
        if plan.layout is not None:
            hits_before = self.sketch_cache.stats.hits
            sketch = self.materialize_sketch(matrix, plan)
            cache_hit = self.sketch_cache.stats.hits > hits_before
        else:
            sketch = None

        if plan.kind == KIND_LAGGED:
            query: LaggedQuery = plan.query  # type: ignore[assignment]
            # "tiled" on a lagged plan means streamed window buffers; a dense
            # build slices the resident matrix and needs no budget.
            budget = (
                plan.memory_budget
                if plan.sketch_build == SKETCH_BUILD_TILED
                else None
            )
            if plan.execution == EXECUTION_SHARDED:
                executor = ShardedExecutor(
                    workers=plan.workers, mode=self.parallel_mode
                )
                windows = executor.run_lagged(
                    matrix,
                    query,
                    query.max_lag,
                    absolute=query.effective_absolute,
                    memory_budget=budget,
                )
            else:
                windows = sliding_lagged_correlation(
                    matrix,
                    query,
                    query.max_lag,
                    absolute=query.effective_absolute,
                    memory_budget=budget,
                )
            return LaggedSeriesResult(query, windows)

        if plan.kind == KIND_TOPK:
            query: TopKQuery = plan.query  # type: ignore[assignment]
            if plan.execution == EXECUTION_SHARDED:
                executor = ShardedExecutor(
                    workers=plan.workers, mode=self.parallel_mode
                )
                return executor.run_topk(
                    matrix,
                    query,
                    query.k,
                    basic_window_size=self.basic_window_size,
                    absolute=query.effective_absolute,
                    sketch=sketch,
                )
            return sliding_top_k(
                matrix,
                query,
                query.k,
                basic_window_size=self.basic_window_size,
                absolute=query.effective_absolute,
                sketch=sketch,
            )

        engine = plan.engine if plan.engine is not None else self.resolve_engine()
        if plan.execution == EXECUTION_SHARDED:
            if sketch is not None:
                self._check_accepts_sketch(engine)
            executor = ShardedExecutor(workers=plan.workers, mode=self.parallel_mode)
            result = executor.run(engine, matrix, plan.query, sketch=sketch)
            if sketch is not None and getattr(result, "stats", None) is not None:
                result.stats.extra["sketch_cache_hit"] = float(cache_hit)
            return result
        if sketch is not None:
            # plan_layout() returning a layout is the engine's declaration that
            # run() accepts a prebuilt sketch for it; surface a broken
            # declaration as a clear error instead of a raw TypeError.
            self._check_accepts_sketch(engine)
            result = engine.run(matrix, plan.query, sketch=sketch)
            if getattr(result, "stats", None) is not None:
                result.stats.extra["sketch_cache_hit"] = float(cache_hit)
            return result
        return engine.run(matrix, plan.query)

    @staticmethod
    def _check_accepts_sketch(engine: SlidingCorrelationEngine) -> None:
        """Raise :class:`ExperimentError` when ``run`` rejects ``sketch=...``.

        An engine whose :meth:`plan_layout` returns a layout promises that its
        ``run`` accepts the matching prebuilt sketch.  A subclass that breaks
        that promise (overrides ``plan_layout`` but keeps a sketch-less
        ``run``) used to surface as a raw ``TypeError`` from deep inside the
        call; this names the engine and the fix instead.
        """
        if not accepts_sketch_kwarg(engine):
            raise ExperimentError(
                f"engine {engine.name!r} ({type(engine).__name__}) planned a "
                f"basic-window layout but its run() does not accept the "
                f"prebuilt 'sketch' keyword; accept sketch=... in run() or "
                f"return None from plan_layout()"
            )

    def run(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        engine: Optional[SlidingCorrelationEngine] = None,
    ):
        """Plan and execute one query (the session's hot path)."""
        return self.execute(matrix, self.plan(matrix, query, engine=engine))
