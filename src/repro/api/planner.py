"""Query planning: route a query spec to an engine and reuse sketches across queries.

The planner is the piece that makes the unified API a performance feature
rather than sugar.  Every sketch-based execution path declares the
:class:`~repro.core.basic_window.BasicWindowLayout` it needs (engines via
``plan_layout``, top-k via the same alignment rule), and the planner resolves
that layout against a shared :class:`~repro.storage.cache.SketchCache` — so a
threshold sweep, a top-k refinement of the same range, or a batch of queries
over one matrix all pay the dominant γ·N² sketch-build cost once.

Routing rules (see :meth:`QueryPlanner.plan`):

=====================  ============================================  ==========
query type             execution path                                sketch
=====================  ============================================  ==========
ThresholdQuery /       registered engine (default ``dangoron``)      shared when
plain SlidingQuery                                                   the engine
                                                                     plans a layout
TopKQuery              ``sliding_top_k`` over the sketch             shared
LaggedQuery            ``sliding_lagged_correlation`` (raw values)   none
=====================  ============================================  ==========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.api.queries import LaggedQuery, TopKQuery
from repro.api.results import LaggedSeriesResult
from repro.config import DEFAULT_BASIC_WINDOW_SIZE
from repro.core.basic_window import BasicWindowLayout
from repro.core.engine import (
    SlidingCorrelationEngine,
    create_engine,
    engine_options,
)
from repro.exceptions import ExperimentError
from repro.core.lag import sliding_lagged_correlation
from repro.core.query import SlidingQuery
from repro.core.topk import sliding_top_k
from repro.storage.cache import SketchCache
from repro.timeseries.matrix import TimeSeriesMatrix

#: Plan kinds (``ExecutionPlan.kind``).
KIND_THRESHOLD = "threshold"
KIND_TOPK = "topk"
KIND_LAGGED = "lagged"


@dataclass(frozen=True)
class ExecutionPlan:
    """How one query will be executed: the path, the engine, the layout.

    ``layout`` is the basic-window layout the execution will recombine from
    (``None`` for paths that read the raw values); two plans with equal
    layouts over the same matrix share a sketch build.
    """

    query: SlidingQuery
    kind: str
    engine: Optional[SlidingCorrelationEngine] = None
    layout: Optional[BasicWindowLayout] = None

    def describe(self) -> str:
        engine = self.engine.describe() if self.engine is not None else "-"
        layout = (
            f"b={self.layout.size} x {self.layout.count}"
            if self.layout is not None
            else "raw"
        )
        return f"plan[{self.kind}] engine={engine} sketch={layout}"


class QueryPlanner:
    """Routes query specs to execution paths and memoizes sketches across them.

    Parameters
    ----------
    engine:
        Name of the registered engine answering threshold queries (default
        ``"dangoron"``).
    engine_options:
        Constructor options for that engine (``slack``, ``num_pivots``,
        ``use_horizontal_pruning``, ...).  ``basic_window_size`` is injected
        automatically when the engine accepts it and the options don't set it.
    basic_window_size:
        Requested basic-window size for the injected option and for the
        top-k sketch alignment.
    sketch_cache:
        The shared :class:`SketchCache`; pass one to share sketches across
        planners/sessions, omit for a private cache.
    """

    def __init__(
        self,
        engine: str = "dangoron",
        engine_options: Optional[Dict[str, object]] = None,
        basic_window_size: int = DEFAULT_BASIC_WINDOW_SIZE,
        sketch_cache: Optional[SketchCache] = None,
    ) -> None:
        self.engine_name = engine
        self.engine_options = dict(engine_options or {})
        self.basic_window_size = basic_window_size
        self.sketch_cache = sketch_cache if sketch_cache is not None else SketchCache()
        self._default_engine: Optional[SlidingCorrelationEngine] = None

    # ---------------------------------------------------------------- engines
    def resolve_engine(self) -> SlidingCorrelationEngine:
        """The (memoized) engine instance answering threshold queries."""
        if self._default_engine is None:
            options = dict(self.engine_options)
            accepted = engine_options(self.engine_name)
            if "basic_window_size" in accepted and "basic_window_size" not in options:
                options["basic_window_size"] = self.basic_window_size
            self._default_engine = create_engine(self.engine_name, **options)
        return self._default_engine

    # ---------------------------------------------------------------- planning
    def plan(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        engine: Optional[SlidingCorrelationEngine] = None,
    ) -> ExecutionPlan:
        """Decide the execution path for one query (no side effects).

        ``engine`` overrides the planner's default for threshold queries —
        this is how the experiment harness runs its engine line-up through
        one shared sketch cache.  Top-k and lagged queries execute on fixed
        sketch/raw paths, so an engine override there would be silently
        ignored; it raises instead.
        """
        query.validate_against_length(matrix.length)
        if isinstance(query, (LaggedQuery, TopKQuery)) and engine is not None:
            raise ExperimentError(
                f"engine overrides apply to threshold queries only; "
                f"{type(query).__name__} has a fixed execution path"
            )
        if isinstance(query, LaggedQuery):
            return ExecutionPlan(query=query, kind=KIND_LAGGED)
        if isinstance(query, TopKQuery):
            layout = BasicWindowLayout.for_query(query, self.basic_window_size)
            return ExecutionPlan(query=query, kind=KIND_TOPK, layout=layout)
        if engine is None:
            engine = self.resolve_engine()
        return ExecutionPlan(
            query=query,
            kind=KIND_THRESHOLD,
            engine=engine,
            layout=engine.plan_layout(query),
        )

    # --------------------------------------------------------------- execution
    def execute(self, matrix: TimeSeriesMatrix, plan: ExecutionPlan):
        """Run a plan, fetching (or building) its sketch from the shared cache."""
        sketch = None
        cache_hit = False
        if plan.layout is not None:
            hits_before = self.sketch_cache.stats.hits
            sketch = self.sketch_cache.get_or_build(matrix, plan.layout)
            cache_hit = self.sketch_cache.stats.hits > hits_before

        if plan.kind == KIND_LAGGED:
            query: LaggedQuery = plan.query  # type: ignore[assignment]
            windows = sliding_lagged_correlation(
                matrix, query, query.max_lag, absolute=query.effective_absolute
            )
            return LaggedSeriesResult(query, windows)

        if plan.kind == KIND_TOPK:
            query: TopKQuery = plan.query  # type: ignore[assignment]
            return sliding_top_k(
                matrix,
                query,
                query.k,
                basic_window_size=self.basic_window_size,
                absolute=query.effective_absolute,
                sketch=sketch,
            )

        engine = plan.engine if plan.engine is not None else self.resolve_engine()
        if sketch is not None:
            # plan_layout() returning a layout is the engine's declaration that
            # run() accepts a prebuilt sketch for it.
            result = engine.run(matrix, plan.query, sketch=sketch)
            if getattr(result, "stats", None) is not None:
                result.stats.extra["sketch_cache_hit"] = float(cache_hit)
            return result
        return engine.run(matrix, plan.query)

    def run(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        engine: Optional[SlidingCorrelationEngine] = None,
    ):
        """Plan and execute one query (the session's hot path)."""
        return self.execute(matrix, self.plan(matrix, query, engine=engine))
