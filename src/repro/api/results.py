"""The unified result protocol shared by every query type.

Whatever the query — thresholded series, top-k, lagged — the answer supports
the same minimal interface, so the network builders, the report helpers and
the CLI consume any of them without type dispatch:

``describe() -> str``
    One-line human-readable summary.
``num_windows -> int``
    How many sliding windows the result covers.
``iter_windows() -> Iterator[(window_index, payload)]``
    The per-window payloads in window order (a ``ThresholdedMatrix``, a
    ``TopKWindow`` or a ``LagMatrices`` — still fully typed for consumers that
    want the specific view).
``to_edges() -> List[Edge]``
    The flattened ``(window, source, target, weight, lag)`` records — the
    lingua franca of :mod:`repro.network` and the exporters.

:class:`CorrelationSeriesResult`, :class:`TopKResult` and
:class:`LagMatrices` implement it natively (see their modules);
:class:`LaggedSeriesResult` here wraps the per-window lag matrices of a whole
:class:`~repro.api.queries.LaggedQuery` behind the same interface.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.api.queries import LaggedQuery
from repro.core.lag import LagMatrices
from repro.core.result import CorrelationSeriesResult, Edge  # noqa: F401  (re-export)
from repro.core.topk import TopKResult  # noqa: F401  (re-export)
from repro.exceptions import DataValidationError


@runtime_checkable
class CorrelationResult(Protocol):
    """Structural type of every answer a :class:`CorrelationSession` returns.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.api import CorrelationResult, CorrelationSession, TopKQuery
    >>> from repro.timeseries.matrix import TimeSeriesMatrix
    >>> matrix = TimeSeriesMatrix(
    ...     np.random.default_rng(11).standard_normal((4, 64)))
    >>> session = CorrelationSession(matrix, basic_window_size=8)
    >>> result = session.run(TopKQuery(start=0, end=64, window=32, step=16, k=2))
    >>> isinstance(result, CorrelationResult)    # runtime-checkable protocol
    True
    >>> [edge.window for edge in result.to_edges()]
    [0, 0, 1, 1, 2, 2]
    """

    @property
    def num_windows(self) -> int: ...

    def describe(self) -> str: ...

    def iter_windows(self) -> Iterator[Tuple[int, object]]: ...

    def to_edges(self) -> List[Edge]: ...


class LaggedSeriesResult:
    """The full answer to a :class:`LaggedQuery`: one lag matrix per window.

    Wraps the ``List[LagMatrices]`` the legacy free function returns behind
    the unified result protocol; ``to_edges()`` applies the query's threshold
    and mode, and every edge carries the lag at which its correlation peaks.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.api import CorrelationSession, LaggedQuery
    >>> from repro.timeseries.matrix import TimeSeriesMatrix
    >>> rng = np.random.default_rng(13)
    >>> leader = rng.standard_normal(128)
    >>> follower = np.roll(leader, 2)            # trails the leader by 2 steps
    >>> matrix = TimeSeriesMatrix(np.stack([leader, follower]))
    >>> session = CorrelationSession(matrix, basic_window_size=8)
    >>> result = session.run(LaggedQuery(start=0, end=128, window=64, step=32,
    ...                                  max_lag=3, threshold=0.9))
    >>> result.num_windows
    3
    >>> {edge.lag for edge in result.to_edges()}  # the true lag is recovered
    {2}
    """

    #: Wire-schema discriminator used by :mod:`repro.service.wire`.
    kind = "lagged"

    def __init__(self, query: LaggedQuery, windows: List[LagMatrices]) -> None:
        windows = list(windows)
        if len(windows) != query.num_windows:
            raise DataValidationError(
                f"expected {query.num_windows} lag matrices for the query, "
                f"got {len(windows)}"
            )
        self.query = query
        self.windows = windows

    # ------------------------------------------------------------------ access
    @property
    def num_windows(self) -> int:
        return len(self.windows)

    @property
    def num_series(self) -> int:
        if not self.windows:
            return 0
        return self.windows[0].num_series

    def __len__(self) -> int:
        return self.num_windows

    def __getitem__(self, k: int) -> LagMatrices:
        return self.windows[k]

    def __iter__(self) -> Iterator[LagMatrices]:
        return iter(self.windows)

    def lag_profile(self, i: int, j: int) -> np.ndarray:
        """Best lag of the pair ``(i, j)`` across the windows."""
        return np.array([w.best_lag[i, j] for w in self.windows])

    # ------------------------------------------------------- result protocol
    def iter_windows(self) -> Iterator[Tuple[int, LagMatrices]]:
        """Yield ``(window_index, payload)`` per window (result protocol)."""
        return ((w.window_index, w) for w in self.windows)

    def to_edges(self, threshold: Optional[float] = None) -> List[Edge]:
        """Above-threshold pairs of every window, each carrying its best lag.

        The query's threshold and mode apply by default; pass ``threshold``
        to flatten at a different cut without re-running the query.
        """
        effective = self.query.threshold if threshold is None else threshold
        edges: List[Edge] = []
        for window in self.windows:
            edges.extend(window.to_edges(effective, self.query.threshold_mode))
        return edges

    def total_edges(self) -> int:
        """Above-threshold pairs across all windows, without materializing them."""
        total = 0
        for window in self.windows:
            n = window.num_series
            iu, ju = np.triu_indices(n, k=1)
            values = window.best_corr[iu, ju]
            if self.query.threshold_mode == "absolute":
                total += int(np.count_nonzero(np.abs(values) >= self.query.threshold))
            else:
                total += int(np.count_nonzero(values >= self.query.threshold))
        return total

    def describe(self) -> str:
        """One-line summary used by reports (result protocol)."""
        return (
            f"lagged(max_lag={self.query.max_lag}): {self.num_windows} windows "
            f"x {self.num_series} series, {self.total_edges()} edges at "
            f"beta={self.query.threshold}"
        )
