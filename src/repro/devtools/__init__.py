"""repro.devtools — the ``repro-lint`` static invariant checker.

A stdlib-:mod:`ast` analysis framework with five codebase-specific rules:

========  ==================================================================
RPR001    exception discipline — no bare builtin raises in library code
RPR002    lazy-materialization guard — ``.values`` only on raw-path modules
RPR003    canonical-accumulation guard — stat reductions only in blessed
          helpers (bit-identity)
RPR004    engine-protocol conformance — ``pairs=`` support, signature shapes
RPR005    service lock discipline — ``# guarded-by:`` attributes mutate only
          under their lock
========  ==================================================================

Run it with ``python -m repro.devtools`` or ``python scripts/lint.py``;
the rule catalogue with rationale lives in ``docs/invariants.md``.
"""

from __future__ import annotations

from repro.devtools import rules as _rules  # registers RPR001-RPR005
from repro.devtools.config import DEFAULT_CONFIG, LintConfig
from repro.devtools.linter import (
    Baseline,
    BaselineDiff,
    Finding,
    LintRule,
    ModuleContext,
    available_rules,
    lint_paths,
    lint_source,
    module_path_for,
    register_rule,
)

__all__ = [
    "Baseline",
    "BaselineDiff",
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintRule",
    "ModuleContext",
    "available_rules",
    "lint_paths",
    "lint_source",
    "module_path_for",
    "register_rule",
]
