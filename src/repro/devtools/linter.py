"""The ``repro-lint`` engine: module loading, pragmas, baselines, rule dispatch.

Every invariant this reproduction sells — shard/tile results bit-identical to
serial, sketch-only runs that never materialize the dense matrix, a typed
error taxonomy at the API boundary, lock-guarded service state — is a
*discipline over source code*, not just a property of one execution.  The
property suites only catch a violation when a test happens to execute the
offending path; this module catches it at parse time, on every path.

The framework is deliberately stdlib-only (:mod:`ast`, no third-party
parsers) so the lint can run before any scientific dependency is importable:

* :class:`ModuleContext` — one parsed source file plus its pragma table,
* :class:`LintRule` / :func:`register_rule` — the pluggable rule registry
  (rules live in :mod:`repro.devtools.rules`),
* :func:`lint_paths` / :func:`lint_source` — run every selected rule and
  filter findings through ``# repro-lint: disable=RPRxxx`` pragmas,
* :class:`Baseline` — the committed ledger of grandfathered findings, so the
  CLI fails only on *new* violations.

See ``docs/invariants.md`` for the catalogue of rule codes and the
invariants they protect.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from repro.exceptions import LintError

#: Code used for findings produced by the framework itself (malformed or
#: unjustified pragmas), as opposed to the registered RPR001+ rules.
META_CODE = "RPR000"

#: ``# repro-lint: disable=RPR001,RPR002 -- justification`` — the justification
#: (anything after ``--``) is mandatory; a bare disable is itself a finding.
_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<reason>.*))?$"
)

#: Directory names that anchor a stable module path: the part of an absolute
#: file path from the *last* occurrence of one of these segments onward is
#: what allowlists, baselines and reports use, so they are identical across
#: checkouts (and across tmp-dir test fixtures that mimic the tree).
_ANCHOR_SEGMENTS = ("repro", "scripts", "benchmarks", "examples", "tests")


def module_path_for(path: Path) -> str:
    """The stable, checkout-independent identity of a source file.

    ``/home/x/repo/src/repro/core/sketch.py`` → ``repro/core/sketch.py``;
    ``/home/x/repo/scripts/lint.py`` → ``scripts/lint.py``.  Paths outside
    every anchor segment fall back to their file name.
    """
    parts = path.resolve().parts
    for anchor in _ANCHOR_SEGMENTS:
        if anchor in parts:
            index = len(parts) - 1 - parts[::-1].index(anchor)
            return "/".join(parts[index:])
    return path.name


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    module: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.module}:{self.line}:{self.col}: {self.code} {self.message}"

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline.

        Leaving the line number out keeps a grandfathered finding recognized
        when unrelated edits move it; the message (which names the offending
        construct) disambiguates within a file.
        """
        digest = hashlib.sha256(
            f"{self.module}::{self.code}::{self.message}".encode()
        ).hexdigest()[:16]
        return f"{self.module}::{self.code}::{digest}"


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# repro-lint: disable=...`` comment."""

    line: int
    codes: Tuple[str, ...]
    reason: Optional[str]


class ModuleContext:
    """One parsed module: tree, raw lines, pragmas, and AST parent links."""

    def __init__(self, source: str, module: str, path: Optional[Path] = None) -> None:
        self.module = module
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        try:
            self.tree = ast.parse(source)
        except SyntaxError as error:
            raise LintError(
                f"{module}:{error.lineno}: cannot lint a file that does not "
                f"parse: {error.msg}"
            ) from error
        self.pragmas: Dict[int, Pragma] = {}
        for number, text in enumerate(self.lines, start=1):
            match = _PRAGMA.search(text)
            if match is None:
                continue
            codes = tuple(
                code.strip().upper()
                for code in match.group("codes").split(",")
                if code.strip()
            )
            reason = match.group("reason")
            reason = reason.strip() if reason else None
            self.pragmas[number] = Pragma(line=number, codes=codes, reason=reason)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The chain of enclosing nodes, innermost first."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def line_comment(self, line: int) -> str:
        """The raw text of a source line (1-based; empty when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def disabled(self, code: str, line: int) -> bool:
        """Whether a pragma on this line suppresses findings of ``code``."""
        pragma = self.pragmas.get(line)
        return pragma is not None and code.upper() in pragma.codes


class LintRule:
    """Base class for registered rules.

    Subclasses set ``code`` (``RPRxxx``), ``name`` (short slug) and
    ``summary`` (one line for ``--list-rules``), and implement
    :meth:`check`, yielding :class:`Finding` objects.  Pragma filtering and
    baseline bookkeeping happen in the framework — rules report everything
    they see.
    """

    code: str = "RPR999"
    name: str = "abstract"
    summary: str = ""

    def check(self, context: ModuleContext, config) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, context: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            module=context.module,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


_RULE_REGISTRY: Dict[str, Type[LintRule]] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the registry under its ``code``."""
    if not re.fullmatch(r"RPR\d{3}", cls.code):
        raise LintError(f"rule code must look like RPR123, got {cls.code!r}")
    existing = _RULE_REGISTRY.get(cls.code)
    if existing is not None and existing is not cls:
        same_definition = (
            existing.__module__ == cls.__module__
            and existing.__qualname__ == cls.__qualname__
        )
        if not same_definition:
            raise LintError(
                f"rule code {cls.code} is already registered to "
                f"{existing.__name__}"
            )
    _RULE_REGISTRY[cls.code] = cls
    return cls


def available_rules() -> Dict[str, Type[LintRule]]:
    """Mapping of registered rule codes to their classes (copy, sorted keys)."""
    return {code: _RULE_REGISTRY[code] for code in sorted(_RULE_REGISTRY)}


def _meta_findings(context: ModuleContext) -> Iterator[Finding]:
    """Framework findings about the pragmas themselves.

    A ``disable`` pragma with no ``-- reason`` is flagged (suppressions must
    be justified in place), as is one naming a code no registered rule owns
    (it suppresses nothing and usually means a typo).
    """
    for pragma in context.pragmas.values():
        if not pragma.reason:
            yield Finding(
                module=context.module,
                line=pragma.line,
                col=0,
                code=META_CODE,
                message=(
                    "repro-lint disable pragma without a justification; "
                    "append ' -- <reason>'"
                ),
            )
        for code in pragma.codes:
            if code != META_CODE and code not in _RULE_REGISTRY:
                yield Finding(
                    module=context.module,
                    line=pragma.line,
                    col=0,
                    code=META_CODE,
                    message=f"pragma disables unknown rule code {code}",
                )


def lint_context(
    context: ModuleContext, config=None, codes: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run the selected rules over one parsed module, honouring pragmas."""
    from repro.devtools.config import LintConfig

    if config is None:
        config = LintConfig()
    selected = available_rules()
    if codes is not None:
        unknown = sorted(set(code.upper() for code in codes) - set(selected))
        if unknown:
            raise LintError(
                f"unknown rule codes {unknown}; available: {sorted(selected)}"
            )
        selected = {
            code: cls for code, cls in selected.items() if code in
            {c.upper() for c in codes}
        }
    findings: List[Finding] = []
    for cls in selected.values():
        for finding in cls().check(context, config):
            if not context.disabled(finding.code, finding.line):
                findings.append(finding)
    for finding in _meta_findings(context):
        if not context.disabled(finding.code, finding.line):
            findings.append(finding)
    findings.sort(key=lambda f: (f.module, f.line, f.col, f.code))
    return findings


def lint_source(
    source: str,
    module_path: str = "repro/example.py",
    config=None,
    codes: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint a source string as if it lived at ``module_path``.

    The module path decides which allowlists apply (e.g. a snippet under
    ``repro/baselines/`` may read raw values; one under ``repro/service/``
    may not), exactly as for on-disk files.

    Examples
    --------
    >>> from repro.devtools import lint_source
    >>> [f.code for f in lint_source("raise ValueError('bad')",
    ...                              module_path="repro/core/example.py")]
    ['RPR001']
    """
    context = ModuleContext(source, module=module_path)
    return lint_context(context, config=config, codes=codes)


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into the sorted list of ``.py`` files to lint."""
    files: List[Path] = []
    for path in paths:
        if not path.exists():
            raise LintError(f"lint path does not exist: {path}")
        if path.is_dir():
            files.extend(sorted(p for p in path.rglob("*.py") if p.is_file()))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise LintError(f"not a python file or directory: {path}")
    unique: List[Path] = []
    seen = set()
    for file in files:
        resolved = file.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(file)
    return unique


def lint_paths(
    paths: Sequence[Path], config=None, codes: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint every python file under the given files/directories."""
    findings: List[Finding] = []
    for file in collect_files(paths):
        source = file.read_text(encoding="utf-8")
        context = ModuleContext(source, module=module_path_for(file), path=file)
        findings.extend(lint_context(context, config=config, codes=codes))
    return findings


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

BASELINE_VERSION = 1

#: Default name of the committed baseline file (repo root).
BASELINE_FILENAME = ".repro-lint-baseline.json"


@dataclass
class BaselineDiff:
    """The comparison of a lint run against the committed baseline."""

    new: List[Finding] = field(default_factory=list)
    grandfathered: List[Finding] = field(default_factory=list)
    stale: List[str] = field(default_factory=list)


class Baseline:
    """The committed ledger of grandfathered findings.

    Maps finding fingerprints (see :attr:`Finding.fingerprint`) to the count
    of occurrences tolerated.  A lint run fails only on findings beyond the
    baselined counts; baseline entries that no longer occur are reported as
    *stale* so the ledger shrinks toward empty instead of rotting.
    """

    def __init__(self, entries: Optional[Dict[str, int]] = None) -> None:
        self.entries: Dict[str, int] = dict(entries or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise LintError(f"cannot read baseline {path}: {error}") from error
        if not isinstance(document, dict) or "findings" not in document:
            raise LintError(
                f"baseline {path} must be a JSON object with a 'findings' key"
            )
        entries = document["findings"]
        if not isinstance(entries, dict) or not all(
            isinstance(v, int) and v > 0 for v in entries.values()
        ):
            raise LintError(
                f"baseline {path} 'findings' must map fingerprints to "
                f"positive counts"
            )
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        entries: Dict[str, int] = {}
        for finding in findings:
            entries[finding.fingerprint] = entries.get(finding.fingerprint, 0) + 1
        return cls(entries)

    def write(self, path: Path) -> None:
        document = {
            "version": BASELINE_VERSION,
            "comment": (
                "Grandfathered repro-lint findings. Entries map finding "
                "fingerprints to tolerated counts; the goal state is empty. "
                "Regenerate with: python scripts/lint.py --write-baseline"
            ),
            "findings": {key: self.entries[key] for key in sorted(self.entries)},
        }
        path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")

    def diff(self, findings: Sequence[Finding]) -> BaselineDiff:
        """Split findings into new vs grandfathered, and spot stale entries."""
        remaining = dict(self.entries)
        result = BaselineDiff()
        for finding in findings:
            tolerated = remaining.get(finding.fingerprint, 0)
            if tolerated > 0:
                remaining[finding.fingerprint] = tolerated - 1
                result.grandfathered.append(finding)
            else:
                result.new.append(finding)
        result.stale = sorted(
            key for key, count in remaining.items() if count > 0
        )
        return result
