"""Configuration for the repro-lint rules: allowlists and blessed modules.

The defaults below encode the repository's actual discipline boundaries.
Tests construct ``LintConfig`` instances with shrunken allowlists to prove
that removing any single entry makes the lint fail (see
``tests/devtools/``), which is exactly the property that makes the lists
load-bearing rather than decorative.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import FrozenSet, Tuple


def _match(module: str, patterns: Tuple[str, ...]) -> bool:
    return any(fnmatch.fnmatch(module, pattern) for pattern in patterns)


@dataclass(frozen=True)
class LintConfig:
    """Tunable knobs for the rule set.  All fields have repo-true defaults."""

    # ------------------------------------------------------------------ RPR001
    #: Exception classes library code may not raise directly: every one has a
    #: typed replacement in :mod:`repro.exceptions`.
    banned_raises: FrozenSet[str] = frozenset(
        {"ValueError", "TypeError", "RuntimeError"}
    )

    #: Modules the exception-discipline rule applies to.  Scripts and
    #: benchmarks are included deliberately: they feed results into papers
    #: and CI, so their failures should speak the same taxonomy.
    rpr001_modules: Tuple[str, ...] = (
        "repro/*",
        "scripts/*",
        "benchmarks/*",
    )

    #: Modules exempt from RPR001 even though they match above.  ``conftest``
    #: and test helpers intentionally raise builtins to simulate failures.
    rpr001_exempt: Tuple[str, ...] = (
        "tests/*",
        "*/conftest.py",
    )

    # ------------------------------------------------------------------ RPR002
    #: Modules allowed to touch ``.values`` / ``._values`` on matrix objects.
    #: These are the *raw paths*: dense baselines, generators, dataset and
    #: streaming substrates — code that by construction needs the dense
    #: array.  Everything else (api, service, storage, parallel, the sketch
    #: core) must stay sketch-only so ``ChunkBackedMatrix`` runs never
    #: materialize; a legitimate dense fallback there carries a justified
    #: pragma instead.
    raw_value_modules: Tuple[str, ...] = (
        "repro/baselines/*",
        "repro/core/dangoron.py",
        "repro/core/topk.py",
        "repro/core/lag.py",
        "repro/core/incremental.py",
        "repro/core/jumping.py",
        "repro/core/horizontal.py",
        "repro/core/basic_window.py",
        "repro/core/correlation.py",
        "repro/datasets/*",
        "repro/tomborg/*",
        "repro/analysis/*",
        "repro/network/*",
        "repro/timeseries/*",
        "repro/streaming/*",
        "repro/experiments/*",
        "benchmarks/*",
        "scripts/*",
        "examples/*",
        "tests/*",
    )

    #: Variable / attribute name shapes treated as "a matrix object" by the
    #: RPR002 heuristic.  A name matches when it is exactly ``matrix`` or
    #: ends in ``_matrix`` (covers ``self.matrix``, ``workload.matrix``,
    #: ``chunk_matrix`` …).
    matrix_name_suffixes: Tuple[str, ...] = ("matrix",)

    #: Type annotations that mark a parameter as a matrix regardless of name.
    matrix_type_names: FrozenSet[str] = frozenset(
        {"TimeSeriesMatrix", "ChunkBackedMatrix"}
    )

    # ------------------------------------------------------------------ RPR003
    #: The only modules allowed to run reductions over pair-window statistic
    #: arrays.  Their helpers force the canonical contiguous layout first,
    #: which is what makes shard/tile results bit-identical to serial runs
    #: (docs/invariants.md tells the ulp-divergence story).
    blessed_accumulation_modules: Tuple[str, ...] = (
        "repro/core/sketch.py",
        "repro/core/tiled.py",
    )

    #: Identifier substrings that mark an expression as a pair-window
    #: statistic.  Matched against every Name/Attribute inside the reduction
    #: call, so ``np.dot(pair_sumprods, w)`` and
    #: ``stats.series_sums.sum(axis=0)`` both register.
    stat_name_markers: FrozenSet[str] = frozenset(
        {
            "series_sums",
            "series_sumsqs",
            "pair_sumprods",
            "pair_corrs",
            "corr_prefix",
            "sumprod_prefix",
        }
    )

    #: numpy reduction entry points RPR003 watches (attribute name on the
    #: ``np`` module, or method name when called on an array expression).
    reduction_functions: FrozenSet[str] = frozenset(
        {"einsum", "dot", "matmul", "tensordot", "inner", "vdot"}
    )
    reduction_methods: FrozenSet[str] = frozenset({"sum", "dot", "mean", "cumsum"})

    # ------------------------------------------------------------------ RPR004
    #: Required parameter shapes for the engine protocol, keyed by method
    #: name.  Checked on any class that looks like an engine (defines
    #: ``run`` and at least one other protocol method, or subclasses
    #: ``CorrelationEngine``).
    engine_protocol: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
        ("plan_layout", ("self", "query")),
        ("needs_raw_values", ("self", "query")),
    )

    # ------------------------------------------------------------------ RPR005
    #: Modules where ``# guarded-by: <lock>`` annotations are enforced.
    lock_discipline_modules: Tuple[str, ...] = (
        "repro/api/cost.py",
        "repro/service/service.py",
        "repro/service/workers.py",
        "repro/storage/cache.py",
    )

    #: Method names that mutate their receiver; calling one on a guarded
    #: attribute counts as a write and needs the lock held.
    mutator_methods: FrozenSet[str] = frozenset(
        {
            "append",
            "add",
            "clear",
            "discard",
            "extend",
            "insert",
            "move_to_end",
            "pop",
            "popitem",
            "remove",
            "setdefault",
            "sort",
            "update",
            "record",
        }
    )

    # ------------------------------------------------------------------ helpers
    def rpr001_applies(self, module: str) -> bool:
        return _match(module, self.rpr001_modules) and not _match(
            module, self.rpr001_exempt
        )

    def raw_values_allowed(self, module: str) -> bool:
        return _match(module, self.raw_value_modules)

    def accumulation_blessed(self, module: str) -> bool:
        return _match(module, self.blessed_accumulation_modules)

    def lock_discipline_applies(self, module: str) -> bool:
        return _match(module, self.lock_discipline_modules)

    def is_matrix_name(self, name: str) -> bool:
        lowered = name.lower()
        return any(
            lowered == suffix or lowered.endswith("_" + suffix)
            for suffix in self.matrix_name_suffixes
        )


#: Shared default instance used by the CLI when no overrides are given.
DEFAULT_CONFIG = LintConfig()

__all__ = ["LintConfig", "DEFAULT_CONFIG"]
