"""The five repro-lint rules (RPR001–RPR005).

Each rule is a small AST visitor registered with the framework in
:mod:`repro.devtools.linter`.  The rules encode this repository's actual
disciplines — see ``docs/invariants.md`` for the catalogue with the
incident history behind each one.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.config import LintConfig
from repro.devtools.linter import (
    Finding,
    LintRule,
    ModuleContext,
    register_rule,
)

# ---------------------------------------------------------------------------
# RPR001 — exception discipline
# ---------------------------------------------------------------------------


@register_rule
class ExceptionDisciplineRule(LintRule):
    """Library code must raise the typed taxonomy, not bare builtins.

    ``raise ValueError(...)`` at an API boundary forces every caller to
    catch a type that numpy, json and the stdlib also raise, so callers
    cannot tell "you built the query wrong" from "a dependency blew up".
    The taxonomy in :mod:`repro.exceptions` keeps those distinguishable.
    """

    code = "RPR001"
    name = "exception-discipline"
    summary = (
        "no bare ValueError/TypeError/RuntimeError raises in library code; "
        "use the repro.exceptions taxonomy"
    )

    def check(self, context: ModuleContext, config: LintConfig) -> Iterator[Finding]:
        if not config.rpr001_applies(context.module):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = _raised_name(node.exc)
            if name in config.banned_raises:
                yield self.finding(
                    context,
                    node,
                    f"raises bare {name}; use the typed taxonomy from "
                    f"repro.exceptions (DataValidationError, StorageError, "
                    f"ServiceError, ExperimentError, ...)",
                )


def _raised_name(exc: ast.expr) -> Optional[str]:
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


# ---------------------------------------------------------------------------
# RPR002 — lazy-materialization guard
# ---------------------------------------------------------------------------


@register_rule
class LazyMaterializationRule(LintRule):
    """No ``.values``/``._values`` on matrix objects outside raw-path modules.

    ``ChunkBackedMatrix.values`` materializes the full dense array on first
    touch.  A single stray access on a planner or service path silently
    converts an out-of-core run into an in-core one — the run still
    *succeeds*, just with the memory profile the budget was meant to
    forbid.  Only the explicit raw-path allowlist may dereference values;
    everywhere else a deliberate dense fallback carries a justified pragma.
    """

    code = "RPR002"
    name = "lazy-materialization-guard"
    summary = (
        "no .values/._values access on matrix objects outside the raw-path "
        "module allowlist"
    )

    def check(self, context: ModuleContext, config: LintConfig) -> Iterator[Finding]:
        if config.raw_values_allowed(context.module):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in ("values", "_values"):
                continue
            if not _is_matrix_expression(node.value, context, config):
                continue
            yield self.finding(
                context,
                node,
                f"accesses .{node.attr} on matrix expression "
                f"'{ast.unparse(node.value)}' outside the raw-path "
                f"allowlist; this materializes ChunkBackedMatrix runs — "
                f"route through the sketch, or justify with a pragma",
            )


def _is_matrix_expression(
    base: ast.expr, context: ModuleContext, config: LintConfig
) -> bool:
    """Heuristic: does this expression denote a time-series matrix?"""
    if isinstance(base, ast.Name):
        if config.is_matrix_name(base.id):
            return True
        return _param_annotated_as_matrix(base, context, config)
    if isinstance(base, ast.Attribute):
        return config.is_matrix_name(base.attr)
    return False


def _param_annotated_as_matrix(
    name: ast.Name, context: ModuleContext, config: LintConfig
) -> bool:
    for ancestor in context.ancestors(name):
        if not isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        arguments = ancestor.args
        for arg in (
            list(arguments.posonlyargs)
            + list(arguments.args)
            + list(arguments.kwonlyargs)
        ):
            if arg.arg != name.id or arg.annotation is None:
                continue
            rendered = ast.unparse(arg.annotation)
            if any(type_name in rendered for type_name in config.matrix_type_names):
                return True
        return False
    return False


# ---------------------------------------------------------------------------
# RPR003 — canonical-accumulation guard
# ---------------------------------------------------------------------------


@register_rule
class CanonicalAccumulationRule(LintRule):
    """Reductions over pair-window statistics only in the blessed helpers.

    Floating-point addition is not associative: ``np.dot`` over a strided
    view and the same dot over a contiguous copy can differ in the last
    ulp, which is exactly how PR 3's shard-vs-serial divergence appeared.
    The blessed helpers in ``core/sketch.py`` / ``core/tiled.py`` force the
    canonical contiguous layout before reducing; every other module must
    call them instead of reducing stat arrays ad hoc.
    """

    code = "RPR003"
    name = "canonical-accumulation-guard"
    summary = (
        "no einsum/dot/axis reductions over pair-window statistics outside "
        "core/sketch.py and core/tiled.py"
    )

    def check(self, context: ModuleContext, config: LintConfig) -> Iterator[Finding]:
        if config.accumulation_blessed(context.module):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            reduction = _reduction_kind(node, config)
            if reduction is None:
                continue
            marker = _stat_marker_in(node, config)
            if marker is None:
                continue
            yield self.finding(
                context,
                node,
                f"{reduction} over pair-window statistic '{marker}' outside "
                f"the blessed helpers; use pair_corrs_from_stats / "
                f"_pairwise_window_sum from core/sketch.py to keep results "
                f"bit-identical across layouts",
            )


def _reduction_kind(node: ast.Call, config: LintConfig) -> Optional[str]:
    """Classify a call as a watched numpy reduction, or None."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    # np.einsum / np.dot / np.matmul / np.tensordot / np.inner / np.vdot
    if isinstance(base, ast.Name) and base.id in ("np", "numpy"):
        if func.attr in config.reduction_functions:
            return f"np.{func.attr}"
        # np.sum(x, axis=...) — the first positional is the array itself,
        # so only an explicit axis (keyword or second positional) counts.
        if func.attr in ("sum", "mean", "cumsum") and (
            any(keyword.arg == "axis" for keyword in node.keywords)
            or len(node.args) >= 2
        ):
            return f"np.{func.attr} with axis"
        return None
    # np.add.reduce and friends
    if (
        func.attr == "reduce"
        and isinstance(base, ast.Attribute)
        and isinstance(base.value, ast.Name)
        and base.value.id in ("np", "numpy")
    ):
        return f"np.{base.attr}.reduce"
    # array.sum(axis=...) / array.mean(axis=...) / array.cumsum(axis=...)
    if func.attr in config.reduction_methods:
        if func.attr == "dot":
            return ".dot method"
        if _has_axis(node):
            return f".{func.attr}(axis=...) method"
    return None


def _has_axis(node: ast.Call) -> bool:
    """For method-style ``array.sum(...)`` calls: is an axis supplied?

    A bare positional to a reduction *method* is the axis (``stats.sum(0)``).
    """
    if any(keyword.arg == "axis" for keyword in node.keywords):
        return True
    return bool(node.args)


def _stat_marker_in(node: ast.Call, config: LintConfig) -> Optional[str]:
    """The first pair-statistic identifier mentioned anywhere in the call."""
    for child in ast.walk(node):
        identifier: Optional[str] = None
        if isinstance(child, ast.Name):
            identifier = child.id
        elif isinstance(child, ast.Attribute):
            identifier = child.attr
        elif isinstance(child, ast.Constant) and isinstance(child.value, str):
            identifier = child.value
        if identifier is None:
            continue
        for marker in sorted(config.stat_name_markers):
            if marker in identifier:
                return marker
    return None


# ---------------------------------------------------------------------------
# RPR004 — engine-protocol conformance
# ---------------------------------------------------------------------------


@register_rule
class EngineProtocolRule(LintRule):
    """Engine subclasses must match the ``core/engine.py`` protocol shapes.

    The parallel executor feeds ``pairs=`` to any engine whose
    ``supports_pair_subset`` returns True; an engine that advertises
    support but whose ``run`` lacks the kwarg fails only at shard time,
    deep inside a worker process.  Same story for ``plan_layout`` /
    ``needs_raw_values``: the planner calls them positionally with exactly
    one query argument.
    """

    code = "RPR004"
    name = "engine-protocol-conformance"
    summary = (
        "engines advertising pair-subset support must accept pairs= in run; "
        "plan_layout/needs_raw_values must match the protocol signature"
    )

    def check(self, context: ModuleContext, config: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _looks_like_engine(node):
                continue
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
            yield from self._check_pair_subset(context, node, methods)
            yield from self._check_signatures(context, node, methods, config)

    def _check_pair_subset(
        self,
        context: ModuleContext,
        node: ast.ClassDef,
        methods: Dict[str, ast.FunctionDef],
    ) -> Iterator[Finding]:
        supports = methods.get("supports_pair_subset")
        if supports is None or not _may_return_true(supports):
            return
        run = methods.get("run")
        if run is None:
            # ``run`` is inherited; the base implementation defines the
            # protocol including ``pairs``, so there is nothing to check.
            return
        if not _accepts_keyword(run, "pairs"):
            yield self.finding(
                context,
                run,
                f"engine {node.name} can return True from "
                f"supports_pair_subset but run() does not accept a 'pairs' "
                f"keyword; the sharded executor will fail at dispatch time",
            )

    def _check_signatures(
        self,
        context: ModuleContext,
        node: ast.ClassDef,
        methods: Dict[str, ast.FunctionDef],
        config: LintConfig,
    ) -> Iterator[Finding]:
        for method_name, expected in config.engine_protocol:
            method = methods.get(method_name)
            if method is None:
                continue
            actual = _positional_names(method)
            if tuple(actual) != expected:
                yield self.finding(
                    context,
                    method,
                    f"engine {node.name}.{method_name} has positional "
                    f"parameters {tuple(actual)}; the core/engine.py "
                    f"protocol requires exactly {expected}",
                )
        run = methods.get("run")
        if run is not None:
            positional = _positional_names(run)
            if positional[:3] != ["self", "matrix", "query"]:
                yield self.finding(
                    context,
                    run,
                    f"engine {node.name}.run must start with positional "
                    f"parameters (self, matrix, query); found "
                    f"{tuple(positional[:3])}",
                )


def _looks_like_engine(node: ast.ClassDef) -> bool:
    if node.name.endswith("Engine"):
        return True
    for base in node.bases:
        rendered = ast.unparse(base)
        if rendered.split(".")[-1].endswith("Engine"):
            return True
    return False


def _may_return_true(function: ast.FunctionDef) -> bool:
    """Whether any return can yield something other than literal False."""
    for node in ast.walk(function):
        if not isinstance(node, ast.Return):
            continue
        value = node.value
        if value is None:
            continue
        if isinstance(value, ast.Constant) and value.value is False:
            continue
        return True
    return False


def _accepts_keyword(function: ast.FunctionDef, keyword: str) -> bool:
    arguments = function.args
    names = {
        arg.arg
        for arg in (
            list(arguments.posonlyargs)
            + list(arguments.args)
            + list(arguments.kwonlyargs)
        )
    }
    return keyword in names or arguments.kwarg is not None


def _positional_names(function: ast.FunctionDef) -> List[str]:
    arguments = function.args
    return [arg.arg for arg in list(arguments.posonlyargs) + list(arguments.args)]


# ---------------------------------------------------------------------------
# RPR005 — service lock discipline
# ---------------------------------------------------------------------------

_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)")
_REQUIRES_LOCK = re.compile(r"#\s*requires-lock:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)")


@register_rule
class LockDisciplineRule(LintRule):
    """Attributes annotated ``# guarded-by: <lock>`` mutate only under it.

    The service and cache layers share mutable maps across request
    threads.  Annotating each shared attribute with its lock turns the
    locking convention into something this rule can check: every
    assignment, subscript write, del, or mutator-method call on a guarded
    attribute must sit inside ``with <base>.<lock>:`` (or inside a method
    annotated ``# requires-lock: <lock>``, the caller-holds convention).
    ``__init__`` is exempt — the object is not yet shared while it is
    being constructed.
    """

    code = "RPR005"
    name = "service-lock-discipline"
    summary = (
        "writes to # guarded-by annotated attributes must happen inside "
        "with <lock>: (or under # requires-lock)"
    )

    def check(self, context: ModuleContext, config: LintConfig) -> Iterator[Finding]:
        if not config.lock_discipline_applies(context.module):
            return
        guarded = _collect_guarded_attrs(context)
        if not guarded:
            return
        requires = _collect_requires_lock(context)
        for node in ast.walk(context.tree):
            for access, kind in _guarded_writes(node, guarded, config):
                attr_name = access.attr
                lock_name = guarded[attr_name]
                if _inside_init(context, node):
                    continue
                if _lock_held(context, node, access, lock_name, requires):
                    continue
                base = ast.unparse(access.value)
                yield self.finding(
                    context,
                    node,
                    f"{kind} on guarded attribute {base}.{attr_name} "
                    f"outside 'with {base}.{lock_name}:' "
                    f"(declared # guarded-by: {lock_name})",
                )


def _collect_guarded_attrs(context: ModuleContext) -> Dict[str, str]:
    """attr name → lock name, from ``# guarded-by:`` trailing comments.

    The annotation sits on the attribute's initializing assignment, e.g.::

        self.flights = {}  # guarded-by: flights_lock
    """
    guarded: Dict[str, str] = {}
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        match = None
        for line_number in range(node.lineno, (node.end_lineno or node.lineno) + 1):
            match = _GUARDED_BY.search(context.line_comment(line_number))
            if match is not None:
                break
        if match is None:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute):
                guarded[target.attr] = match.group("lock")
    return guarded


def _collect_requires_lock(context: ModuleContext) -> Dict[ast.FunctionDef, str]:
    """Functions annotated ``# requires-lock: <lock>`` on their def line."""
    requires: Dict[ast.FunctionDef, str] = {}
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for line_number in range(node.lineno, node.body[0].lineno + 1):
            match = _REQUIRES_LOCK.search(context.line_comment(line_number))
            if match is not None:
                requires[node] = match.group("lock")
                break
    return requires


def _guarded_writes(
    node: ast.AST, guarded: Dict[str, str], config: LintConfig
) -> Iterator[Tuple[ast.Attribute, str]]:
    """Yield (guarded attribute access, kind-of-write) pairs under ``node``.

    Only looks at the node itself (ast.walk in the caller covers the tree);
    recognizes attribute assignment, subscript/del writes, augmented
    assignment, and mutator-method calls.
    """
    if isinstance(node, ast.Assign):
        for target in node.targets:
            yield from _writes_in_target(target, guarded)
    elif isinstance(node, ast.AugAssign):
        yield from _writes_in_target(node.target, guarded)
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        yield from _writes_in_target(node.target, guarded)
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            yield from _writes_in_target(target, guarded)
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in config.mutator_methods
            and isinstance(func.value, ast.Attribute)
            and func.value.attr in guarded
        ):
            yield func.value, f"mutator call .{func.attr}()"


def _writes_in_target(
    target: ast.expr, guarded: Dict[str, str]
) -> Iterator[Tuple[ast.Attribute, str]]:
    if isinstance(target, ast.Attribute):
        if target.attr in guarded:
            yield target, "assignment"
        elif isinstance(target.value, ast.Attribute) and target.value.attr in guarded:
            # ``self.stats.hits += 1`` mutates the guarded ``stats`` object.
            yield target.value, f"field write .{target.attr}"
    elif isinstance(target, ast.Subscript):
        value = target.value
        if isinstance(value, ast.Attribute) and value.attr in guarded:
            yield value, "subscript write"
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _writes_in_target(element, guarded)


def _inside_init(context: ModuleContext, node: ast.AST) -> bool:
    for ancestor in context.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor.name == "__init__"
    return False


def _lock_held(
    context: ModuleContext,
    node: ast.AST,
    access: ast.Attribute,
    lock_name: str,
    requires: Dict[ast.FunctionDef, str],
) -> bool:
    base = ast.unparse(access.value)
    acceptable: Set[str] = {f"{base}.{lock_name}", lock_name}
    for ancestor in context.ancestors(node):
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                if ast.unparse(item.context_expr) in acceptable:
                    return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # requires-lock is the caller-holds convention for methods of
            # the owning class, so it vouches only for self-based access.
            if base == "self" and requires.get(ancestor) == lock_name:
                return True
            return False
    return False


RULES = (
    ExceptionDisciplineRule,
    LazyMaterializationRule,
    CanonicalAccumulationRule,
    EngineProtocolRule,
    LockDisciplineRule,
)

__all__ = ["RULES"] + [cls.__name__ for cls in RULES]
