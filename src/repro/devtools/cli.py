"""Command-line entry point for repro-lint.

Usage::

    python -m repro.devtools src benchmarks scripts
    python scripts/lint.py src --rules RPR001,RPR005
    python scripts/lint.py src --write-baseline

Exit codes: 0 — clean (or only baselined findings), 1 — new findings,
2 — usage / framework error (bad path, unreadable baseline, syntax error).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.devtools.config import DEFAULT_CONFIG
from repro.devtools.linter import (
    BASELINE_FILENAME,
    Baseline,
    available_rules,
    lint_paths,
)
from repro.exceptions import LintError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static invariant checker for the Dangoron reproduction: "
            "exception taxonomy, out-of-core, bit-identity, engine protocol "
            "and lock disciplines (see docs/invariants.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file of grandfathered findings "
        f"(default: ./{BASELINE_FILENAME} when it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather all current findings",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only the summary line, not individual findings",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for code, cls in available_rules().items():
            print(f"{code}  {cls.name:32s} {cls.summary}")
        return 0

    paths: List[Path] = options.paths or [Path("src")]
    codes = None
    if options.rules:
        codes = [code.strip() for code in options.rules.split(",") if code.strip()]

    try:
        findings = lint_paths(paths, config=DEFAULT_CONFIG, codes=codes)

        baseline_path = options.baseline
        if baseline_path is None:
            default_path = Path(BASELINE_FILENAME)
            baseline_path = default_path if default_path.exists() else None

        if options.write_baseline:
            target = options.baseline or Path(BASELINE_FILENAME)
            Baseline.from_findings(findings).write(target)
            print(f"wrote {len(findings)} finding(s) to baseline {target}")
            return 0

        if options.no_baseline or baseline_path is None:
            baseline = Baseline()
        else:
            baseline = Baseline.load(baseline_path)
    except LintError as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2

    diff = baseline.diff(findings)

    if not options.quiet:
        for finding in diff.new:
            print(finding.render())
        for finding in diff.grandfathered:
            print(f"{finding.render()}  [baselined]")
        for fingerprint in diff.stale:
            print(f"stale baseline entry (no longer occurs): {fingerprint}")

    print(
        f"repro-lint: {len(diff.new)} new finding(s), "
        f"{len(diff.grandfathered)} baselined, "
        f"{len(diff.stale)} stale baseline entr(y/ies)"
    )
    return 1 if diff.new else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
