"""``python -m repro.devtools`` — run the repro-lint CLI."""

from __future__ import annotations

import sys

from repro.devtools.cli import main

sys.exit(main())
