"""Dataset simulators and loaders (substrate S6).

The paper evaluates on a NOAA USCRN hourly product and motivates the problem
with fMRI and finance workloads.  None of those raw datasets can be downloaded
here, so this subpackage simulates each of them with the statistical structure
the correlation engines actually exercise (see the substitution table in
DESIGN.md) and provides loaders for the real USCRN format so local files can
be used instead.
"""

from repro.datasets.climate import Station, SyntheticUSCRN
from repro.datasets.finance import SyntheticMarket, crisis_edge_density
from repro.datasets.fmri import (
    SyntheticBOLD,
    hemodynamic_response,
    region_average_matrix,
)
from repro.datasets.loaders import (
    USCRN_COLUMNS,
    USCRN_MISSING,
    load_uscrn_hourly,
    load_wide_csv,
    station_dictionary,
    write_uscrn_hourly,
    write_wide_csv,
)
from repro.datasets.raingauge import Gauge, SyntheticRainGauges
from repro.datasets.random_walk import (
    ar1_series,
    random_walks,
    sinusoid_mixture,
    white_noise,
)

__all__ = [
    "Gauge",
    "Station",
    "SyntheticBOLD",
    "SyntheticMarket",
    "SyntheticRainGauges",
    "SyntheticUSCRN",
    "USCRN_COLUMNS",
    "USCRN_MISSING",
    "ar1_series",
    "crisis_edge_density",
    "hemodynamic_response",
    "load_uscrn_hourly",
    "load_wide_csv",
    "random_walks",
    "region_average_matrix",
    "sinusoid_mixture",
    "station_dictionary",
    "white_noise",
    "write_uscrn_hourly",
    "write_wide_csv",
]
