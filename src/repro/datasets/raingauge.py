"""Synthetic rain-gauge network data (daily rainfall, strongly non-Gaussian).

The paper's climate-network citations include complex-network construction on
rain-gauge stations (Kim et al., reference [7]), whose defining property is
that daily rainfall is *nothing like* the Gaussian-ish anomalies temperature
networks correlate: it is non-negative, zero-inflated (most days are dry) and
heavily right-skewed on wet days.  That makes it a natural robustness workload
— Pearson correlation is still well defined, but the values concentrate lower
and the effective edge density at a given threshold is very different from the
temperature case.

The generator simulates regional storm systems: latent storm indicators shared
by nearby gauges determine *occurrence* (wet or dry), and a latent intensity
signal scales the gamma-distributed wet-day amounts, so nearby gauges have
correlated rainfall and remote gauges do not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.config import DEFAULT_SEED, FLOAT_DTYPE
from repro.exceptions import GenerationError
from repro.timeseries.matrix import TimeAxis, TimeSeriesMatrix


@dataclass
class Gauge:
    """Metadata of one synthetic rain gauge."""

    gauge_id: str
    latitude: float
    longitude: float


@dataclass
class SyntheticRainGauges:
    """Generator of daily rainfall for a spatially correlated gauge network.

    Parameters
    ----------
    num_gauges:
        Number of gauges (series).
    num_days:
        Number of simulated days (series length).
    num_storm_systems:
        Number of latent regional storm processes.
    wet_probability:
        Baseline probability of rain on a given day at a given gauge.
    correlation_length_degrees:
        Spatial decay scale of a gauge's coupling to a storm system.
    gamma_shape, gamma_scale:
        Shape/scale of wet-day rainfall amounts (millimetres).
    seed:
        RNG seed.
    """

    num_gauges: int = 60
    num_days: int = 730
    num_storm_systems: int = 6
    wet_probability: float = 0.35
    correlation_length_degrees: float = 1.5
    gamma_shape: float = 0.8
    gamma_scale: float = 8.0
    seed: Optional[int] = DEFAULT_SEED
    gauges: List[Gauge] = field(default_factory=list, init=False)

    #: Region covered by the synthetic network (roughly the Korean peninsula,
    #: the study area of the cited rain-gauge paper).
    _LAT_RANGE = (34.0, 39.0)
    _LON_RANGE = (126.0, 130.0)

    def __post_init__(self) -> None:
        if self.num_gauges < 2:
            raise GenerationError("need at least two gauges")
        if self.num_days < 2:
            raise GenerationError("need at least two days")
        if self.num_storm_systems < 1:
            raise GenerationError("need at least one storm system")
        if not 0.0 < self.wet_probability < 1.0:
            raise GenerationError("wet_probability must lie strictly inside (0, 1)")
        if self.gamma_shape <= 0 or self.gamma_scale <= 0:
            raise GenerationError("gamma parameters must be positive")
        if self.correlation_length_degrees <= 0:
            raise GenerationError("correlation_length_degrees must be positive")

    # ---------------------------------------------------------------- generate
    def generate(self) -> TimeSeriesMatrix:
        """Daily rainfall totals in millimetres (one row per gauge)."""
        rng = np.random.default_rng(self.seed)
        self.gauges = self._place_gauges(rng)
        latitudes = np.array([g.latitude for g in self.gauges])
        longitudes = np.array([g.longitude for g in self.gauges])

        # Latent storm occupancy: smooth AR(1) indicators per storm system.
        storm_strength = np.zeros((self.num_storm_systems, self.num_days))
        storm_strength[:, 0] = rng.normal(size=self.num_storm_systems)
        for t in range(1, self.num_days):
            storm_strength[:, t] = 0.85 * storm_strength[:, t - 1] + np.sqrt(
                1 - 0.85**2
            ) * rng.normal(size=self.num_storm_systems)

        centers_lat = rng.uniform(*self._LAT_RANGE, size=self.num_storm_systems)
        centers_lon = rng.uniform(*self._LON_RANGE, size=self.num_storm_systems)
        distance_sq = (
            (latitudes[:, None] - centers_lat[None, :]) ** 2
            + (longitudes[:, None] - centers_lon[None, :]) ** 2
        )
        coupling = np.exp(-distance_sq / (2.0 * self.correlation_length_degrees**2))
        coupling = coupling / np.maximum(coupling.sum(axis=1, keepdims=True), 1e-12)

        # Per-gauge daily storm forcing: positive values push toward rain.
        forcing = coupling @ storm_strength

        # Occurrence: probit-style threshold on forcing plus gauge-local noise.
        occurrence_noise = rng.normal(0.0, 0.6, size=(self.num_gauges, self.num_days))
        wet_threshold = _normal_quantile(1.0 - self.wet_probability)
        wet = (forcing + occurrence_noise) > wet_threshold * np.sqrt(
            forcing.var() + 0.36
        )

        # Amounts: gamma draws scaled by the (exponentiated) regional intensity.
        amounts = rng.gamma(
            self.gamma_shape, self.gamma_scale, size=(self.num_gauges, self.num_days)
        )
        intensity = np.exp(0.5 * forcing)
        values = np.where(wet, amounts * intensity, 0.0).astype(FLOAT_DTYPE)

        return TimeSeriesMatrix(
            values,
            series_ids=[g.gauge_id for g in self.gauges],
            time_axis=TimeAxis(start=0.0, resolution=1.0),
        )

    def generate_transformed(self, epsilon: float = 0.1) -> TimeSeriesMatrix:
        """``log(1 + rain / epsilon)``-transformed rainfall.

        The log transform is what the cited nonlinearity-aware rain-gauge study
        applies before correlating; it compresses the heavy tail so Pearson
        correlation better reflects co-occurrence of wet spells.
        """
        if epsilon <= 0:
            raise GenerationError(f"epsilon must be positive, got {epsilon}")
        raw = self.generate()
        return raw.with_values(np.log1p(raw.values / epsilon))

    # ---------------------------------------------------------------- internal
    def _place_gauges(self, rng: np.random.Generator) -> List[Gauge]:
        gauges: List[Gauge] = []
        for index in range(self.num_gauges):
            gauges.append(
                Gauge(
                    gauge_id=f"GAUGE-{index:03d}",
                    latitude=float(rng.uniform(*self._LAT_RANGE)),
                    longitude=float(rng.uniform(*self._LON_RANGE)),
                )
            )
        return gauges


def _normal_quantile(p: float) -> float:
    """Inverse standard normal CDF (Acklam-style rational approximation).

    Avoids importing scipy for one constant; accurate to ~1e-9 over (0, 1).
    """
    if not 0.0 < p < 1.0:
        raise GenerationError(f"quantile probability must lie in (0, 1), got {p}")
    # Coefficients for the central and tail regions.
    a = [-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00]
    b = [-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00]
    p_low = 0.02425
    if p < p_low:
        q = np.sqrt(-2.0 * np.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > 1.0 - p_low:
        q = np.sqrt(-2.0 * np.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    )
