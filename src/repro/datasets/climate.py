"""Synthetic NOAA USCRN-like hourly climate data (the paper's evaluation dataset).

The paper evaluates on the "NCEA Data Set", a NOAA NCEI USCRN hourly product
for 2020 (the footnote's download URL).  This environment has no network
access, so the generator below simulates the statistical structure that
matters for correlation-network construction on that data:

* a shared **seasonal** cycle (annual sinusoid) and **diurnal** cycle whose
  amplitudes vary smoothly with station latitude,
* **regional weather** signals — AR(1) processes shared by nearby stations
  with spatially decaying loadings, which is what creates the strong
  correlations between neighbouring stations that climate-network studies
  threshold on, and
* independent **local noise** per station.

Stations are placed on a jittered latitude/longitude grid over the
continental US; the pairwise correlation therefore decays with distance,
giving the realistic mixture of high- and low-correlation pairs the pruning
experiments need.  :func:`repro.datasets.loaders.load_uscrn_hourly` reads the
real USCRN CSV format for users who have the files locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.config import DEFAULT_SEED, FLOAT_DTYPE
from repro.exceptions import GenerationError
from repro.timeseries.matrix import TimeAxis, TimeSeriesMatrix

#: Continental US bounding box used to place synthetic stations.
_LAT_RANGE = (25.0, 49.0)
_LON_RANGE = (-124.0, -67.0)


@dataclass
class Station:
    """Metadata of one synthetic station."""

    station_id: str
    wban: int
    latitude: float
    longitude: float
    elevation: float


@dataclass
class SyntheticUSCRN:
    """Generator of USCRN-like hourly temperature series.

    Parameters
    ----------
    num_stations:
        Number of stations (series).
    num_days:
        Number of simulated days; the series length is ``24 * num_days``.
    num_regions:
        Number of latent regional weather signals.  More regions means weaker
        long-range correlations.
    regional_strength:
        Scale of the regional signal relative to local noise; larger values
        produce denser correlation networks.
    correlation_length_degrees:
        Spatial decay scale (in degrees) of a station's loading on a regional
        signal; nearby stations share regions strongly.
    seed:
        RNG seed.
    """

    num_stations: int = 100
    num_days: int = 60
    num_regions: int = 8
    regional_strength: float = 3.0
    correlation_length_degrees: float = 7.0
    diurnal_amplitude: float = 2.0
    seasonal_amplitude: float = 6.0
    noise_scale: float = 1.5
    seed: Optional[int] = DEFAULT_SEED
    stations: List[Station] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.num_stations < 2:
            raise GenerationError("need at least two stations")
        if self.num_days < 1:
            raise GenerationError("need at least one day")
        if self.num_regions < 1:
            raise GenerationError("need at least one region")
        if self.correlation_length_degrees <= 0:
            raise GenerationError("correlation_length_degrees must be positive")

    # ------------------------------------------------------------------ public
    @property
    def length(self) -> int:
        """Number of hourly samples produced."""
        return 24 * self.num_days

    def generate(self) -> TimeSeriesMatrix:
        """Generate the hourly temperature matrix (one row per station)."""
        rng = np.random.default_rng(self.seed)
        self.stations = self._place_stations(rng)
        hours = np.arange(self.length, dtype=FLOAT_DTYPE)

        latitudes = np.array([s.latitude for s in self.stations])
        longitudes = np.array([s.longitude for s in self.stations])

        # Shared cycles with latitude-dependent amplitude and phase.
        day_of_year = hours / 24.0
        seasonal_phase = 2.0 * np.pi * day_of_year / 365.25
        diurnal_phase = 2.0 * np.pi * (hours % 24) / 24.0
        lat_factor = (latitudes - _LAT_RANGE[0]) / (_LAT_RANGE[1] - _LAT_RANGE[0])
        seasonal = (
            self.seasonal_amplitude
            * (0.6 + 0.8 * lat_factor)[:, None]
            * np.cos(seasonal_phase - np.pi)[None, :]
        )
        diurnal = (
            self.diurnal_amplitude
            * (1.2 - 0.5 * lat_factor)[:, None]
            * np.cos(diurnal_phase - np.pi * 0.75)[None, :]
        )
        baseline = (28.0 - 22.0 * lat_factor)[:, None]

        # Regional weather: AR(1) latent signals with spatial loadings.
        regional_centers_lat = rng.uniform(*_LAT_RANGE, size=self.num_regions)
        regional_centers_lon = rng.uniform(*_LON_RANGE, size=self.num_regions)
        regional_signals = _ar1_signals(
            self.num_regions, self.length, coefficient=0.98, rng=rng
        )
        distance_sq = (
            (latitudes[:, None] - regional_centers_lat[None, :]) ** 2
            + 0.25 * (longitudes[:, None] - regional_centers_lon[None, :]) ** 2
        )
        loadings = np.exp(-distance_sq / (2.0 * self.correlation_length_degrees**2))
        loadings = loadings / np.maximum(
            loadings.sum(axis=1, keepdims=True), 1e-12
        )
        weather = self.regional_strength * (loadings @ regional_signals)

        noise = rng.normal(0.0, self.noise_scale, size=(self.num_stations, self.length))
        values = baseline + seasonal + diurnal + weather + noise

        return TimeSeriesMatrix(
            values,
            series_ids=[s.station_id for s in self.stations],
            time_axis=TimeAxis(start=0.0, resolution=1.0),
        )

    def generate_anomalies(self) -> TimeSeriesMatrix:
        """Generate temperatures and remove each station's climatological cycles.

        Climate-network studies correlate *anomalies*: the deterministic
        diurnal and seasonal cycles are fitted per station (least squares on
        the corresponding harmonics) and subtracted, so the remaining
        correlations reflect shared weather rather than the fact that the sun
        rises everywhere.  This is the variant the benchmarks use, because
        raw temperatures correlate close to 1 between *all* station pairs and
        make thresholding meaningless.
        """
        raw = self.generate()
        hours = np.arange(self.length, dtype=FLOAT_DTYPE)
        seasonal_phase = 2.0 * np.pi * (hours / 24.0) / 365.25
        diurnal_phase = 2.0 * np.pi * (hours % 24) / 24.0
        design = np.column_stack(
            [
                np.ones_like(hours),
                np.cos(seasonal_phase),
                np.sin(seasonal_phase),
                np.cos(diurnal_phase),
                np.sin(diurnal_phase),
                np.cos(2.0 * diurnal_phase),
                np.sin(2.0 * diurnal_phase),
            ]
        )
        coefficients, *_ = np.linalg.lstsq(design, raw.values.T, rcond=None)
        anomalies = raw.values - (design @ coefficients).T
        return raw.with_values(anomalies)

    # ---------------------------------------------------------------- internal
    def _place_stations(self, rng: np.random.Generator) -> List[Station]:
        grid_size = int(np.ceil(np.sqrt(self.num_stations)))
        lats = np.linspace(*_LAT_RANGE, grid_size)
        lons = np.linspace(*_LON_RANGE, grid_size)
        stations: List[Station] = []
        index = 0
        for lat in lats:
            for lon in lons:
                if index >= self.num_stations:
                    break
                jitter_lat = float(rng.normal(0.0, 0.5))
                jitter_lon = float(rng.normal(0.0, 0.5))
                stations.append(
                    Station(
                        station_id=f"USCRN-{index:04d}",
                        wban=23000 + index,
                        latitude=float(np.clip(lat + jitter_lat, *_LAT_RANGE)),
                        longitude=float(np.clip(lon + jitter_lon, *_LON_RANGE)),
                        elevation=float(rng.uniform(0.0, 2500.0)),
                    )
                )
                index += 1
        return stations


def _ar1_signals(
    count: int, length: int, coefficient: float, rng: np.random.Generator
) -> np.ndarray:
    """Stationary AR(1) signals with unit marginal variance."""
    innovations = rng.normal(0.0, 1.0, size=(count, length))
    signals = np.empty((count, length), dtype=FLOAT_DTYPE)
    signals[:, 0] = innovations[:, 0]
    scale = np.sqrt(1.0 - coefficient**2)
    for t in range(1, length):
        signals[:, t] = coefficient * signals[:, t - 1] + scale * innovations[:, t]
    return signals
