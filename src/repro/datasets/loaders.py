"""Loading and writing time-series matrices from/to files.

Two formats are supported:

* The NOAA **USCRN hourly02** fixed-column text format the paper's evaluation
  dataset uses (one file per station, whitespace-separated columns; we read
  the calculated air temperature ``T_CALC`` by default).  A matching writer is
  provided so the synthetic :class:`~repro.datasets.climate.SyntheticUSCRN`
  data can be round-tripped through the real format — and so users with the
  real 2020 files can load them with the same code path offline.
* A generic **wide CSV** (first column = series id, remaining columns =
  values), convenient for small exported datasets.

The USCRN reader deliberately implements a subset of the official column list
(the identification, timestamp and temperature fields); unknown trailing
columns are ignored, and the sentinel values the product uses for missing data
(-9999.0) are mapped to NaN so :func:`repro.timeseries.preprocess.fill_missing`
can repair them.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.exceptions import DataValidationError
from repro.timeseries.align import IrregularSeries, synchronize
from repro.timeseries.matrix import TimeAxis, TimeSeriesMatrix

#: Column layout of the USCRN hourly02 product (subset used here).
USCRN_COLUMNS = (
    "WBANNO",
    "UTC_DATE",
    "UTC_TIME",
    "LST_DATE",
    "LST_TIME",
    "CRX_VN",
    "LONGITUDE",
    "LATITUDE",
    "T_CALC",
    "T_HR_AVG",
    "T_MAX",
    "T_MIN",
    "P_CALC",
)

#: Sentinel used by USCRN products for missing numeric values.
USCRN_MISSING = -9999.0


def write_uscrn_hourly(
    matrix: TimeSeriesMatrix,
    directory: Union[str, Path],
    year: int = 2020,
    variable_column: str = "T_CALC",
) -> List[Path]:
    """Write one USCRN-format text file per series (used for round-trip tests).

    Hours are mapped to consecutive UTC timestamps starting January 1st of
    ``year``.  Only the temperature column named by ``variable_column``
    carries the series values; the other numeric columns are filled with the
    missing-value sentinel.
    """
    if variable_column not in USCRN_COLUMNS:
        raise DataValidationError(f"unknown USCRN column {variable_column!r}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    variable_index = USCRN_COLUMNS.index(variable_column)

    paths: List[Path] = []
    for row, series_id in enumerate(matrix.series_ids):
        path = directory / f"CRNH0203-{year}-{series_id}.txt"
        wban = 23000 + row
        with open(path, "w", encoding="ascii") as handle:
            for hour, value in enumerate(matrix.values[row]):
                date, time_of_day = _hour_to_uscrn_timestamp(year, hour)
                fields = [f"{wban:05d}", date, time_of_day, date, time_of_day, "2.623",
                          f"{-100.0:.4f}", f"{40.0:.4f}"]
                numeric = [USCRN_MISSING] * (len(USCRN_COLUMNS) - 8)
                numeric[variable_index - 8] = float(value)
                fields.extend(f"{v:.1f}" for v in numeric)
                handle.write(" ".join(fields) + "\n")
        paths.append(path)
    return paths


def load_uscrn_hourly(
    paths: Sequence[Union[str, Path]],
    variable_column: str = "T_CALC",
    resolution_hours: float = 1.0,
) -> TimeSeriesMatrix:
    """Load USCRN hourly02 files (one station per file) into a matrix.

    Stations are synchronized onto a common hourly grid spanning the union of
    their timestamps; missing sentinel values become NaN and are linearly
    interpolated during synchronization.
    """
    if not paths:
        raise DataValidationError("no USCRN files given")
    if variable_column not in USCRN_COLUMNS:
        raise DataValidationError(f"unknown USCRN column {variable_column!r}")
    variable_index = USCRN_COLUMNS.index(variable_column)

    series: List[IrregularSeries] = []
    for path in paths:
        path = Path(path)
        timestamps: List[float] = []
        values: List[float] = []
        station_id: Optional[str] = None
        with open(path, "r", encoding="ascii") as handle:
            for line_number, line in enumerate(handle, start=1):
                fields = line.split()
                if len(fields) < variable_index + 1:
                    raise DataValidationError(
                        f"{path}:{line_number}: expected at least "
                        f"{variable_index + 1} columns, got {len(fields)}"
                    )
                station_id = station_id or fields[0]
                timestamps.append(
                    _uscrn_timestamp_to_hour(fields[1], fields[2])
                )
                raw = float(fields[variable_index])
                values.append(np.nan if raw <= USCRN_MISSING + 1e-6 else raw)
        if station_id is None:
            raise DataValidationError(f"{path}: file is empty")
        array = np.asarray(values, dtype=FLOAT_DTYPE)
        stamps = np.asarray(timestamps, dtype=FLOAT_DTYPE)
        finite = np.isfinite(array)
        if not finite.any():
            raise DataValidationError(f"{path}: no valid observations")
        # File names follow "CRNH0203-<year>-<station name>"; everything after
        # the second dash is the station name (which may itself contain dashes).
        parts = path.stem.split("-", 2)
        name = parts[2] if len(parts) == 3 else station_id
        series.append(IrregularSeries(name, stamps[finite], array[finite]))

    matrix, _ = synchronize(series, resolution=resolution_hours)
    return matrix


# ---------------------------------------------------------------------------
# Generic wide CSV
# ---------------------------------------------------------------------------

def write_wide_csv(matrix: TimeSeriesMatrix, path: Union[str, Path]) -> Path:
    """Write a matrix as a wide CSV: ``series_id, v0, v1, …``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series_id"] + [f"t{i}" for i in range(matrix.length)])
        for series_id, row in zip(matrix.series_ids, matrix.values):
            writer.writerow([series_id] + [repr(float(v)) for v in row])
    return path


def load_wide_csv(
    path: Union[str, Path], resolution: float = 1.0
) -> TimeSeriesMatrix:
    """Load a wide CSV written by :func:`write_wide_csv` (or compatible)."""
    path = Path(path)
    ids: List[str] = []
    rows: List[List[float]] = []
    with open(path, "r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise DataValidationError(f"{path}: file is empty")
        for record in reader:
            if not record:
                continue
            ids.append(record[0])
            try:
                rows.append([float(v) for v in record[1:]])
            except ValueError as error:
                raise DataValidationError(
                    f"{path}: non-numeric value in row for series {record[0]!r}"
                ) from error
    if not rows:
        raise DataValidationError(f"{path}: no data rows")
    lengths = {len(r) for r in rows}
    if len(lengths) != 1:
        raise DataValidationError(
            f"{path}: rows have inconsistent lengths {sorted(lengths)}"
        )
    return TimeSeriesMatrix(
        np.asarray(rows, dtype=FLOAT_DTYPE),
        series_ids=ids,
        time_axis=TimeAxis(0.0, resolution),
        allow_nan=True,
    )


# ---------------------------------------------------------------------------
# Timestamp helpers
# ---------------------------------------------------------------------------

_DAYS_PER_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def _is_leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def _hour_to_uscrn_timestamp(year: int, hour: int) -> "tuple[str, str]":
    """Map an hour offset from January 1st to (YYYYMMDD, HHMM) strings."""
    day_of_year = hour // 24
    hour_of_day = hour % 24
    month = 1
    remaining = day_of_year
    for index, days in enumerate(_DAYS_PER_MONTH, start=1):
        month_days = days + (1 if index == 2 and _is_leap(year) else 0)
        if remaining < month_days:
            month = index
            break
        remaining -= month_days
    else:
        month = 12
        remaining = min(remaining, 30)
    return f"{year:04d}{month:02d}{remaining + 1:02d}", f"{hour_of_day:02d}00"


def _uscrn_timestamp_to_hour(date_field: str, time_field: str) -> float:
    """Map (YYYYMMDD, HHMM) strings to an hour offset from January 1st."""
    if len(date_field) != 8 or len(time_field) != 4:
        raise DataValidationError(
            f"malformed USCRN timestamp {date_field!r} {time_field!r}"
        )
    year = int(date_field[:4])
    month = int(date_field[4:6])
    day = int(date_field[6:8])
    hour = int(time_field[:2])
    minute = int(time_field[2:])
    day_of_year = sum(
        days + (1 if index == 2 and _is_leap(year) else 0)
        for index, days in enumerate(_DAYS_PER_MONTH[: month - 1], start=1)
    ) + (day - 1)
    return float(day_of_year * 24 + hour + minute / 60.0)


def station_dictionary(matrix: TimeSeriesMatrix) -> Dict[str, np.ndarray]:
    """Convenience: map series id to its values array (copy-free views)."""
    return {sid: matrix.series(sid) for sid in matrix.series_ids}
