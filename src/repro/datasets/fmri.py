"""Synthetic BOLD fMRI data (the paper's motivating example).

The paper motivates Dangoron with dynamic functional-connectivity analysis of
4-D fMRI: each 3-D volume has 100K–10M voxels and connectivity is measured by
sliding-window correlations between voxel (or region) time series.  This
generator produces a laptop-scale version of that structure:

* voxels live on a 3-D grid partitioned into contiguous **regions**
  (a simple parcellation),
* each region has a latent neural signal band-limited to the 0.01–0.1 Hz
  range typical of resting-state BOLD fluctuations,
* each voxel is a loading on its region's signal (plus smaller loadings on
  neighbouring regions to create cross-region correlations) convolved with a
  canonical double-gamma **hemodynamic response function**, plus thermal
  noise, drift, and optional spike artefacts.

The ground-truth region membership is retained so examples can check that
thresholded networks recover the parcellation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.config import DEFAULT_SEED, FLOAT_DTYPE
from repro.exceptions import GenerationError
from repro.timeseries.matrix import TimeAxis, TimeSeriesMatrix


def hemodynamic_response(
    duration_seconds: float = 30.0, tr_seconds: float = 2.0
) -> np.ndarray:
    """Canonical double-gamma hemodynamic response sampled every ``tr_seconds``."""
    if duration_seconds <= 0 or tr_seconds <= 0:
        raise GenerationError("duration and TR must be positive")
    t = np.arange(0.0, duration_seconds, tr_seconds, dtype=FLOAT_DTYPE)
    peak = t**5 * np.exp(-t)
    undershoot = t**15 * np.exp(-t)
    # Normalize each gamma kernel before mixing.
    peak = peak / peak.max() if peak.max() > 0 else peak
    undershoot = undershoot / undershoot.max() if undershoot.max() > 0 else undershoot
    hrf = peak - 0.35 * undershoot
    return hrf / np.abs(hrf).sum()


@dataclass
class SyntheticBOLD:
    """Generator of parcellated BOLD voxel time series.

    Parameters
    ----------
    grid_shape:
        Voxel grid dimensions ``(x, y, z)``; the number of series is their
        product.
    num_regions:
        Number of parcellation regions (latent signals).
    num_volumes:
        Number of time points (fMRI volumes).
    tr_seconds:
        Repetition time — the sampling interval of the volumes.
    signal_to_noise:
        Ratio of neural signal amplitude to thermal noise amplitude.
    neighbour_coupling:
        Loading of each voxel on the signals of spatially adjacent regions
        (creates the cross-region correlations dynamic-connectivity studies
        track).
    spike_probability:
        Per-volume probability of a motion-spike artefact affecting all voxels.
    """

    grid_shape: Tuple[int, int, int] = (6, 6, 4)
    num_regions: int = 12
    num_volumes: int = 600
    tr_seconds: float = 2.0
    signal_to_noise: float = 2.0
    neighbour_coupling: float = 0.3
    drift_amplitude: float = 0.5
    spike_probability: float = 0.0
    seed: Optional[int] = DEFAULT_SEED

    def __post_init__(self) -> None:
        if any(d < 1 for d in self.grid_shape):
            raise GenerationError("grid dimensions must be positive")
        if self.num_regions < 1:
            raise GenerationError("need at least one region")
        if self.num_volumes < 8:
            raise GenerationError("need at least 8 volumes")
        if self.num_regions > self.num_voxels:
            raise GenerationError("cannot have more regions than voxels")

    # ------------------------------------------------------------------ public
    @property
    def num_voxels(self) -> int:
        x, y, z = self.grid_shape
        return x * y * z

    def generate(self) -> Tuple[TimeSeriesMatrix, np.ndarray]:
        """Generate the voxel matrix and the region label of every voxel."""
        rng = np.random.default_rng(self.seed)
        coordinates = self._voxel_coordinates()
        labels, centers = self._parcellate(coordinates, rng)

        latent = self._band_limited_signals(rng)
        hrf = hemodynamic_response(tr_seconds=self.tr_seconds)
        bold_latent = np.stack(
            [np.convolve(latent[r], hrf, mode="same") for r in range(self.num_regions)]
        )
        bold_latent = bold_latent / np.maximum(
            bold_latent.std(axis=1, keepdims=True), 1e-12
        )

        # Region adjacency from centre distances: each region couples to its
        # nearest neighbours with `neighbour_coupling`.
        center_dist = np.linalg.norm(
            centers[:, None, :] - centers[None, :, :], axis=2
        )
        np.fill_diagonal(center_dist, np.inf)
        nearest = np.argmin(center_dist, axis=1)

        values = np.empty((self.num_voxels, self.num_volumes), dtype=FLOAT_DTYPE)
        t = np.arange(self.num_volumes, dtype=FLOAT_DTYPE)
        drift_base = t / self.num_volumes
        spikes = rng.random(self.num_volumes) < self.spike_probability
        for voxel in range(self.num_voxels):
            region = labels[voxel]
            signal = bold_latent[region] + self.neighbour_coupling * bold_latent[
                nearest[region]
            ]
            loading = 0.8 + 0.4 * rng.random()
            noise = rng.normal(0.0, 1.0, size=self.num_volumes)
            drift = self.drift_amplitude * (rng.random() - 0.5) * drift_base
            voxel_series = (
                self.signal_to_noise * loading * signal + noise + drift
            )
            if np.any(spikes):
                voxel_series = voxel_series + 5.0 * spikes * rng.random()
            values[voxel] = 100.0 + voxel_series

        matrix = TimeSeriesMatrix(
            values,
            series_ids=[f"voxel_{i:05d}" for i in range(self.num_voxels)],
            time_axis=TimeAxis(start=0.0, resolution=self.tr_seconds),
        )
        return matrix, labels

    # ---------------------------------------------------------------- internal
    def _voxel_coordinates(self) -> np.ndarray:
        x, y, z = self.grid_shape
        grid = np.indices((x, y, z)).reshape(3, -1).T
        return grid.astype(FLOAT_DTYPE)

    def _parcellate(
        self, coordinates: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Assign voxels to regions by nearest random centre (Voronoi parcellation)."""
        center_indices = rng.choice(
            len(coordinates), size=self.num_regions, replace=False
        )
        centers = coordinates[center_indices]
        distances = np.linalg.norm(
            coordinates[:, None, :] - centers[None, :, :], axis=2
        )
        labels = np.argmin(distances, axis=1)
        return labels, centers

    def _band_limited_signals(self, rng: np.random.Generator) -> np.ndarray:
        """Latent neural signals band-limited to roughly 0.01–0.1 Hz."""
        freqs = np.fft.rfftfreq(self.num_volumes, d=self.tr_seconds)
        band = (freqs >= 0.01) & (freqs <= 0.1)
        if not np.any(band):
            band = np.zeros_like(freqs, dtype=bool)
            band[1 : max(2, len(freqs) // 4)] = True
        spectrum = np.zeros(
            (self.num_regions, len(freqs)), dtype=np.complex128
        )
        amplitude = rng.random((self.num_regions, int(band.sum())))
        phase = rng.uniform(0.0, 2.0 * np.pi, size=amplitude.shape)
        spectrum[:, band] = amplitude * np.exp(1j * phase)
        signals = np.fft.irfft(spectrum, n=self.num_volumes, axis=1)
        std = np.maximum(signals.std(axis=1, keepdims=True), 1e-12)
        return (signals / std).astype(FLOAT_DTYPE)


def region_average_matrix(
    matrix: TimeSeriesMatrix, labels: np.ndarray
) -> TimeSeriesMatrix:
    """Average voxel series within each region (classical parcellation analysis).

    Returns a new matrix with one series per region, which is the
    "region-based connectivity" alternative the paper contrasts with
    voxel-level analysis.
    """
    labels = np.asarray(labels)
    if len(labels) != matrix.num_series:
        raise GenerationError(
            f"expected {matrix.num_series} labels, got {len(labels)}"
        )
    regions: List[int] = sorted(int(r) for r in np.unique(labels))
    averaged = np.stack(
        [matrix.values[labels == region].mean(axis=0) for region in regions]
    )
    return TimeSeriesMatrix(
        averaged,
        series_ids=[f"region_{r:03d}" for r in regions],
        time_axis=matrix.time_axis,
    )
