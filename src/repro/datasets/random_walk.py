"""Elementary stochastic-process generators used in tests and micro-benchmarks.

These deliberately simple processes (white noise, random walks, AR(1),
sinusoid mixtures) give tests data whose correlation behaviour is easy to
reason about — e.g. independent white-noise series should produce almost no
edges at a high threshold, while common-sinusoid mixtures should produce a
predictable clique.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import DEFAULT_SEED, FLOAT_DTYPE
from repro.exceptions import GenerationError
from repro.timeseries.matrix import TimeSeriesMatrix


def white_noise(
    num_series: int, length: int, seed: Optional[int] = DEFAULT_SEED
) -> TimeSeriesMatrix:
    """Independent standard-normal series (no true correlation structure)."""
    _validate(num_series, length)
    rng = np.random.default_rng(seed)
    values = rng.normal(0.0, 1.0, size=(num_series, length))
    return TimeSeriesMatrix(values)


def random_walks(
    num_series: int, length: int, step_scale: float = 1.0,
    seed: Optional[int] = DEFAULT_SEED,
) -> TimeSeriesMatrix:
    """Independent Gaussian random walks (strong spurious correlations).

    Random walks are the classic source of spurious correlation: even
    independent walks show large sample correlations within a window, making
    them a stress test for thresholding and for the temporal bound.
    """
    _validate(num_series, length)
    if step_scale <= 0:
        raise GenerationError("step_scale must be positive")
    rng = np.random.default_rng(seed)
    steps = rng.normal(0.0, step_scale, size=(num_series, length))
    return TimeSeriesMatrix(np.cumsum(steps, axis=1))


def ar1_series(
    num_series: int,
    length: int,
    coefficient: float = 0.9,
    shared_innovation_weight: float = 0.0,
    seed: Optional[int] = DEFAULT_SEED,
) -> TimeSeriesMatrix:
    """AR(1) series, optionally driven in part by one shared innovation stream.

    ``shared_innovation_weight`` in ``[0, 1)`` mixes a common innovation into
    every series, producing a controllable equicorrelation between them.
    """
    _validate(num_series, length)
    if not -1.0 < coefficient < 1.0:
        raise GenerationError("AR(1) coefficient must lie in (-1, 1)")
    if not 0.0 <= shared_innovation_weight < 1.0:
        raise GenerationError("shared_innovation_weight must lie in [0, 1)")
    rng = np.random.default_rng(seed)
    own = rng.normal(0.0, 1.0, size=(num_series, length))
    shared = rng.normal(0.0, 1.0, size=length)
    w = shared_innovation_weight
    innovations = np.sqrt(1.0 - w**2) * own + w * shared[None, :]
    values = np.empty((num_series, length), dtype=FLOAT_DTYPE)
    values[:, 0] = innovations[:, 0]
    scale = np.sqrt(1.0 - coefficient**2)
    for t in range(1, length):
        values[:, t] = coefficient * values[:, t - 1] + scale * innovations[:, t]
    return TimeSeriesMatrix(values)


def sinusoid_mixture(
    num_series: int,
    length: int,
    num_tones: int = 3,
    noise_scale: float = 0.2,
    seed: Optional[int] = DEFAULT_SEED,
) -> TimeSeriesMatrix:
    """Series sharing a few sinusoidal tones with random per-series phases/weights.

    Energy is concentrated in ``num_tones`` frequencies — the friendly case
    for DFT-truncation sketches (contrast with :func:`white_noise`).
    """
    _validate(num_series, length)
    if num_tones < 1:
        raise GenerationError("need at least one tone")
    if noise_scale < 0:
        raise GenerationError("noise_scale must be non-negative")
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=FLOAT_DTYPE)
    frequencies = rng.uniform(0.005, 0.05, size=num_tones)
    values = np.zeros((num_series, length), dtype=FLOAT_DTYPE)
    for tone in range(num_tones):
        weights = rng.uniform(0.3, 1.0, size=num_series)
        phases = rng.uniform(0.0, 2.0 * np.pi, size=num_series)
        values += weights[:, None] * np.sin(
            2.0 * np.pi * frequencies[tone] * t[None, :] + phases[:, None]
        )
    values += rng.normal(0.0, noise_scale, size=values.shape)
    return TimeSeriesMatrix(values)


def _validate(num_series: int, length: int) -> None:
    if num_series < 1:
        raise GenerationError("need at least one series")
    if length < 2:
        raise GenerationError("series must contain at least two points")
