"""Synthetic equity-market data (the paper's finance motivation).

Dynamic stock-market correlation analysis (Kenett et al. 2010; Tilfani et al.
2021 in the paper's references) studies how the correlation network of
returns changes through time, e.g. correlation spikes during market stress
("contagion").  This generator produces daily returns with that structure:

* a **market factor** every asset loads on,
* **sector factors** shared by assets in the same sector (block-correlation
  ground truth),
* idiosyncratic noise with optional volatility clustering, and
* optional **crisis periods** during which the market-factor loadings inflate,
  so sliding-window networks visibly densify — the behaviour the finance
  example script shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import DEFAULT_SEED, FLOAT_DTYPE
from repro.exceptions import GenerationError
from repro.timeseries.matrix import TimeAxis, TimeSeriesMatrix


@dataclass
class SyntheticMarket:
    """Generator of daily return series with sector structure and crises.

    Parameters
    ----------
    num_assets:
        Number of assets (series).
    num_days:
        Number of trading days.
    num_sectors:
        Number of sectors; assets are distributed round-robin.
    market_beta:
        Baseline loading on the market factor.
    sector_beta:
        Loading on the asset's sector factor.
    crisis_periods:
        Sequence of ``(start_day, end_day)`` ranges during which market betas
        are multiplied by ``crisis_multiplier`` (correlations rise sharply).
    volatility_clustering:
        When ``True``, idiosyncratic volatility follows a slow AR(1) process
        (a light-weight GARCH stand-in).
    """

    num_assets: int = 80
    num_days: int = 1500
    num_sectors: int = 8
    market_beta: float = 0.5
    sector_beta: float = 0.6
    idiosyncratic_scale: float = 1.0
    crisis_periods: Sequence[Tuple[int, int]] = field(default_factory=tuple)
    crisis_multiplier: float = 2.5
    volatility_clustering: bool = True
    seed: Optional[int] = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.num_assets < 2:
            raise GenerationError("need at least two assets")
        if self.num_days < 2:
            raise GenerationError("need at least two days")
        if self.num_sectors < 1:
            raise GenerationError("need at least one sector")
        if self.crisis_multiplier <= 0:
            raise GenerationError("crisis_multiplier must be positive")
        for start, end in self.crisis_periods:
            if not 0 <= start < end <= self.num_days:
                raise GenerationError(
                    f"crisis period ({start}, {end}) outside [0, {self.num_days}]"
                )

    # ------------------------------------------------------------------ public
    def sector_labels(self) -> np.ndarray:
        """Sector index of every asset (round-robin assignment)."""
        return np.arange(self.num_assets) % self.num_sectors

    def generate_returns(self) -> TimeSeriesMatrix:
        """Generate the daily return matrix (one row per asset)."""
        rng = np.random.default_rng(self.seed)
        sectors = self.sector_labels()

        market = rng.normal(0.0, 1.0, size=self.num_days)
        sector_factors = rng.normal(0.0, 1.0, size=(self.num_sectors, self.num_days))

        market_loadings = self.market_beta * (0.7 + 0.6 * rng.random(self.num_assets))
        sector_loadings = self.sector_beta * (0.7 + 0.6 * rng.random(self.num_assets))

        crisis_scale = np.ones(self.num_days, dtype=FLOAT_DTYPE)
        for start, end in self.crisis_periods:
            crisis_scale[start:end] = self.crisis_multiplier

        if self.volatility_clustering:
            log_vol = np.empty(self.num_days, dtype=FLOAT_DTYPE)
            log_vol[0] = 0.0
            for t in range(1, self.num_days):
                log_vol[t] = 0.97 * log_vol[t - 1] + 0.1 * rng.normal()
            idio_vol = self.idiosyncratic_scale * np.exp(log_vol - log_vol.mean())
        else:
            idio_vol = np.full(
                self.num_days, self.idiosyncratic_scale, dtype=FLOAT_DTYPE
            )

        noise = rng.normal(0.0, 1.0, size=(self.num_assets, self.num_days)) * idio_vol
        values = (
            market_loadings[:, None] * (crisis_scale * market)[None, :]
            + sector_loadings[:, None] * sector_factors[sectors]
            + noise
        )
        # Express as percentage returns with a small positive drift.
        values = 0.03 + 0.9 * values

        return TimeSeriesMatrix(
            values,
            series_ids=[self._ticker(i) for i in range(self.num_assets)],
            time_axis=TimeAxis(start=0.0, resolution=1.0),
        )

    def generate_prices(self, initial_price: float = 100.0) -> TimeSeriesMatrix:
        """Cumulate the generated returns into price paths."""
        if initial_price <= 0:
            raise GenerationError("initial_price must be positive")
        returns = self.generate_returns()
        prices = initial_price * np.exp(np.cumsum(returns.values / 100.0, axis=1))
        return returns.with_values(prices)

    # ---------------------------------------------------------------- internal
    def _ticker(self, index: int) -> str:
        letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        first = letters[index % 26]
        second = letters[(index // 26) % 26]
        return f"{first}{second}{index:03d}"


def crisis_edge_density(
    result_edges: np.ndarray, window_starts: np.ndarray,
    crisis_periods: Sequence[Tuple[int, int]],
) -> Tuple[float, float]:
    """Mean edge count inside vs outside crisis windows (used by the example).

    ``result_edges`` is the per-window edge-count series and ``window_starts``
    the matching window start days.  A window counts as "crisis" when its
    start lies inside any crisis period.
    """
    result_edges = np.asarray(result_edges, dtype=FLOAT_DTYPE)
    window_starts = np.asarray(window_starts)
    in_crisis = np.zeros(len(window_starts), dtype=bool)
    for start, end in crisis_periods:
        in_crisis |= (window_starts >= start) & (window_starts < end)
    crisis_mean = float(result_edges[in_crisis].mean()) if np.any(in_crisis) else 0.0
    calm_mean = float(result_edges[~in_crisis].mean()) if np.any(~in_crisis) else 0.0
    return crisis_mean, calm_mean
