"""Graph metrics used to characterize correlation networks.

These are the quantities the domains in the paper's motivation actually look
at once the network is built: how dense it is, how degree is distributed,
whether it fragments into communities, and how much it changes between
consecutive windows.  All functions accept :mod:`networkx` graphs produced by
:mod:`repro.network.builder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from repro.exceptions import DataValidationError


@dataclass
class NetworkSummary:
    """Scalar summary of one window's network."""

    num_nodes: int
    num_edges: int
    density: float
    mean_degree: float
    max_degree: int
    num_components: int
    largest_component: int
    clustering: float
    mean_weight: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "density": self.density,
            "mean_degree": self.mean_degree,
            "max_degree": self.max_degree,
            "num_components": self.num_components,
            "largest_component": self.largest_component,
            "clustering": self.clustering,
            "mean_weight": self.mean_weight,
        }


def summarize(graph: nx.Graph) -> NetworkSummary:
    """Compute the scalar summary of one network."""
    num_nodes = graph.number_of_nodes()
    num_edges = graph.number_of_edges()
    if num_nodes == 0:
        raise DataValidationError("cannot summarize an empty graph")
    degrees = [d for _, d in graph.degree()]
    components = list(nx.connected_components(graph))
    weights = [data.get("weight", 1.0) for _, _, data in graph.edges(data=True)]
    return NetworkSummary(
        num_nodes=num_nodes,
        num_edges=num_edges,
        density=nx.density(graph),
        mean_degree=float(np.mean(degrees)) if degrees else 0.0,
        max_degree=int(max(degrees)) if degrees else 0,
        num_components=len(components),
        largest_component=max((len(c) for c in components), default=0),
        clustering=float(nx.average_clustering(graph)) if num_edges else 0.0,
        mean_weight=float(np.mean(weights)) if weights else 0.0,
    )


def degree_histogram(graph: nx.Graph) -> np.ndarray:
    """Degree histogram (index = degree, value = node count)."""
    return np.asarray(nx.degree_histogram(graph), dtype=np.int64)


def edge_jaccard(first: nx.Graph, second: nx.Graph) -> float:
    """Jaccard similarity of two networks' edge sets (1.0 when both are empty)."""
    edges_a: Set[Tuple] = {tuple(sorted(e)) for e in first.edges()}
    edges_b: Set[Tuple] = {tuple(sorted(e)) for e in second.edges()}
    union = edges_a | edges_b
    if not union:
        return 1.0
    return len(edges_a & edges_b) / len(union)


def temporal_stability(graphs: Sequence[nx.Graph]) -> np.ndarray:
    """Edge Jaccard between consecutive windows.

    High values mean the network changes slowly between windows — precisely
    the "relatively stable correlation when transitioning to the next sliding
    window" observation Dangoron's temporal pruning exploits.  Returned array
    has length ``len(graphs) - 1``.
    """
    graphs = list(graphs)
    if len(graphs) < 2:
        return np.empty(0)
    return np.array(
        [edge_jaccard(graphs[i], graphs[i + 1]) for i in range(len(graphs) - 1)]
    )


def greedy_communities(graph: nx.Graph) -> List[Set]:
    """Greedy modularity communities (empty graph -> every node its own community)."""
    if graph.number_of_edges() == 0:
        return [{node} for node in graph.nodes()]
    return [set(c) for c in nx.algorithms.community.greedy_modularity_communities(graph)]


def community_agreement(communities: List[Set], labels: Dict[object, int]) -> float:
    """Fraction of node pairs whose same/different-community status matches ``labels``.

    ``labels`` maps each node to a ground-truth group (e.g. the fMRI region or
    the finance sector a series belongs to); the score is pair-counting
    accuracy (Rand index) between detected communities and the ground truth.
    """
    nodes = [n for n in labels if any(n in c for c in communities)]
    if len(nodes) < 2:
        return 1.0
    membership = {}
    for index, community in enumerate(communities):
        for node in community:
            membership[node] = index
    agree = 0
    total = 0
    for i in range(len(nodes)):
        for j in range(i + 1, len(nodes)):
            a, b = nodes[i], nodes[j]
            same_detected = membership.get(a) == membership.get(b)
            same_truth = labels[a] == labels[b]
            agree += int(same_detected == same_truth)
            total += 1
    return agree / total if total else 1.0
