"""Correlation-network construction and analysis (substrate S9)."""

from repro.network.builder import graph_from_matrix, graphs_from_result, union_graph
from repro.network.communities import (
    CommunityTimeline,
    LinkActivity,
    blinking_links,
    consensus_communities,
    detect_communities,
    detect_communities_over_time,
    link_activity,
    partition_agreement,
)
from repro.network.dynamic import (
    ChangePoint,
    DynamicNetwork,
    dynamic_network,
    persistence_graph,
)
from repro.network.embedding import (
    NODE_FEATURE_NAMES,
    FeatureSeries,
    connectivity_fingerprints,
    embedding_series,
    feature_series,
    node_features,
    spectral_embedding,
)
from repro.network.export import (
    read_edge_list,
    write_adjacency_npz,
    write_edge_list,
    write_summary_json,
    write_temporal_edge_list,
)
from repro.network.metrics import (
    NetworkSummary,
    community_agreement,
    degree_histogram,
    edge_jaccard,
    greedy_communities,
    summarize,
    temporal_stability,
)

__all__ = [
    "ChangePoint",
    "CommunityTimeline",
    "DynamicNetwork",
    "FeatureSeries",
    "LinkActivity",
    "NODE_FEATURE_NAMES",
    "NetworkSummary",
    "blinking_links",
    "community_agreement",
    "connectivity_fingerprints",
    "consensus_communities",
    "degree_histogram",
    "detect_communities",
    "detect_communities_over_time",
    "dynamic_network",
    "edge_jaccard",
    "embedding_series",
    "feature_series",
    "graph_from_matrix",
    "graphs_from_result",
    "greedy_communities",
    "link_activity",
    "node_features",
    "partition_agreement",
    "persistence_graph",
    "read_edge_list",
    "spectral_embedding",
    "summarize",
    "temporal_stability",
    "union_graph",
    "write_adjacency_npz",
    "write_edge_list",
    "write_summary_json",
    "write_temporal_edge_list",
]
