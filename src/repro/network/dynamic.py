"""Dynamic (time-evolving) correlation networks.

A sliding query produces one network per window; :class:`DynamicNetwork` wraps
that sequence with the temporal views the motivating domains use: per-window
summaries, edge-persistence profiles, change detection between consecutive
windows, and per-node degree trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.core.result import CorrelationSeriesResult
from repro.exceptions import DataValidationError
from repro.network.builder import graphs_from_result, union_graph
from repro.network.metrics import NetworkSummary, summarize, temporal_stability


@dataclass
class ChangePoint:
    """A window transition whose network changed more than a tolerance."""

    window_index: int
    jaccard: float


class DynamicNetwork:
    """The sequence of thresholded correlation networks produced by a query."""

    def __init__(
        self,
        graphs: Sequence[nx.Graph],
        window_starts: Optional[np.ndarray] = None,
    ) -> None:
        self.graphs: List[nx.Graph] = list(graphs)
        if not self.graphs:
            raise DataValidationError("a dynamic network needs at least one window")
        if window_starts is None:
            window_starts = np.arange(len(self.graphs))
        window_starts = np.asarray(window_starts)
        if len(window_starts) != len(self.graphs):
            raise DataValidationError(
                f"expected {len(self.graphs)} window starts, got {len(window_starts)}"
            )
        self.window_starts = window_starts

    # ------------------------------------------------------------ construction
    @classmethod
    def from_result(cls, result: CorrelationSeriesResult) -> "DynamicNetwork":
        """Build from a sliding-query result (node labels = series ids)."""
        return cls(graphs_from_result(result), result.window_starts())

    # ------------------------------------------------------------------ views
    @property
    def num_windows(self) -> int:
        return len(self.graphs)

    def __len__(self) -> int:
        return self.num_windows

    def __getitem__(self, k: int) -> nx.Graph:
        return self.graphs[k]

    def summaries(self) -> List[NetworkSummary]:
        """Per-window scalar summaries."""
        return [summarize(g) for g in self.graphs]

    def edge_count_series(self) -> np.ndarray:
        """Edges per window (temporal density profile)."""
        return np.array([g.number_of_edges() for g in self.graphs])

    def degree_series(self, node) -> np.ndarray:
        """Degree of one node across windows."""
        return np.array(
            [g.degree(node) if node in g else 0 for g in self.graphs]
        )

    def stability_series(self) -> np.ndarray:
        """Edge Jaccard between consecutive windows."""
        return temporal_stability(self.graphs)

    def change_points(self, max_jaccard: float = 0.5) -> List[ChangePoint]:
        """Transitions where consecutive networks overlap less than ``max_jaccard``.

        In the finance example these line up with the onsets of crisis
        periods; in Tomborg piecewise data they line up with segment
        boundaries.
        """
        if not 0.0 <= max_jaccard <= 1.0:
            raise DataValidationError(
                f"max_jaccard must lie in [0, 1], got {max_jaccard}"
            )
        stability = self.stability_series()
        return [
            ChangePoint(window_index=i + 1, jaccard=float(v))
            for i, v in enumerate(stability)
            if v < max_jaccard
        ]

    def edge_persistence(self) -> Dict[Tuple, float]:
        """Fraction of windows in which each edge (node-label pair) is present."""
        counts: Dict[Tuple, int] = {}
        for graph in self.graphs:
            for edge in graph.edges():
                key = tuple(sorted(edge, key=repr))
                counts[key] = counts.get(key, 0) + 1
        return {edge: count / self.num_windows for edge, count in counts.items()}

    def backbone(self, min_persistence: float = 0.5) -> nx.Graph:
        """Edges present in at least ``min_persistence`` of the windows."""
        graph = nx.Graph()
        for g in self.graphs:
            graph.add_nodes_from(g.nodes())
        for edge, persistence in self.edge_persistence().items():
            if persistence >= min_persistence:
                graph.add_edge(*edge, persistence=persistence)
        return graph


def dynamic_network(result: CorrelationSeriesResult) -> DynamicNetwork:
    """Convenience function mirroring :meth:`DynamicNetwork.from_result`."""
    return DynamicNetwork.from_result(result)


def persistence_graph(
    result: CorrelationSeriesResult, min_persistence: float = 0.5
) -> nx.Graph:
    """Persistence-weighted union graph of a query result (see builder.union_graph)."""
    return union_graph(result, min_persistence=min_persistence)
