"""Community structure and blinking links of dynamic correlation networks.

Two analyses the motivating domains run on top of the constructed networks:

* **Communities over time.**  fMRI parcellation and market sector analysis
  both look for groups of series that stay mutually correlated; tracking the
  partition across windows shows when the modular structure reorganizes.
* **Blinking links.**  Climate-network studies (Gozolchiani et al., the
  paper's reference [3]) characterize El Niño events by edges that repeatedly
  appear and disappear — "blinking" — rather than staying on or off.  The
  helpers here count on/off transitions per edge and surface the most
  intermittent ones.

All functions accept either a :class:`repro.network.dynamic.DynamicNetwork`
or a plain sequence of :mod:`networkx` graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import networkx as nx
import numpy as np

from repro.exceptions import DataValidationError
from repro.network.dynamic import DynamicNetwork
from repro.network.metrics import greedy_communities

GraphSequence = Union[DynamicNetwork, Sequence[nx.Graph]]

_COMMUNITY_METHODS = ("greedy", "label_propagation")


def _graphs(networks: GraphSequence) -> List[nx.Graph]:
    if isinstance(networks, DynamicNetwork):
        graphs = list(networks.graphs)
    else:
        graphs = list(networks)
    if not graphs:
        raise DataValidationError("need at least one window's network")
    return graphs


def detect_communities(graph: nx.Graph, method: str = "greedy") -> List[Set]:
    """Partition one window's network into communities.

    ``"greedy"`` uses greedy modularity maximization; ``"label_propagation"``
    uses asynchronous label propagation with a fixed seed (cheaper, noisier).
    Isolated nodes always form singleton communities.
    """
    if method not in _COMMUNITY_METHODS:
        raise DataValidationError(
            f"unknown community method {method!r}; expected one of {_COMMUNITY_METHODS}"
        )
    if method == "greedy":
        return greedy_communities(graph)
    if graph.number_of_edges() == 0:
        return [{node} for node in graph.nodes()]
    communities = nx.algorithms.community.asyn_lpa_communities(
        graph, weight="weight", seed=7
    )
    return [set(c) for c in communities]


@dataclass
class CommunityTimeline:
    """Per-window community partitions of a dynamic network."""

    partitions: List[List[Set]]

    @property
    def num_windows(self) -> int:
        return len(self.partitions)

    def num_communities(self) -> np.ndarray:
        """Number of (non-singleton-only) communities per window."""
        return np.array([len(p) for p in self.partitions], dtype=np.int64)

    def membership(self, window_index: int) -> Dict[object, int]:
        """Node-to-community-index mapping of one window."""
        mapping: Dict[object, int] = {}
        for index, community in enumerate(self.partitions[window_index]):
            for node in community:
                mapping[node] = index
        return mapping

    def stability_series(self) -> np.ndarray:
        """Pair-counting agreement (Rand index) between consecutive partitions."""
        if self.num_windows < 2:
            return np.empty(0)
        return np.array(
            [
                partition_agreement(self.partitions[i], self.partitions[i + 1])
                for i in range(self.num_windows - 1)
            ]
        )

    def node_community_series(self, node) -> List[Optional[int]]:
        """The community index of one node across windows (None when absent)."""
        series: List[Optional[int]] = []
        for window_index in range(self.num_windows):
            series.append(self.membership(window_index).get(node))
        return series


def detect_communities_over_time(
    networks: GraphSequence, method: str = "greedy"
) -> CommunityTimeline:
    """Detect a community partition in every window."""
    graphs = _graphs(networks)
    return CommunityTimeline([detect_communities(g, method) for g in graphs])


def partition_agreement(first: List[Set], second: List[Set]) -> float:
    """Rand index between two partitions of (mostly) the same node set.

    Pairs containing a node absent from either partition are ignored; with
    fewer than two shared nodes the agreement is defined as 1.
    """
    membership_a: Dict[object, int] = {}
    for index, community in enumerate(first):
        for node in community:
            membership_a[node] = index
    membership_b: Dict[object, int] = {}
    for index, community in enumerate(second):
        for node in community:
            membership_b[node] = index
    shared = sorted(set(membership_a) & set(membership_b), key=repr)
    if len(shared) < 2:
        return 1.0
    agree = 0
    total = 0
    for i in range(len(shared)):
        for j in range(i + 1, len(shared)):
            a, b = shared[i], shared[j]
            same_a = membership_a[a] == membership_a[b]
            same_b = membership_b[a] == membership_b[b]
            agree += int(same_a == same_b)
            total += 1
    return agree / total


def consensus_communities(
    networks: GraphSequence, min_persistence: float = 0.5, method: str = "greedy"
) -> List[Set]:
    """Communities of the persistence backbone (edges present in enough windows).

    This is the "static parcellation" view: aggregate the dynamic network into
    its stable backbone, then partition that single graph.
    """
    graphs = _graphs(networks)
    if not 0.0 <= min_persistence <= 1.0:
        raise DataValidationError(
            f"min_persistence must lie in [0, 1], got {min_persistence}"
        )
    counts: Dict[Tuple, int] = {}
    backbone = nx.Graph()
    for graph in graphs:
        backbone.add_nodes_from(graph.nodes())
        for edge in graph.edges():
            key = tuple(sorted(edge, key=repr))
            counts[key] = counts.get(key, 0) + 1
    needed = min_persistence * len(graphs)
    for (u, v), count in counts.items():
        if count >= needed:
            backbone.add_edge(u, v, persistence=count / len(graphs))
    return detect_communities(backbone, method)


# ---------------------------------------------------------------------------
# Blinking links
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LinkActivity:
    """Presence/absence profile of every edge ever observed in the query."""

    edges: List[Tuple]
    activity: np.ndarray  # (num_edges, num_windows) boolean

    @property
    def num_windows(self) -> int:
        return int(self.activity.shape[1])

    def persistence(self) -> np.ndarray:
        """Fraction of windows each edge is present in."""
        return self.activity.mean(axis=1)

    def transitions(self) -> np.ndarray:
        """Number of on/off flips of each edge across consecutive windows."""
        if self.num_windows < 2:
            return np.zeros(len(self.edges), dtype=np.int64)
        return np.abs(np.diff(self.activity.astype(np.int8), axis=1)).sum(axis=1)

    def blinking_edges(self, min_transitions: int = 2) -> List[Tuple[Tuple, int]]:
        """Edges flipping at least ``min_transitions`` times, most intermittent first."""
        if min_transitions < 1:
            raise DataValidationError(
                f"min_transitions must be at least 1, got {min_transitions}"
            )
        flips = self.transitions()
        order = np.argsort(-flips, kind="stable")
        return [
            (self.edges[i], int(flips[i]))
            for i in order
            if flips[i] >= min_transitions
        ]

    def blinking_fraction(self, min_transitions: int = 2) -> float:
        """Fraction of observed edges that blink at least ``min_transitions`` times."""
        if not self.edges:
            return 0.0
        return len(self.blinking_edges(min_transitions)) / len(self.edges)


def link_activity(networks: GraphSequence) -> LinkActivity:
    """Build the edge-presence matrix of a dynamic network."""
    graphs = _graphs(networks)
    edge_index: Dict[Tuple, int] = {}
    for graph in graphs:
        for edge in graph.edges():
            key = tuple(sorted(edge, key=repr))
            if key not in edge_index:
                edge_index[key] = len(edge_index)
    activity = np.zeros((len(edge_index), len(graphs)), dtype=bool)
    for window, graph in enumerate(graphs):
        for edge in graph.edges():
            activity[edge_index[tuple(sorted(edge, key=repr))], window] = True
    edges = [None] * len(edge_index)
    for key, index in edge_index.items():
        edges[index] = key
    return LinkActivity(edges=edges, activity=activity)


def blinking_links(
    networks: GraphSequence, min_transitions: int = 2
) -> List[Tuple[Tuple, int]]:
    """Convenience wrapper: the blinking edges of a dynamic network."""
    return link_activity(networks).blinking_edges(min_transitions)
