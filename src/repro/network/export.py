"""Exporting correlation networks to portable formats.

Downstream analyses (graph embedding, visualization, feature selection — the
follow-on steps the paper's fMRI motivation mentions) typically consume edge
lists or adjacency matrices rather than in-memory graph objects.  These
helpers write and read both, for single windows and for whole dynamic
networks.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Optional, Sequence, Union

import networkx as nx
import numpy as np

from repro.core.result import CorrelationSeriesResult
from repro.exceptions import DataValidationError


def write_edge_list(graph: nx.Graph, path: Union[str, Path]) -> Path:
    """Write one graph as a CSV edge list: ``source, target, weight``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["source", "target", "weight"])
        for u, v, data in graph.edges(data=True):
            writer.writerow([u, v, repr(float(data.get("weight", 1.0)))])
    return path


def read_edge_list(path: Union[str, Path]) -> nx.Graph:
    """Read a graph written by :func:`write_edge_list`."""
    path = Path(path)
    if not path.exists():
        raise DataValidationError(f"edge list not found: {path}")
    graph = nx.Graph()
    with open(path, "r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or [h.strip() for h in header[:3]] != ["source", "target", "weight"]:
            raise DataValidationError(f"{path} is not an edge-list CSV")
        for record in reader:
            if not record:
                continue
            if len(record) < 3:
                raise DataValidationError(f"{path}: malformed edge row {record!r}")
            graph.add_edge(record[0], record[1], weight=float(record[2]))
    return graph


def write_adjacency_npz(
    result: CorrelationSeriesResult, path: Union[str, Path]
) -> Path:
    """Write the dense thresholded matrices of every window to one ``.npz``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {
        f"window_{k:05d}": result.dense(k) for k in range(result.num_windows)
    }
    np.savez_compressed(
        path,
        window_starts=result.window_starts(),
        **arrays,
    )
    return path


def write_temporal_edge_list(
    result: CorrelationSeriesResult, path: Union[str, Path]
) -> Path:
    """Write all windows into one CSV: ``window, source, target, weight``.

    Node names use the result's series ids when available, otherwise indices.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    ids = result.series_ids

    def node(i: int):
        return ids[i] if ids is not None else int(i)

    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["window", "source", "target", "weight"])
        for k, matrix in enumerate(result.matrices):
            for i, j, v in zip(matrix.rows, matrix.cols, matrix.values):
                writer.writerow([k, node(int(i)), node(int(j)), repr(float(v))])
    return path


def write_protocol_edge_list(
    result, path: Union[str, Path], series_ids: Optional[Sequence[str]] = None
) -> Path:
    """Write any unified-protocol result as ``window, source, target, weight, lag``.

    The protocol twin of :func:`write_temporal_edge_list`: consumes only
    ``to_edges()``, so thresholded, top-k and lagged results all export with
    one schema.  Node names use ``series_ids`` (or the result's own, when it
    carries them), otherwise indices.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    ids = series_ids if series_ids is not None else getattr(result, "series_ids", None)

    def node(i: int):
        return ids[i] if ids is not None else int(i)

    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["window", "source", "target", "weight", "lag"])
        for edge in result.to_edges():
            writer.writerow(
                [edge.window, node(edge.source), node(edge.target),
                 repr(float(edge.weight)), int(edge.lag)]
            )
    return path


def write_summary_json(
    result: CorrelationSeriesResult, path: Union[str, Path]
) -> Path:
    """Write the query, engine stats and per-window edge counts as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "query": result.query.describe(),
        "stats": result.stats.as_dict(),
        "edge_counts": [int(m.num_edges) for m in result.matrices],
        "window_starts": [int(s) for s in result.window_starts()],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path
