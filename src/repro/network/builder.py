"""Turning thresholded correlation matrices into graphs.

The end product of the paper's pipeline is a *network*: nodes are series,
edges are above-threshold correlations within a window (Fig. 1).  These
helpers materialize that network as :mod:`networkx` graphs, either for one
window or for a whole sliding-query result, carrying the correlation values as
edge weights and the series identifiers as node labels.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import networkx as nx

from repro.core.result import CorrelationSeriesResult, ThresholdedMatrix
from repro.exceptions import DataValidationError


def graph_from_matrix(
    matrix: ThresholdedMatrix,
    series_ids: Optional[Sequence[str]] = None,
) -> nx.Graph:
    """Build an undirected weighted graph from one window's thresholded matrix.

    Every series becomes a node (isolated series included, so node counts stay
    comparable across windows); every surviving pair becomes an edge whose
    ``weight`` attribute is the correlation value.
    """
    if series_ids is not None and len(series_ids) != matrix.num_series:
        raise DataValidationError(
            f"expected {matrix.num_series} series ids, got {len(series_ids)}"
        )

    def node(i: int):
        return series_ids[i] if series_ids is not None else int(i)

    graph = nx.Graph()
    graph.add_nodes_from(node(i) for i in range(matrix.num_series))
    graph.add_weighted_edges_from(
        (node(int(i)), node(int(j)), float(v))
        for i, j, v in zip(matrix.rows, matrix.cols, matrix.values)
    )
    return graph


def graphs_from_result(
    result: CorrelationSeriesResult, use_series_ids: bool = True
) -> List[nx.Graph]:
    """One graph per window of a sliding-query result."""
    series_ids = result.series_ids if use_series_ids else None
    return [graph_from_matrix(matrix, series_ids) for matrix in result.matrices]


def union_graph(
    result: CorrelationSeriesResult,
    min_persistence: float = 0.0,
    use_series_ids: bool = True,
) -> nx.Graph:
    """Aggregate a sliding-query result into one persistence-weighted graph.

    Each edge's ``persistence`` attribute is the fraction of windows in which
    the pair was above threshold and ``weight`` is its mean correlation over
    those windows.  Edges below ``min_persistence`` are dropped.  This is the
    summary view used by climate "backbone" analyses.
    """
    if not 0.0 <= min_persistence <= 1.0:
        raise DataValidationError(
            f"min_persistence must lie in [0, 1], got {min_persistence}"
        )
    counts: dict = {}
    sums: dict = {}
    for matrix in result.matrices:
        for (i, j), value in matrix.edge_dict().items():
            counts[(i, j)] = counts.get((i, j), 0) + 1
            sums[(i, j)] = sums.get((i, j), 0.0) + value

    series_ids = result.series_ids if use_series_ids else None

    def node(i: int):
        return series_ids[i] if series_ids is not None else int(i)

    graph = nx.Graph()
    graph.add_nodes_from(node(i) for i in range(result.num_series))
    num_windows = max(result.num_windows, 1)
    for (i, j), count in counts.items():
        persistence = count / num_windows
        if persistence >= min_persistence:
            graph.add_edge(
                node(i),
                node(j),
                weight=sums[(i, j)] / count,
                persistence=persistence,
                windows=count,
            )
    return graph
