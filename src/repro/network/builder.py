"""Turning thresholded correlation matrices into graphs.

The end product of the paper's pipeline is a *network*: nodes are series,
edges are above-threshold correlations within a window (Fig. 1).  These
helpers materialize that network as :mod:`networkx` graphs, either for one
window or for a whole sliding-query result, carrying the correlation values as
edge weights and the series identifiers as node labels.

Two families of builders coexist: the original ones bound to
:class:`CorrelationSeriesResult`, and protocol-based ones
(:func:`graphs_from_edges`, :func:`union_graph_from_edges`) that consume any
object implementing the unified result protocol of :mod:`repro.api` —
thresholded series, top-k and lagged results alike — via ``to_edges()``.
Lagged edges carry their best lag as a ``lag`` edge attribute.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import networkx as nx

from repro.core.result import CorrelationSeriesResult, ThresholdedMatrix
from repro.exceptions import DataValidationError


def _protocol_nodes(result, num_nodes: Optional[int]):
    """Node count and labels for a protocol result (series ids when known)."""
    if num_nodes is None:
        num_nodes = getattr(result, "num_series", None)
    series_ids = getattr(result, "series_ids", None)
    if series_ids is not None and num_nodes is None:
        num_nodes = len(series_ids)

    def node(i: int):
        return series_ids[i] if series_ids is not None else int(i)

    return num_nodes, node


def graphs_from_edges(result, num_nodes: Optional[int] = None) -> List[nx.Graph]:
    """One graph per window from any unified-protocol result.

    Consumes only the protocol surface (``num_windows``, ``to_edges()``), so
    thresholded, top-k and lagged results all work.  Edge weights are the
    correlation values; lagged edges additionally carry ``lag``.  When the
    result exposes ``num_series``/``series_ids`` (or ``num_nodes`` is given),
    isolated series appear as nodes, keeping node counts comparable across
    windows like :func:`graph_from_matrix` does.
    """
    num_nodes, node = _protocol_nodes(result, num_nodes)
    graphs = [nx.Graph() for _ in range(result.num_windows)]
    if num_nodes is not None:
        for graph in graphs:
            graph.add_nodes_from(node(i) for i in range(num_nodes))
    for edge in result.to_edges():
        if not 0 <= edge.window < len(graphs):
            raise DataValidationError(
                f"edge window index {edge.window} outside "
                f"[0, {result.num_windows})"
            )
        graphs[edge.window].add_edge(
            node(edge.source), node(edge.target), weight=edge.weight, lag=edge.lag
        )
    return graphs


def union_graph_from_edges(
    result,
    min_persistence: float = 0.0,
    num_nodes: Optional[int] = None,
) -> nx.Graph:
    """Persistence-weighted union graph from any unified-protocol result.

    The protocol twin of :func:`union_graph`: each edge's ``persistence`` is
    the fraction of windows in which the pair appears, ``weight`` its mean
    correlation over those windows, and ``lag`` its mean lag (0 for zero-lag
    results).  Edges below ``min_persistence`` are dropped.
    """
    if not 0.0 <= min_persistence <= 1.0:
        raise DataValidationError(
            f"min_persistence must lie in [0, 1], got {min_persistence}"
        )
    num_nodes, node = _protocol_nodes(result, num_nodes)
    counts: dict = {}
    weight_sums: dict = {}
    lag_sums: dict = {}
    for edge in result.to_edges():
        pair = (edge.source, edge.target)
        counts[pair] = counts.get(pair, 0) + 1
        weight_sums[pair] = weight_sums.get(pair, 0.0) + edge.weight
        lag_sums[pair] = lag_sums.get(pair, 0.0) + edge.lag

    graph = nx.Graph()
    if num_nodes is not None:
        graph.add_nodes_from(node(i) for i in range(num_nodes))
    num_windows = max(result.num_windows, 1)
    for (i, j), count in counts.items():
        persistence = count / num_windows
        if persistence >= min_persistence:
            graph.add_edge(
                node(i),
                node(j),
                weight=weight_sums[(i, j)] / count,
                persistence=persistence,
                windows=count,
                lag=lag_sums[(i, j)] / count,
            )
    return graph


def graph_from_matrix(
    matrix: ThresholdedMatrix,
    series_ids: Optional[Sequence[str]] = None,
) -> nx.Graph:
    """Build an undirected weighted graph from one window's thresholded matrix.

    Every series becomes a node (isolated series included, so node counts stay
    comparable across windows); every surviving pair becomes an edge whose
    ``weight`` attribute is the correlation value.
    """
    if series_ids is not None and len(series_ids) != matrix.num_series:
        raise DataValidationError(
            f"expected {matrix.num_series} series ids, got {len(series_ids)}"
        )

    def node(i: int):
        return series_ids[i] if series_ids is not None else int(i)

    graph = nx.Graph()
    graph.add_nodes_from(node(i) for i in range(matrix.num_series))
    graph.add_weighted_edges_from(
        (node(int(i)), node(int(j)), float(v))
        for i, j, v in zip(matrix.rows, matrix.cols, matrix.values)
    )
    return graph


def graphs_from_result(
    result: CorrelationSeriesResult, use_series_ids: bool = True
) -> List[nx.Graph]:
    """One graph per window of a sliding-query result."""
    series_ids = result.series_ids if use_series_ids else None
    return [graph_from_matrix(matrix, series_ids) for matrix in result.matrices]


def union_graph(
    result: CorrelationSeriesResult,
    min_persistence: float = 0.0,
    use_series_ids: bool = True,
) -> nx.Graph:
    """Aggregate a sliding-query result into one persistence-weighted graph.

    Each edge's ``persistence`` attribute is the fraction of windows in which
    the pair was above threshold and ``weight`` is its mean correlation over
    those windows.  Edges below ``min_persistence`` are dropped.  This is the
    summary view used by climate "backbone" analyses.
    """
    if not 0.0 <= min_persistence <= 1.0:
        raise DataValidationError(
            f"min_persistence must lie in [0, 1], got {min_persistence}"
        )
    counts: dict = {}
    sums: dict = {}
    for matrix in result.matrices:
        for (i, j), value in matrix.edge_dict().items():
            counts[(i, j)] = counts.get((i, j), 0) + 1
            sums[(i, j)] = sums.get((i, j), 0.0) + value

    series_ids = result.series_ids if use_series_ids else None

    def node(i: int):
        return series_ids[i] if series_ids is not None else int(i)

    graph = nx.Graph()
    graph.add_nodes_from(node(i) for i in range(result.num_series))
    num_windows = max(result.num_windows, 1)
    for (i, j), count in counts.items():
        persistence = count / num_windows
        if persistence >= min_persistence:
            graph.add_edge(
                node(i),
                node(j),
                weight=sums[(i, j)] / count,
                persistence=persistence,
                windows=count,
            )
    return graph
