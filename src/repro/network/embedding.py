"""Per-window node features and spectral embeddings of correlation networks.

The paper's fMRI motivation frames network construction as the input to
"feature selection and graph embedding".  This module provides the follow-on
step: per-node structural features for every window (degree, strength,
clustering, core number), their time series across windows, a Laplacian
spectral embedding of each window's graph, and the flattened
connectivity-fingerprint representation commonly fed to downstream
classifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import networkx as nx
import numpy as np

from repro.config import FLOAT_DTYPE
from repro.core.result import CorrelationSeriesResult
from repro.exceptions import DataValidationError
from repro.network.dynamic import DynamicNetwork

GraphSequence = Union[DynamicNetwork, Sequence[nx.Graph]]

#: Names (and order) of the per-node features produced by :func:`node_features`.
NODE_FEATURE_NAMES = ("degree", "strength", "clustering", "core_number")


def _graphs(networks: GraphSequence) -> List[nx.Graph]:
    if isinstance(networks, DynamicNetwork):
        graphs = list(networks.graphs)
    else:
        graphs = list(networks)
    if not graphs:
        raise DataValidationError("need at least one window's network")
    return graphs


def _node_order(graphs: Sequence[nx.Graph]) -> List:
    nodes = set()
    for graph in graphs:
        nodes.update(graph.nodes())
    return sorted(nodes, key=repr)


def node_features(graph: nx.Graph, nodes: Optional[Sequence] = None) -> np.ndarray:
    """Structural feature matrix of one window's graph.

    Returns an array of shape ``(len(nodes), len(NODE_FEATURE_NAMES))`` in the
    order of ``nodes`` (defaults to the graph's nodes sorted by repr).  Nodes
    absent from the graph get all-zero rows.
    """
    if nodes is None:
        nodes = sorted(graph.nodes(), key=repr)
    nodes = list(nodes)
    features = np.zeros((len(nodes), len(NODE_FEATURE_NAMES)), dtype=FLOAT_DTYPE)
    if graph.number_of_nodes() == 0:
        return features
    clustering = nx.clustering(graph)
    core = nx.core_number(graph) if graph.number_of_edges() else {}
    strength = dict(graph.degree(weight="weight"))
    degree = dict(graph.degree())
    for row, node in enumerate(nodes):
        if node not in graph:
            continue
        features[row, 0] = degree.get(node, 0)
        features[row, 1] = strength.get(node, 0.0)
        features[row, 2] = clustering.get(node, 0.0)
        features[row, 3] = core.get(node, 0)
    return features


@dataclass(frozen=True)
class FeatureSeries:
    """Per-node features of every window, on a common node ordering."""

    nodes: List
    feature_names: List[str]
    values: np.ndarray  # (num_windows, num_nodes, num_features)

    @property
    def num_windows(self) -> int:
        return int(self.values.shape[0])

    def node_series(self, node, feature: str) -> np.ndarray:
        """One node's feature trajectory across windows."""
        try:
            node_index = self.nodes.index(node)
        except ValueError:
            raise DataValidationError(f"unknown node {node!r}") from None
        try:
            feature_index = self.feature_names.index(feature)
        except ValueError:
            raise DataValidationError(
                f"unknown feature {feature!r}; have {self.feature_names}"
            ) from None
        return self.values[:, node_index, feature_index]

    def window_matrix(self, window_index: int) -> np.ndarray:
        """The ``(num_nodes, num_features)`` matrix of one window."""
        return self.values[window_index]

    def flattened(self) -> np.ndarray:
        """``(num_windows, num_nodes * num_features)`` design matrix."""
        return self.values.reshape(self.num_windows, -1)


def feature_series(networks: GraphSequence) -> FeatureSeries:
    """Per-node structural features for every window of a dynamic network."""
    graphs = _graphs(networks)
    nodes = _node_order(graphs)
    values = np.stack([node_features(g, nodes) for g in graphs], axis=0)
    return FeatureSeries(
        nodes=nodes, feature_names=list(NODE_FEATURE_NAMES), values=values
    )


def spectral_embedding(
    graph: nx.Graph, dim: int = 2, nodes: Optional[Sequence] = None
) -> np.ndarray:
    """Laplacian spectral embedding of one window's graph.

    Uses the eigenvectors of the symmetric normalized Laplacian associated
    with the ``dim`` smallest non-trivial eigenvalues.  Rows follow ``nodes``
    (default: graph nodes sorted by repr); isolated nodes map to the origin.
    """
    if dim < 1:
        raise DataValidationError(f"embedding dimension must be >= 1, got {dim}")
    if nodes is None:
        nodes = sorted(graph.nodes(), key=repr)
    nodes = list(nodes)
    n = len(nodes)
    if n == 0:
        return np.zeros((0, dim), dtype=FLOAT_DTYPE)
    if dim >= n:
        raise DataValidationError(
            f"embedding dimension {dim} must be smaller than the node count {n}"
        )
    adjacency = np.zeros((n, n), dtype=FLOAT_DTYPE)
    index = {node: i for i, node in enumerate(nodes)}
    for u, v, data in graph.edges(data=True):
        if u in index and v in index:
            weight = abs(float(data.get("weight", 1.0)))
            adjacency[index[u], index[v]] = weight
            adjacency[index[v], index[u]] = weight
    degrees = adjacency.sum(axis=1)
    isolated = degrees <= 0
    inv_sqrt = np.where(isolated, 0.0, 1.0 / np.sqrt(np.where(isolated, 1.0, degrees)))
    laplacian = np.eye(n, dtype=FLOAT_DTYPE) - (
        inv_sqrt[:, None] * adjacency * inv_sqrt[None, :]
    )
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    # Skip the trivial eigenvector(s) associated with eigenvalue ~0, one per
    # connected component; take the next `dim` directions.
    order = np.argsort(eigenvalues)
    components = max(1, int(np.count_nonzero(eigenvalues[order] < 1e-9)))
    chosen = order[components : components + dim]
    if len(chosen) < dim:
        chosen = order[-dim:]
    embedding = eigenvectors[:, chosen].astype(FLOAT_DTYPE)
    embedding[isolated, :] = 0.0
    return embedding


def embedding_series(networks: GraphSequence, dim: int = 2) -> List[np.ndarray]:
    """Spectral embedding of every window, on a common node ordering."""
    graphs = _graphs(networks)
    nodes = _node_order(graphs)
    return [spectral_embedding(g, dim=dim, nodes=nodes) for g in graphs]


def connectivity_fingerprints(result: CorrelationSeriesResult) -> np.ndarray:
    """Flattened upper-triangle correlation vectors, one row per window.

    This is the representation dynamic-functional-connectivity studies feed to
    feature selection: each window becomes a ``N*(N-1)/2`` vector of (thresholded)
    correlations, and windows become samples.
    """
    n = result.num_series
    iu, ju = np.triu_indices(n, k=1)
    fingerprints = np.zeros((result.num_windows, len(iu)), dtype=FLOAT_DTYPE)
    for k, matrix in enumerate(result.matrices):
        dense = matrix.to_dense(include_diagonal=False)
        fingerprints[k] = dense[iu, ju]
    return fingerprints
