"""Command-line interface for the Dangoron reproduction.

Five subcommands cover the workflow a user of the system actually runs:

``repro generate``
    Produce a synthetic dataset (climate, fMRI, finance, rain gauges, or a
    Tomborg configuration) and write it as a wide CSV.
``repro query``
    Run a sliding correlation query over a wide CSV or a chunk-store
    ``.npz`` through a :class:`~repro.api.CorrelationSession` and print the
    per-window summary (optionally exporting the edge list).  ``--mode``
    selects the query type (``threshold``, ``topk`` or ``lagged``),
    repeatable ``--engine-opt key=value`` flags reach every engine option
    without writing Python, ``--workers N`` shards large queries of any
    mode across a worker pool, and ``--memory-budget BYTES`` streams
    ``.npz`` inputs through the tiled out-of-core builder (lagged mode:
    streamed window buffers) without materializing the dense matrix (both
    bit-identical, see :mod:`repro.parallel` and :mod:`repro.core.tiled`).
``repro serve``
    Run the long-lived correlation query service over a dataset catalog
    directory (see :mod:`repro.service` and ``docs/service.md``).
``repro experiment``
    Regenerate one of the experiments (E1–E14) and print its table.
``repro info``
    Show the library version, registered engines and known experiments.

The module is also installed as the ``repro`` console script; every function
is importable so tests drive :func:`main` directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import __version__
from repro.api.queries import LaggedQuery, ThresholdQuery, TopKQuery
from repro.api.session import CorrelationSession
from repro.analysis.report import format_table, summarize_result
from repro.core.engine import available_engines
from repro.core.query import THRESHOLD_ABSOLUTE, THRESHOLD_SIGNED
from repro.core.result import CorrelationSeriesResult
from repro.datasets.climate import SyntheticUSCRN
from repro.datasets.finance import SyntheticMarket
from repro.datasets.fmri import SyntheticBOLD
from repro.datasets.loaders import load_wide_csv, write_wide_csv
from repro.datasets.raingauge import SyntheticRainGauges
from repro.exceptions import ReproError
from repro.network.export import write_protocol_edge_list, write_temporal_edge_list
from repro.timeseries.matrix import TimeSeriesMatrix
from repro.tomborg.generator import TomborgGenerator
from repro.tomborg.distributions import named_distribution
from repro.tomborg.spectral import named_spectrum

_DATASETS = ("climate", "fmri", "finance", "raingauge", "tomborg")
_QUERY_MODES = ("threshold", "topk", "lagged")


# ---------------------------------------------------------------------------
# Dataset generation
# ---------------------------------------------------------------------------

def _generate_dataset(args: argparse.Namespace) -> TimeSeriesMatrix:
    if args.dataset == "climate":
        return SyntheticUSCRN(
            num_stations=args.num_series, num_days=max(2, args.length // 24),
            seed=args.seed,
        ).generate_anomalies()
    if args.dataset == "fmri":
        side = max(3, int(round(args.num_series ** (1.0 / 3.0))) + 1)
        matrix, _ = SyntheticBOLD(
            grid_shape=(side, side, max(2, args.num_series // (side * side) + 1)),
            num_volumes=args.length,
            seed=args.seed,
        ).generate()
        return matrix
    if args.dataset == "finance":
        return SyntheticMarket(
            num_assets=args.num_series, num_days=args.length, seed=args.seed
        ).generate_returns()
    if args.dataset == "raingauge":
        return SyntheticRainGauges(
            num_gauges=args.num_series, num_days=args.length, seed=args.seed
        ).generate()
    distribution = named_distribution(args.distribution)
    spectrum = named_spectrum(args.spectrum)
    generator = TomborgGenerator(
        num_series=args.num_series, spectrum=spectrum, seed=args.seed
    )
    return generator.generate(args.length, distribution).matrix


def _command_generate(args: argparse.Namespace) -> int:
    matrix = _generate_dataset(args)
    path = write_wide_csv(matrix, args.output)
    print(
        f"wrote {matrix.num_series} series x {matrix.length} columns "
        f"({args.dataset}) to {path}"
    )
    return 0


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

def parse_engine_option(text: str) -> tuple:
    """Parse one ``--engine-opt key=value`` flag into a typed ``(key, value)``.

    Values are coerced in order: booleans (``true``/``false``/``yes``/``no``,
    case-insensitive), ints, floats, ``none``/``null`` to ``None``; anything
    else stays a string (e.g. ``pivot_strategy=kcenter``).
    """
    key, separator, raw = text.partition("=")
    key = key.strip()
    if not separator or not key:
        raise ReproError(
            f"--engine-opt expects key=value, got {text!r}"
        )
    raw = raw.strip()
    lowered = raw.lower()
    if lowered in ("true", "yes"):
        return key, True
    if lowered in ("false", "no"):
        return key, False
    if lowered in ("none", "null"):
        return key, None
    try:
        return key, int(raw)
    except ValueError:
        pass
    try:
        return key, float(raw)
    except ValueError:
        pass
    return key, raw


_BYTE_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": 1024, "kb": 1024, "kib": 1024,
    "m": 1024**2, "mb": 1024**2, "mib": 1024**2,
    "g": 1024**3, "gb": 1024**3, "gib": 1024**3,
}


def parse_byte_size(text: str) -> int:
    """Parse a human byte count (``"64MiB"``, ``"2g"``, ``"1048576"``) to bytes.

    Used by ``--memory-budget``; suffixes are binary (``k``/``m``/``g`` =
    1024-based) and case-insensitive.  Anything unparseable or non-positive
    raises :class:`ReproError` naming the input.
    """
    stripped = text.strip().lower()
    index = len(stripped)
    while index > 0 and not (stripped[index - 1].isdigit() or stripped[index - 1] == "."):
        index -= 1
    number, suffix = stripped[:index], stripped[index:].strip()
    try:
        scale = _BYTE_SUFFIXES[suffix]
        value = int(float(number) * scale)
    except (KeyError, ValueError):
        raise ReproError(
            f"cannot parse byte size {text!r} (expected e.g. 1048576, 64MB, 2GiB)"
        ) from None
    if value < 1:
        raise ReproError(f"byte size must be positive, got {text!r}")
    return value


def _load_input_matrix(path: str, memory_budget: Optional[int] = None) -> TimeSeriesMatrix:
    """Load a query input: wide CSV, or a ``.npz`` chunk store from a catalog.

    With ``memory_budget`` set, a ``.npz`` input is opened through the lazy
    :class:`~repro.storage.chunk_store.ChunkStoreReader` and wrapped in a
    :class:`~repro.core.tiled.ChunkBackedMatrix` — the dense matrix is never
    materialized for aligned queries, which is the CLI's out-of-core path
    (see ``docs/scaling.md``).

    A missing file or a corrupt/truncated archive used to escape as a raw
    ``FileNotFoundError``/``zipfile``/``numpy`` traceback; every failure mode
    now surfaces as :class:`~repro.exceptions.ExperimentError` naming the
    path, matching the planner's error style.
    """
    from repro.exceptions import ExperimentError
    from repro.storage.chunk_store import ChunkStore, ChunkStoreReader

    try:
        if path.endswith(".npz"):
            if memory_budget is not None:
                from repro.core.tiled import ChunkBackedMatrix

                reader = ChunkStoreReader(path)
                if reader.length == 0:
                    raise ExperimentError(f"chunk store {path} contains no columns")
                return ChunkBackedMatrix(reader)
            store = ChunkStore.load(path)
            if store.length == 0:
                raise ExperimentError(f"chunk store {path} contains no columns")
            return store.to_matrix()
        return load_wide_csv(path)
    except ReproError:
        raise  # already named and typed by the loader
    except OSError as error:
        raise ExperimentError(f"cannot read query input {path}: {error}") from error
    except (UnicodeDecodeError, ValueError) as error:
        raise ExperimentError(
            f"query input {path} is not a readable dataset "
            f"(expected a wide CSV or a chunk-store .npz): {error}"
        ) from error


def _build_query(args: argparse.Namespace, end: int):
    common = dict(
        start=args.start,
        end=end,
        window=args.window,
        step=args.step,
        threshold_mode=THRESHOLD_ABSOLUTE if args.absolute else THRESHOLD_SIGNED,
    )
    if args.mode == "topk":
        return TopKQuery(k=args.k, **common)
    if args.mode == "lagged":
        return LaggedQuery(threshold=args.threshold, max_lag=args.max_lag, **common)
    return ThresholdQuery(threshold=args.threshold, **common)


def _cost_model_for(choice):
    """The planner cost model a ``--cost-calibration`` flag asks for.

    ``None`` (flag absent) defers to the planner's process-shared model,
    which honours the ``REPRO_COST_CALIBRATION`` environment knob.
    """
    from repro.api.cost import CostModel

    if choice == "fixture":
        return CostModel.fixture()
    if choice == "measured":
        return CostModel.measured()
    return None


def _command_query(args: argparse.Namespace) -> int:
    if args.mode != "threshold" and (args.engine != "dangoron" or args.engine_opt):
        # Engines answer threshold queries only; accepting these flags for
        # topk/lagged would silently ignore them.  --workers and
        # --memory-budget apply to every mode: the planner shards and
        # streams all query families.
        raise ReproError(
            f"--engine/--engine-opt apply to --mode threshold only "
            f"(mode {args.mode!r} does not run through an engine)"
        )
    if args.workers is not None and args.workers < 1:
        raise ReproError(f"--workers must be at least 1, got {args.workers}")
    memory_budget = (
        parse_byte_size(args.memory_budget) if args.memory_budget is not None else None
    )
    matrix = _load_input_matrix(args.input, memory_budget=memory_budget)
    end = args.end if args.end is not None else matrix.length
    query = _build_query(args, end)
    session = CorrelationSession(
        matrix,
        engine=args.engine,
        engine_options=dict(parse_engine_option(opt) for opt in args.engine_opt),
        basic_window_size=args.basic_window,
        workers=args.workers,
        memory_budget=memory_budget,
        cost_model=_cost_model_for(args.cost_calibration),
    )
    # Shows whether the planner chose serial or sharded execution — in
    # particular *why* an explicit --workers request stays serial (pair
    # count under the floor, unaligned windows, or an engine configuration
    # that cannot shard) — and whether the data path builds dense or
    # tiled/streamed under a --memory-budget.
    print(session.plan(query).describe())
    result = session.run(query)

    print(result.describe())
    if isinstance(result, CorrelationSeriesResult):
        headers = ["window", "start", "end", "edges", "density"]
        rows = []
        starts = result.window_starts()
        engine = session.planner.resolve_engine()
        for k, matrix_k in enumerate(result.matrices):
            rows.append(
                [k, int(starts[k]), int(starts[k]) + query.window, matrix_k.num_edges,
                 matrix_k.density()]
            )
        print(format_table(headers, rows, title=f"{engine.describe()} on {args.input}"))
        stats_rows = [
            [key, value] for key, value in sorted(result.stats.as_dict().items())
        ]
        print(format_table(["stat", "value"], stats_rows, title="engine statistics"))
    else:
        print(summarize_result(result, title=f"{args.mode} query on {args.input}"))

    if args.edges_output:
        if isinstance(result, CorrelationSeriesResult):
            path = write_temporal_edge_list(result, args.edges_output)
        else:
            path = write_protocol_edge_list(
                result, args.edges_output, series_ids=matrix.series_ids
            )
        print(f"wrote temporal edge list to {path}")
    return 0


# ---------------------------------------------------------------------------
# Service
# ---------------------------------------------------------------------------

def create_server(args: argparse.Namespace):
    """Build the (unstarted) service server from parsed ``repro serve`` args.

    Split from :func:`_command_serve` so tests can construct a server on an
    ephemeral port without blocking on ``serve_forever``.
    """
    # Imported lazily: most CLI invocations never need the HTTP stack.
    from repro.service import CorrelationServer, CorrelationService
    from repro.storage.catalog import Catalog

    if args.workers is not None and args.workers < 1:
        raise ReproError(f"--workers must be at least 1, got {args.workers}")
    if args.service_workers is not None and args.service_workers < 1:
        raise ReproError(
            f"--service-workers must be at least 1, got {args.service_workers}"
        )
    memory_budget = (
        parse_byte_size(args.memory_budget) if args.memory_budget is not None else None
    )
    service = CorrelationService(
        Catalog(args.catalog),
        engine=args.engine,
        engine_options=dict(parse_engine_option(opt) for opt in args.engine_opt),
        basic_window_size=args.basic_window,
        workers=args.workers,
        memory_budget=memory_budget,
        write_buffer_columns=args.write_buffer_columns,
        write_buffer_seconds=args.write_buffer_seconds,
        cost_model=_cost_model_for(args.cost_calibration),
        service_workers=args.service_workers,
        admission_queue_limit=args.admission_queue_limit,
        batch_window_seconds=args.batch_window_seconds,
    )
    return CorrelationServer(
        service, host=args.host, port=args.port, verbose=args.verbose
    )


def _command_serve(args: argparse.Namespace) -> int:
    server = create_server(args)
    names = server.service.catalog.dataset_names()
    print(f"serving {len(names)} dataset(s) from {args.catalog} on {server.url}")
    if names:
        print("datasets: " + ", ".join(names))
    print("endpoints: GET /healthz  GET /datasets  POST /datasets/{name}/query  (see docs/service.md)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    return 0


# ---------------------------------------------------------------------------
# Experiments and info
# ---------------------------------------------------------------------------

def _command_experiment(args: argparse.Namespace) -> int:
    # Imported lazily: the registry pulls in every engine and workload builder.
    from repro.experiments.registry import EXPERIMENTS, run_experiment

    if args.list:
        for experiment_id, function in sorted(EXPERIMENTS.items()):
            print(f"{experiment_id}: {(function.__doc__ or '').strip().splitlines()[0]}")
        return 0
    if not args.experiment_id:
        print("error: specify an experiment id or --list", file=sys.stderr)
        return 2
    result = run_experiment(args.experiment_id, scale=args.scale)
    print(result.table())
    if result.notes:
        print(f"[{result.experiment_id}] {result.notes}")
    return 0


def _command_info(args: argparse.Namespace) -> int:
    from repro.experiments.registry import EXPERIMENTS
    from repro.parallel.executor import available_workers

    print(f"dangoron-repro {__version__}")
    print("engines: " + ", ".join(sorted(available_engines())))
    print("experiments: " + ", ".join(sorted(EXPERIMENTS)))
    print("datasets: " + ", ".join(_DATASETS))
    print(f"cpus available for --workers: {available_workers()}")
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dangoron reproduction: sliding-window correlation networks.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command")

    generate = subparsers.add_parser(
        "generate", help="generate a synthetic dataset and write it as a wide CSV"
    )
    generate.add_argument("dataset", choices=_DATASETS)
    generate.add_argument("--output", "-o", required=True, help="output CSV path")
    generate.add_argument("--num-series", type=int, default=32)
    generate.add_argument(
        "--length", type=int, default=1024,
        help="series length (days for finance/raingauge, hours/volumes otherwise)",
    )
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument(
        "--distribution", default="bimodal", help="Tomborg correlation distribution"
    )
    generate.add_argument("--spectrum", default="power_law", help="Tomborg spectrum")
    generate.set_defaults(handler=_command_generate)

    query = subparsers.add_parser(
        "query", help="run a sliding correlation query over a wide CSV"
    )
    query.add_argument(
        "input",
        help="wide CSV produced by 'repro generate', or a chunk-store .npz "
             "from a storage catalog",
    )
    query.add_argument(
        "--mode", default="threshold", choices=_QUERY_MODES,
        help="query type: thresholded matrices, top-k pairs, or lagged edges",
    )
    query.add_argument("--engine", default="dangoron", choices=sorted(available_engines()))
    query.add_argument(
        "--engine-opt", action="append", default=[], metavar="KEY=VALUE",
        help="engine constructor option (repeatable), e.g. --engine-opt slack=0.05 "
             "--engine-opt use_horizontal_pruning=true",
    )
    query.add_argument("--window", type=int, required=True)
    query.add_argument("--step", type=int, required=True)
    query.add_argument("--threshold", type=float, default=0.7)
    query.add_argument("--k", type=int, default=10, help="pairs per window (topk mode)")
    query.add_argument(
        "--max-lag", type=int, default=1, help="lag range in columns (lagged mode)"
    )
    query.add_argument("--start", type=int, default=0)
    query.add_argument("--end", type=int, default=None)
    query.add_argument("--basic-window", type=int, default=32)
    query.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shard large queries (any mode) across N pool workers "
             "(results are bit-identical to serial execution)",
    )
    query.add_argument(
        "--memory-budget", default=None, metavar="BYTES",
        help="bound the resident data (e.g. 64MB): sketch builds tile and "
             "lagged windows stream; .npz inputs then read from disk without "
             "materializing the dense matrix",
    )
    query.add_argument(
        "--cost-calibration", default=None, choices=["measured", "fixture"],
        help="how the planner prices candidate plans: 'measured' "
             "micro-benchmarks this machine on first use, 'fixture' uses the "
             "committed deterministic calibration (default: the "
             "REPRO_COST_CALIBRATION environment knob)",
    )
    query.add_argument(
        "--absolute", action="store_true", help="threshold on |c| instead of c"
    )
    query.add_argument(
        "--edges-output", default=None, help="also write the temporal edge list CSV"
    )
    query.set_defaults(handler=_command_query)

    serve = subparsers.add_parser(
        "serve", help="run the correlation query service over a dataset catalog"
    )
    serve.add_argument(
        "--catalog", required=True,
        help="catalog directory (created by repro.storage.Catalog)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8350, help="listening port (0 = ephemeral)"
    )
    serve.add_argument(
        "--engine", default="dangoron", choices=sorted(available_engines()),
        help="engine answering threshold queries",
    )
    serve.add_argument(
        "--engine-opt", action="append", default=[], metavar="KEY=VALUE",
        help="engine constructor option (repeatable)",
    )
    serve.add_argument("--basic-window", type=int, default=32)
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="default worker count for sharded threshold queries "
             "(requests may override per call)",
    )
    serve.add_argument(
        "--memory-budget", default=None, metavar="BYTES",
        help="bound each dataset's sketch-build working set (e.g. 256MB); "
             "larger datasets build their statistics tiled, bit-identically",
    )
    serve.add_argument(
        "--write-buffer-columns", type=int, default=None, metavar="N",
        help="batch appended time steps and flush once N columns are "
             "buffered (default: write-through, no buffering)",
    )
    serve.add_argument(
        "--write-buffer-seconds", type=float, default=None, metavar="SECONDS",
        help="flush buffered appends once the oldest buffered column is this "
             "old; reads always flush first, so queries see every append",
    )
    serve.add_argument(
        "--cost-calibration", default=None, choices=["measured", "fixture"],
        help="how each dataset's planner prices candidate plans (see "
             "'repro query --cost-calibration'; default: the "
             "REPRO_COST_CALIBRATION environment knob)",
    )
    serve.add_argument(
        "--service-workers", type=int, default=None, metavar="N",
        help="run query scans in a pool of N forked worker processes over "
             "shared mmap sketch segments (default: in-process execution)",
    )
    serve.add_argument(
        "--admission-queue-limit", type=int, default=None, metavar="N",
        help="shed query load with 429 + Retry-After once a dataset has N "
             "requests in flight (default: admit everything)",
    )
    serve.add_argument(
        "--batch-window-seconds", type=float, default=0.0, metavar="SECONDS",
        help="group-commit window for threshold batching: wait this long for "
             "compatible queries to join one shared scan (default: 0, only "
             "batch while queued)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every request to stderr"
    )
    serve.set_defaults(handler=_command_serve)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's experiments"
    )
    experiment.add_argument("experiment_id", nargs="?", default=None)
    experiment.add_argument("--scale", type=float, default=0.3)
    experiment.add_argument("--list", action="store_true", help="list experiment ids")
    experiment.set_defaults(handler=_command_experiment)

    info = subparsers.add_parser("info", help="show version, engines and experiments")
    info.set_defaults(handler=_command_info)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if not getattr(args, "handler", None):
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
