"""Accuracy metrics: how well an engine's networks match the exact answer.

The paper reports that Dangoron "achieves an accuracy above 90 percent,
comparable to Parcorr".  For threshold-based network construction the natural
accuracy notions are edge-set precision, recall and F1 against the exact
(brute-force) result, plus value-level error for the edges both engines
report.  All metrics here are computed per window and aggregated over the
query, because a pruned engine's misses concentrate in the windows right
after a pair crosses the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.result import CorrelationSeriesResult
from repro.exceptions import ExperimentError


@dataclass
class WindowAccuracy:
    """Edge-set agreement of one window."""

    window_index: int
    true_edges: int
    reported_edges: int
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        reported = self.true_positives + self.false_positives
        return self.true_positives / reported if reported else 1.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def jaccard(self) -> float:
        union = self.true_positives + self.false_positives + self.false_negatives
        return self.true_positives / union if union else 1.0


@dataclass
class AccuracyReport:
    """Aggregated accuracy of an engine's result against the exact result."""

    engine: str
    windows: List[WindowAccuracy]
    value_rmse: float
    value_max_error: float

    @property
    def precision(self) -> float:
        tp = sum(w.true_positives for w in self.windows)
        fp = sum(w.false_positives for w in self.windows)
        return tp / (tp + fp) if (tp + fp) else 1.0

    @property
    def recall(self) -> float:
        tp = sum(w.true_positives for w in self.windows)
        fn = sum(w.false_negatives for w in self.windows)
        return tp / (tp + fn) if (tp + fn) else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        """The paper's headline number: edge-set F1 expressed as a fraction.

        "Accuracy above 90 percent" is interpreted as the harmonic mean of
        precision and recall on reported edges exceeding 0.9; since exact
        engines have precision 1.0, this reduces to recall for them.
        """
        return self.f1

    def worst_window(self) -> WindowAccuracy:
        return min(self.windows, key=lambda w: w.f1)

    def as_dict(self) -> Dict[str, float]:
        return {
            "engine": self.engine,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "value_rmse": self.value_rmse,
            "value_max_error": self.value_max_error,
        }


def compare_results(
    candidate: CorrelationSeriesResult,
    reference: CorrelationSeriesResult,
) -> AccuracyReport:
    """Compare a candidate engine's result against the exact reference.

    Both results must answer the same query (same windows, same number of
    series).  Value errors are computed over the edges present in *both*
    results (where the candidate claims an exact value for a true edge).
    """
    if candidate.num_windows != reference.num_windows:
        raise ExperimentError(
            f"window counts differ: {candidate.num_windows} vs {reference.num_windows}"
        )
    if candidate.num_series != reference.num_series:
        raise ExperimentError(
            f"series counts differ: {candidate.num_series} vs {reference.num_series}"
        )

    windows: List[WindowAccuracy] = []
    squared_errors: List[float] = []
    max_error = 0.0
    for k, (cand, ref) in enumerate(zip(candidate.matrices, reference.matrices)):
        cand_edges = cand.edge_dict()
        ref_edges = ref.edge_dict()
        cand_set = set(cand_edges)
        ref_set = set(ref_edges)
        both = cand_set & ref_set
        windows.append(
            WindowAccuracy(
                window_index=k,
                true_edges=len(ref_set),
                reported_edges=len(cand_set),
                true_positives=len(both),
                false_positives=len(cand_set - ref_set),
                false_negatives=len(ref_set - cand_set),
            )
        )
        for edge in both:
            error = abs(cand_edges[edge] - ref_edges[edge])
            squared_errors.append(error * error)
            max_error = max(max_error, error)

    rmse = float(np.sqrt(np.mean(squared_errors))) if squared_errors else 0.0
    return AccuracyReport(
        engine=candidate.stats.engine,
        windows=windows,
        value_rmse=rmse,
        value_max_error=max_error,
    )


def matrix_rmse(
    candidate: CorrelationSeriesResult, reference: CorrelationSeriesResult
) -> float:
    """RMSE between the dense thresholded matrices of two results (all windows)."""
    if candidate.num_windows != reference.num_windows:
        raise ExperimentError("window counts differ")
    errors = []
    for cand, ref in zip(candidate.matrices, reference.matrices):
        errors.append(np.mean((cand.to_dense() - ref.to_dense()) ** 2))
    return float(np.sqrt(np.mean(errors))) if errors else 0.0
