"""Statistical significance of correlation edges.

The paper's problem definition takes the threshold ``beta`` as a user input;
in practice analysts choose it either from domain convention or from a
significance argument — "keep edges whose correlation could not plausibly
arise from independent series of this length".  This module provides the
standard machinery for that choice: the Fisher z-transform, p-values and
confidence intervals for a sample Pearson correlation, the minimum significant
correlation for a window length (with optional Bonferroni correction for the
``N (N-1) / 2`` simultaneous pairs), and a filter that drops statistically
insignificant edges from a query result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

import numpy as np
from scipy import stats

from repro.config import FLOAT_DTYPE
from repro.core.result import CorrelationSeriesResult, ThresholdedMatrix
from repro.exceptions import DataValidationError, QueryValidationError

ArrayOrFloat = Union[float, np.ndarray]


def fisher_z(correlation: ArrayOrFloat) -> ArrayOrFloat:
    """Fisher z-transform ``arctanh(r)`` (values clipped just inside (-1, 1))."""
    clipped = np.clip(np.asarray(correlation, dtype=FLOAT_DTYPE), -1 + 1e-15, 1 - 1e-15)
    result = np.arctanh(clipped)
    if np.ndim(correlation) == 0:
        return float(result)
    return result


def fisher_z_inverse(z: ArrayOrFloat) -> ArrayOrFloat:
    """Inverse Fisher transform ``tanh(z)``."""
    result = np.tanh(np.asarray(z, dtype=FLOAT_DTYPE))
    if np.ndim(z) == 0:
        return float(result)
    return result


def _check_sample_size(num_samples: int, minimum: int = 4) -> None:
    if num_samples < minimum:
        raise QueryValidationError(
            f"need at least {minimum} observations, got {num_samples}"
        )


def correlation_pvalue(correlation: ArrayOrFloat, num_samples: int) -> ArrayOrFloat:
    """Two-sided p-value of a sample Pearson correlation under independence.

    Uses the exact t-distribution of ``r * sqrt((n-2) / (1-r^2))`` with
    ``n - 2`` degrees of freedom.
    """
    _check_sample_size(num_samples)
    r = np.clip(np.asarray(correlation, dtype=FLOAT_DTYPE), -1.0, 1.0)
    df = num_samples - 2
    denominator = np.maximum(1.0 - r * r, 1e-300)
    t = np.abs(r) * np.sqrt(df / denominator)
    p = 2.0 * stats.t.sf(t, df)
    p = np.clip(p, 0.0, 1.0)
    if np.ndim(correlation) == 0:
        return float(p)
    return p


def correlation_confidence_interval(
    correlation: float, num_samples: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Fisher-z confidence interval for a sample Pearson correlation."""
    _check_sample_size(num_samples)
    if not 0.0 < confidence < 1.0:
        raise QueryValidationError(
            f"confidence must lie strictly between 0 and 1, got {confidence}"
        )
    z = fisher_z(correlation)
    se = 1.0 / math.sqrt(num_samples - 3)
    margin = stats.norm.ppf(0.5 + confidence / 2.0) * se
    return (
        float(fisher_z_inverse(z - margin)),
        float(fisher_z_inverse(z + margin)),
    )


def significance_threshold(
    num_samples: int,
    alpha: float = 0.05,
    num_comparisons: int = 1,
) -> float:
    """Smallest ``|r|`` significant at level ``alpha`` for ``num_samples`` points.

    ``num_comparisons`` applies a Bonferroni correction — pass the number of
    simultaneously tested pairs (``N (N-1) / 2`` for an all-pairs query) to
    control the family-wise error rate.  The returned value is a principled
    lower bound for the query threshold ``beta``.
    """
    _check_sample_size(num_samples)
    if not 0.0 < alpha < 1.0:
        raise QueryValidationError(f"alpha must lie in (0, 1), got {alpha}")
    if num_comparisons < 1:
        raise QueryValidationError(
            f"num_comparisons must be at least 1, got {num_comparisons}"
        )
    corrected = alpha / num_comparisons
    df = num_samples - 2
    t_critical = stats.t.ppf(1.0 - corrected / 2.0, df)
    return float(t_critical / math.sqrt(df + t_critical**2))


@dataclass
class SignificanceReport:
    """Edge-level significance of one query result."""

    alpha: float
    window_length: int
    num_comparisons: int
    min_significant_correlation: float
    edges_total: int
    edges_significant: int
    per_window_significant: List[int]

    @property
    def significant_fraction(self) -> float:
        if self.edges_total == 0:
            return 1.0
        return self.edges_significant / self.edges_total

    def as_dict(self) -> Dict[str, float]:
        return {
            "alpha": self.alpha,
            "window_length": self.window_length,
            "num_comparisons": self.num_comparisons,
            "min_significant_correlation": self.min_significant_correlation,
            "edges_total": self.edges_total,
            "edges_significant": self.edges_significant,
            "significant_fraction": self.significant_fraction,
        }


def evaluate_significance(
    result: CorrelationSeriesResult,
    alpha: float = 0.05,
    bonferroni: bool = True,
) -> SignificanceReport:
    """How many reported edges are statistically significant at level ``alpha``."""
    window_length = result.query.window
    n = result.num_series
    comparisons = n * (n - 1) // 2 if bonferroni else 1
    minimum = significance_threshold(window_length, alpha, comparisons)
    per_window: List[int] = []
    total = 0
    significant = 0
    for matrix in result.matrices:
        count = int(np.count_nonzero(np.abs(matrix.values) >= minimum))
        per_window.append(count)
        significant += count
        total += matrix.num_edges
    return SignificanceReport(
        alpha=alpha,
        window_length=window_length,
        num_comparisons=comparisons,
        min_significant_correlation=minimum,
        edges_total=total,
        edges_significant=significant,
        per_window_significant=per_window,
    )


def filter_significant(
    result: CorrelationSeriesResult,
    alpha: float = 0.05,
    bonferroni: bool = True,
) -> CorrelationSeriesResult:
    """Return a copy of the result keeping only statistically significant edges.

    The query object is unchanged (its ``beta`` stays the user's threshold);
    only edges whose absolute correlation falls below the significance minimum
    are dropped.  When the significance minimum is below the query threshold
    the result is returned as-is (every reported edge is already significant).
    """
    report = evaluate_significance(result, alpha=alpha, bonferroni=bonferroni)
    minimum = report.min_significant_correlation
    if minimum <= result.query.threshold and result.query.threshold_mode == "signed":
        return result
    filtered: List[ThresholdedMatrix] = []
    for matrix in result.matrices:
        keep = np.abs(matrix.values) >= minimum
        filtered.append(
            ThresholdedMatrix(
                matrix.num_series,
                matrix.rows[keep],
                matrix.cols[keep],
                matrix.values[keep],
            )
        )
    return CorrelationSeriesResult(
        result.query, filtered, result.stats, series_ids=result.series_ids
    )


def edge_pvalues(matrix: ThresholdedMatrix, window_length: int) -> np.ndarray:
    """Two-sided p-values of every reported edge of one window."""
    if matrix.num_edges == 0:
        return np.zeros(0, dtype=FLOAT_DTYPE)
    if window_length < 4:
        raise DataValidationError(
            f"window length {window_length} too short for significance testing"
        )
    return np.asarray(correlation_pvalue(matrix.values, window_length), dtype=FLOAT_DTYPE)
