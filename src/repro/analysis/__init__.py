"""Accuracy, timing, stability, significance and reporting utilities (substrate S10)."""

from repro.analysis.accuracy import (
    AccuracyReport,
    WindowAccuracy,
    compare_results,
    matrix_rmse,
)
from repro.analysis.report import (
    format_markdown_table,
    format_table,
    rows_from_dicts,
    summarize_result,
)
from repro.analysis.significance import (
    SignificanceReport,
    correlation_confidence_interval,
    correlation_pvalue,
    edge_pvalues,
    evaluate_significance,
    filter_significant,
    fisher_z,
    fisher_z_inverse,
    significance_threshold,
)
from repro.analysis.stability import (
    CrossingReport,
    DriftReport,
    correlation_drift,
    dense_correlation_series,
    stability_summary,
    threshold_crossings,
)
from repro.analysis.timing import Timer, TimingSummary, measure, speedup

__all__ = [
    "AccuracyReport",
    "CrossingReport",
    "DriftReport",
    "SignificanceReport",
    "Timer",
    "TimingSummary",
    "WindowAccuracy",
    "compare_results",
    "correlation_confidence_interval",
    "correlation_drift",
    "correlation_pvalue",
    "dense_correlation_series",
    "edge_pvalues",
    "evaluate_significance",
    "filter_significant",
    "fisher_z",
    "fisher_z_inverse",
    "format_markdown_table",
    "format_table",
    "matrix_rmse",
    "measure",
    "rows_from_dicts",
    "significance_threshold",
    "speedup",
    "stability_summary",
    "summarize_result",
    "threshold_crossings",
]
