"""Quantifying how stable window-to-window correlations actually are.

Dangoron's whole premise is "the relatively stable correlation when
transitioning to the next sliding window": the Eq. 2 bound only buys long
jumps when consecutive windows' correlations change slowly, and recall only
stays high when pairs rarely cross the threshold between the windows the
engine chose to skip.  The helpers here measure both quantities on a concrete
workload — per-transition correlation drift and threshold-crossing rates — so
an analyst can predict, before running the pruned engine, how much pruning
the data will allow and how much recall it will cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.core.correlation import correlation_matrix
from repro.core.query import SlidingQuery
from repro.exceptions import ExperimentError, QueryValidationError
from repro.timeseries.matrix import TimeSeriesMatrix


def dense_correlation_series(
    matrix: TimeSeriesMatrix, query: SlidingQuery
) -> np.ndarray:
    """Unthresholded correlation matrices of every window, stacked.

    Returns an array of shape ``(num_windows, N, N)``.  This is the exact
    ground truth the stability statistics are computed from; for workloads
    where the full series does not fit in memory use ``max_pairs`` sampling in
    :func:`correlation_drift` instead.
    """
    query.validate_against_length(matrix.length)
    windows = np.zeros(
        (query.num_windows, matrix.num_series, matrix.num_series), dtype=FLOAT_DTYPE
    )
    for k, begin, end in query.iter_windows():
        windows[k] = correlation_matrix(matrix.values[:, begin:end])
    return windows


@dataclass
class DriftReport:
    """Distribution of per-pair correlation changes between consecutive windows."""

    num_windows: int
    num_pairs: int
    mean_abs_drift: float
    median_abs_drift: float
    p95_abs_drift: float
    max_abs_drift: float
    mean_signed_drift: float
    per_transition_mean: np.ndarray

    def fraction_within(self, delta: float) -> float:
        """Fraction of transitions whose *mean* absolute drift is below ``delta``."""
        if len(self.per_transition_mean) == 0:
            return 1.0
        return float(np.mean(self.per_transition_mean <= delta))

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_windows": self.num_windows,
            "num_pairs": self.num_pairs,
            "mean_abs_drift": self.mean_abs_drift,
            "median_abs_drift": self.median_abs_drift,
            "p95_abs_drift": self.p95_abs_drift,
            "max_abs_drift": self.max_abs_drift,
            "mean_signed_drift": self.mean_signed_drift,
        }


def correlation_drift(
    matrix: TimeSeriesMatrix,
    query: SlidingQuery,
    max_pairs: Optional[int] = None,
    seed: int = 0,
) -> DriftReport:
    """Per-transition correlation drift statistics over a sliding query.

    ``max_pairs`` restricts the computation to a random sample of pairs (all
    pairs by default); the drift of pair ``(i, j)`` at transition ``k`` is
    ``c_{k+1}(i, j) - c_k(i, j)``.
    """
    query.validate_against_length(matrix.length)
    if query.num_windows < 2:
        raise ExperimentError("drift analysis needs at least two windows")
    n = matrix.num_series
    rows, cols = np.triu_indices(n, k=1)
    if max_pairs is not None:
        if max_pairs < 1:
            raise QueryValidationError(f"max_pairs must be >= 1, got {max_pairs}")
        if max_pairs < len(rows):
            chosen = np.random.default_rng(seed).choice(
                len(rows), size=max_pairs, replace=False
            )
            rows, cols = rows[chosen], cols[chosen]

    previous = None
    all_abs: List[np.ndarray] = []
    all_signed: List[np.ndarray] = []
    per_transition_mean = np.zeros(query.num_windows - 1, dtype=FLOAT_DTYPE)
    for k, begin, end in query.iter_windows():
        corr = correlation_matrix(matrix.values[:, begin:end])[rows, cols]
        if previous is not None:
            drift = corr - previous
            all_signed.append(drift)
            all_abs.append(np.abs(drift))
            per_transition_mean[k - 1] = float(np.mean(np.abs(drift)))
        previous = corr

    abs_drift = np.concatenate(all_abs)
    signed_drift = np.concatenate(all_signed)
    return DriftReport(
        num_windows=query.num_windows,
        num_pairs=len(rows),
        mean_abs_drift=float(np.mean(abs_drift)),
        median_abs_drift=float(np.median(abs_drift)),
        p95_abs_drift=float(np.percentile(abs_drift, 95)),
        max_abs_drift=float(np.max(abs_drift)),
        mean_signed_drift=float(np.mean(signed_drift)),
        per_transition_mean=per_transition_mean,
    )


@dataclass
class CrossingReport:
    """How often pairs cross the threshold between consecutive windows."""

    threshold: float
    num_transitions: int
    num_pairs: int
    upward_crossings: int
    downward_crossings: int
    crossing_rate: float
    mean_windows_between_crossings: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "threshold": self.threshold,
            "num_transitions": self.num_transitions,
            "num_pairs": self.num_pairs,
            "upward_crossings": self.upward_crossings,
            "downward_crossings": self.downward_crossings,
            "crossing_rate": self.crossing_rate,
            "mean_windows_between_crossings": self.mean_windows_between_crossings,
        }


def threshold_crossings(
    matrix: TimeSeriesMatrix,
    query: SlidingQuery,
    threshold: Optional[float] = None,
) -> CrossingReport:
    """Count upward/downward threshold crossings between consecutive windows.

    An *upward* crossing (below the threshold in window ``k``, above it in
    window ``k+1``) is exactly the event Dangoron's jumping can miss when the
    Eq. 2 bound underestimates the rise; their rate upper-bounds the recall
    the pruned engine can lose.
    """
    beta = query.threshold if threshold is None else threshold
    dense = dense_correlation_series(matrix, query)
    n = matrix.num_series
    rows, cols = np.triu_indices(n, k=1)
    values = dense[:, rows, cols]
    if query.threshold_mode == "absolute":
        above = np.abs(values) >= beta
    else:
        above = values >= beta

    upward = int(np.count_nonzero(~above[:-1] & above[1:]))
    downward = int(np.count_nonzero(above[:-1] & ~above[1:]))
    transitions = (query.num_windows - 1) * len(rows)
    total_crossings = upward + downward
    return CrossingReport(
        threshold=beta,
        num_transitions=query.num_windows - 1,
        num_pairs=len(rows),
        upward_crossings=upward,
        downward_crossings=downward,
        crossing_rate=total_crossings / transitions if transitions else 0.0,
        mean_windows_between_crossings=(
            transitions / total_crossings if total_crossings else float("inf")
        ),
    )


def stability_summary(
    matrix: TimeSeriesMatrix,
    query: SlidingQuery,
    max_pairs: Optional[int] = 2000,
) -> Dict[str, float]:
    """One-call summary combining drift and crossing statistics (report-friendly)."""
    drift = correlation_drift(matrix, query, max_pairs=max_pairs)
    crossings = threshold_crossings(matrix, query)
    summary = drift.as_dict()
    summary.update(crossings.as_dict())
    return summary
