"""Timing utilities for the experiment harness.

pytest-benchmark handles the statistically careful timing inside
``benchmarks/``; the helpers here serve the experiment *reports*: a simple
context-manager timer, repeated-measurement summaries, and the speedup
arithmetic used when comparing engines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.exceptions import ExperimentError


class Timer:
    """Context manager measuring wall-clock seconds.

    >>> with Timer() as timer:
    ...     sum(range(1000))
    500500
    >>> timer.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._started is None:
            raise ExperimentError("Timer exited without being entered")
        self.seconds = time.perf_counter() - self._started
        self._started = None


@dataclass
class TimingSummary:
    """Summary of repeated measurements of one callable."""

    label: str
    samples: List[float] = field(default_factory=list)

    @property
    def best(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples)) if self.samples else 0.0

    @property
    def std(self) -> float:
        return float(np.std(self.samples)) if self.samples else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"label": self.label, "best": self.best, "mean": self.mean, "std": self.std}


def measure(
    function: Callable[[], object],
    repeats: int = 3,
    label: str = "",
) -> TimingSummary:
    """Run ``function`` ``repeats`` times and collect wall-clock samples."""
    if repeats < 1:
        raise ExperimentError(f"repeats must be at least 1, got {repeats}")
    summary = TimingSummary(label=label or getattr(function, "__name__", "callable"))
    for _ in range(repeats):
        with Timer() as timer:
            function()
        summary.samples.append(timer.seconds)
    return summary


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """How many times faster the candidate is than the baseline.

    Returns ``inf`` when the candidate took (measurably) zero time and the
    baseline did not; 1.0 when both are zero.
    """
    if candidate_seconds <= 0.0:
        return float("inf") if baseline_seconds > 0.0 else 1.0
    return baseline_seconds / candidate_seconds
