"""Plain-text tables for experiment output.

The paper's results are tables and sentences, not plots; the benchmark harness
prints the same kind of rows ("engine, query time, speedup, accuracy") so a
reader can compare them with EXPERIMENTS.md directly from the terminal.  No
plotting dependency is used — everything renders as aligned monospace text or
Markdown.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

Number = Union[int, float]
Cell = Union[str, Number]


def _format_cell(value: Cell, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table.

    Column widths adapt to content; floats are formatted to ``precision``
    digits (switching to scientific notation for very large/small values).
    """
    headers = [str(h) for h in headers]
    formatted = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(headers))
    lines.append(render_row(["-" * w for w in widths]))
    lines.extend(render_row(row) for row in formatted)
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    precision: int = 3,
) -> str:
    """Render a GitHub-flavoured Markdown table (used to refresh EXPERIMENTS.md)."""
    headers = [str(h) for h in headers]
    formatted = [[_format_cell(cell, precision) for cell in row] for row in rows]
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join(["---"] * len(headers)) + "|")
    lines.extend("| " + " | ".join(row) + " |" for row in formatted)
    return "\n".join(lines)


def summarize_result(result, title: Optional[str] = None, precision: int = 3) -> str:
    """Per-window summary table for any unified-protocol result.

    Consumes only the protocol surface (``describe()``, ``num_windows``,
    ``to_edges()``), so thresholded series, top-k and lagged results all
    render with the same columns: edge count, mean |weight|, and — when any
    edge carries one — the mean absolute lag.  This is the table the CLI
    prints for every ``--mode``.
    """
    edges_by_window: Dict[int, List] = {k: [] for k in range(result.num_windows)}
    for edge in result.to_edges():
        edges_by_window.setdefault(edge.window, []).append(edge)
    any_lag = any(
        edge.lag for edges in edges_by_window.values() for edge in edges
    )

    headers = ["window", "edges", "mean_|weight|"]
    if any_lag:
        headers.append("mean_|lag|")
    rows: List[List[Cell]] = []
    for k in sorted(edges_by_window):
        edges = edges_by_window[k]
        mean_weight = (
            sum(abs(e.weight) for e in edges) / len(edges) if edges else 0.0
        )
        row: List[Cell] = [k, len(edges), mean_weight]
        if any_lag:
            row.append(
                sum(abs(e.lag) for e in edges) / len(edges) if edges else 0.0
            )
        rows.append(row)
    return format_table(
        headers, rows, precision=precision, title=title or result.describe()
    )


def rows_from_dicts(
    records: Sequence[Dict[str, Cell]], columns: Optional[Sequence[str]] = None
) -> tuple:
    """Convert a list of dicts into ``(headers, rows)`` for the table formatters.

    When ``columns`` is omitted the union of keys is used, in first-seen order.
    """
    if columns is None:
        seen: List[str] = []
        for record in records:
            for key in record:
                if key not in seen:
                    seen.append(key)
        columns = seen
    rows = [[record.get(column, "") for column in columns] for record in records]
    return list(columns), rows
