"""Experiment harness: workloads, engine comparison, per-experiment registry (S10)."""

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
)

# Importing the ablation module registers the extension experiments (E11-E15)
# in the shared EXPERIMENTS index.
from repro.experiments.ablations import (
    experiment_e11_incremental,
    experiment_e12_topk,
    experiment_e13_slack,
    experiment_e14_pivot_count,
    experiment_e15_robustness_suite,
)
from repro.experiments.runner import (
    ComparisonResult,
    EngineRow,
    default_engines,
    run_comparison,
)
from repro.experiments.workloads import (
    Workload,
    climate_workload,
    finance_workload,
    fmri_workload,
    tomborg_workload,
)

__all__ = [
    "ComparisonResult",
    "EXPERIMENTS",
    "EngineRow",
    "ExperimentResult",
    "Workload",
    "climate_workload",
    "default_engines",
    "experiment_e11_incremental",
    "experiment_e12_topk",
    "experiment_e13_slack",
    "experiment_e14_pivot_count",
    "experiment_e15_robustness_suite",
    "finance_workload",
    "fmri_workload",
    "run_comparison",
    "run_experiment",
    "tomborg_workload",
]
