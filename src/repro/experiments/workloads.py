"""Standard workloads used by the experiments and benchmarks.

A *workload* bundles a data matrix, the sliding query to run over it, and the
metadata a report needs (where the data came from, what ground truth exists).
Each builder has a ``scale`` knob so the same experiment can run as a quick CI
check (scale < 1) or at the paper-like size (scale >= 1) without touching the
benchmark code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.query import SlidingQuery
from repro.datasets.climate import SyntheticUSCRN
from repro.datasets.finance import SyntheticMarket
from repro.datasets.fmri import SyntheticBOLD
from repro.exceptions import ExperimentError
from repro.timeseries.matrix import TimeSeriesMatrix
from repro.tomborg.distributions import named_distribution
from repro.tomborg.generator import SegmentSpec, TomborgGenerator
from repro.tomborg.spectral import named_spectrum


@dataclass
class Workload:
    """A named (matrix, query) pair with report metadata."""

    name: str
    matrix: TimeSeriesMatrix
    query: SlidingQuery
    basic_window_size: int
    metadata: Dict[str, object] = field(default_factory=dict)
    labels: Optional[np.ndarray] = None

    @property
    def num_series(self) -> int:
        return self.matrix.num_series

    @property
    def num_windows(self) -> int:
        return self.query.num_windows

    def describe(self) -> str:
        return (
            f"{self.name}: N={self.num_series}, L={self.matrix.length}, "
            f"{self.query.describe()}, b={self.basic_window_size}"
        )


def _scaled(value: int, scale: float, minimum: int) -> int:
    return max(minimum, int(round(value * scale)))


def climate_workload(
    scale: float = 1.0,
    threshold: float = 0.7,
    window_hours: int = 720,
    step_hours: int = 24,
    basic_window_size: int = 24,
    seed: int = 7,
) -> Workload:
    """USCRN-like hourly temperature anomalies (the paper's evaluation dataset).

    At ``scale=1`` this is 128 stations over 120 days with a 30-day window
    sliding one day at a time — the laptop-scale stand-in for the paper's
    NCEI 2020 hourly product.
    """
    num_stations = _scaled(128, scale, 16)
    num_days = _scaled(120, scale, 40)
    generator = SyntheticUSCRN(
        num_stations=num_stations,
        num_days=num_days,
        seed=seed,
        correlation_length_degrees=10.0,
        regional_strength=4.0,
    )
    matrix = generator.generate_anomalies()
    window = min(window_hours, matrix.length // 2 // basic_window_size * basic_window_size)
    window = max(window, 2 * basic_window_size)
    query = SlidingQuery(
        start=0,
        end=matrix.length,
        window=window,
        step=step_hours,
        threshold=threshold,
    )
    return Workload(
        name="climate_uscrn",
        matrix=matrix,
        query=query,
        basic_window_size=basic_window_size,
        metadata={
            "num_stations": num_stations,
            "num_days": num_days,
            "description": "synthetic USCRN hourly temperature anomalies",
        },
    )


def tomborg_workload(
    scale: float = 1.0,
    distribution: str = "bimodal",
    spectrum: str = "power_law",
    num_segments: int = 3,
    threshold: float = 0.7,
    basic_window_size: int = 32,
    seed: int = 11,
    distribution_kwargs: Optional[dict] = None,
    spectrum_kwargs: Optional[dict] = None,
) -> Workload:
    """Piecewise-stationary Tomborg data with a known time-varying ground truth."""
    if num_segments < 1:
        raise ExperimentError("num_segments must be at least 1")
    num_series = _scaled(96, scale, 12)
    segment_columns = _scaled(2048, scale, 512)
    segment_columns = (segment_columns // basic_window_size) * basic_window_size
    dist = named_distribution(distribution, **(distribution_kwargs or {}))
    spec = named_spectrum(spectrum, **(spectrum_kwargs or {}))
    generator = TomborgGenerator(num_series=num_series, spectrum=spec, seed=seed)
    dataset = generator.generate_piecewise(
        [SegmentSpec(num_columns=segment_columns, target=dist) for _ in range(num_segments)]
    )
    window = 8 * basic_window_size
    query = SlidingQuery(
        start=0,
        end=dataset.length,
        window=window,
        step=basic_window_size,
        threshold=threshold,
    )
    return Workload(
        name=f"tomborg_{distribution}_{spectrum}",
        matrix=dataset.matrix,
        query=query,
        basic_window_size=basic_window_size,
        metadata={
            "distribution": dist.describe(),
            "spectrum": spec.describe(),
            "segments": num_segments,
            "segment_columns": segment_columns,
            "dataset": dataset,
        },
    )


def fmri_workload(
    scale: float = 1.0,
    threshold: float = 0.6,
    basic_window_size: int = 10,
    seed: int = 13,
) -> Workload:
    """Voxel-level dynamic functional connectivity (the paper's motivation)."""
    side = max(3, int(round(6 * np.sqrt(scale))))
    generator = SyntheticBOLD(
        grid_shape=(side, side, 4),
        num_regions=max(4, int(12 * scale)),
        num_volumes=_scaled(600, scale, 200),
        seed=seed,
    )
    matrix, labels = generator.generate()
    window = 6 * basic_window_size
    query = SlidingQuery(
        start=0,
        end=(matrix.length // basic_window_size) * basic_window_size,
        window=window,
        step=basic_window_size,
        threshold=threshold,
    )
    return Workload(
        name="fmri_bold",
        matrix=matrix,
        query=query,
        basic_window_size=basic_window_size,
        metadata={"grid_shape": generator.grid_shape, "tr_seconds": generator.tr_seconds},
        labels=labels,
    )


def finance_workload(
    scale: float = 1.0,
    threshold: float = 0.6,
    basic_window_size: int = 21,
    crisis_periods: Sequence[Tuple[int, int]] = ((700, 800), (1100, 1180)),
    seed: int = 17,
) -> Workload:
    """Daily returns with sector structure and crisis-driven correlation spikes."""
    num_assets = _scaled(80, scale, 12)
    num_days = _scaled(1512, scale, 504)
    periods = [(s, e) for s, e in crisis_periods if e <= num_days]
    generator = SyntheticMarket(
        num_assets=num_assets,
        num_days=num_days,
        crisis_periods=periods,
        seed=seed,
    )
    matrix = generator.generate_returns()
    window = 6 * basic_window_size  # ~ six trading months of 21 days
    query = SlidingQuery(
        start=0,
        end=(matrix.length // basic_window_size) * basic_window_size,
        window=window,
        step=basic_window_size,
        threshold=threshold,
    )
    return Workload(
        name="finance_returns",
        matrix=matrix,
        query=query,
        basic_window_size=basic_window_size,
        metadata={"crisis_periods": periods, "sectors": generator.sector_labels()},
        labels=generator.sector_labels(),
    )
