"""Running several engines over one workload and collecting comparison rows.

This is the loop every experiment shares: compute the exact answer once
(brute force), run each engine on the same query, and record pure query time,
sketch build time, pruning counters and edge-set accuracy.  The benchmark
modules call :func:`run_comparison` and print its table, so the rows the
repository regenerates look exactly like the rows EXPERIMENTS.md records.

The harness routes every engine through one
:class:`~repro.api.CorrelationSession`, so engines whose planned basic-window
layouts coincide (Dangoron and TSUBASA at the same size, every threshold of a
sweep) share a single sketch build; the per-row ``sketch_seconds`` still
reports each engine's one-off build cost, keeping the precompute/query split
of the paper's tables intact while the harness itself runs faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.accuracy import compare_results
from repro.analysis.report import format_table
from repro.analysis.timing import speedup
from repro.api.session import CorrelationSession
from repro.baselines.brute_force import BruteForceEngine
from repro.baselines.parcorr import ParCorrEngine
from repro.baselines.statstream import StatStreamEngine
from repro.baselines.tsubasa import TsubasaEngine
from repro.core.dangoron import DangoronEngine
from repro.core.engine import SlidingCorrelationEngine
from repro.core.result import CorrelationSeriesResult
from repro.exceptions import ExperimentError
from repro.experiments.workloads import Workload


@dataclass
class EngineRow:
    """One engine's measured row in a comparison table."""

    engine: str
    query_seconds: float
    sketch_seconds: float
    speedup_vs_reference: float
    precision: float
    recall: float
    f1: float
    evaluation_fraction: float
    edges: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "query_seconds": self.query_seconds,
            "sketch_seconds": self.sketch_seconds,
            "speedup": self.speedup_vs_reference,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "eval_fraction": self.evaluation_fraction,
            "edges": self.edges,
        }


@dataclass
class ComparisonResult:
    """All engines' rows for one workload, plus the raw results."""

    workload: Workload
    reference_engine: str
    rows: List[EngineRow] = field(default_factory=list)
    results: Dict[str, CorrelationSeriesResult] = field(default_factory=dict)

    def row(self, engine_name_prefix: str) -> EngineRow:
        """First row whose engine label starts with the given prefix."""
        for row in self.rows:
            if row.engine.startswith(engine_name_prefix):
                return row
        raise ExperimentError(
            f"no engine row starting with {engine_name_prefix!r}; "
            f"have {[r.engine for r in self.rows]}"
        )

    def table(self, title: Optional[str] = None) -> str:
        headers = [
            "engine", "query_s", "sketch_s", "speedup", "precision", "recall",
            "f1", "eval_frac", "edges",
        ]
        rows = [
            [
                r.engine, r.query_seconds, r.sketch_seconds, r.speedup_vs_reference,
                r.precision, r.recall, r.f1, r.evaluation_fraction, r.edges,
            ]
            for r in self.rows
        ]
        return format_table(headers, rows, title=title or self.workload.describe())


def default_engines(basic_window_size: int) -> List[SlidingCorrelationEngine]:
    """The engine line-up of the paper's comparison (plus brute force)."""
    return [
        BruteForceEngine(),
        TsubasaEngine(basic_window_size=basic_window_size),
        DangoronEngine(basic_window_size=basic_window_size),
        ParCorrEngine(),
        StatStreamEngine(),
    ]


def run_comparison(
    workload: Workload,
    engines: Optional[Sequence[SlidingCorrelationEngine]] = None,
    reference: Optional[SlidingCorrelationEngine] = None,
    speedup_reference: str = "tsubasa",
    session: Optional[CorrelationSession] = None,
) -> ComparisonResult:
    """Run every engine on the workload and compare against the exact answer.

    ``speedup_reference`` selects whose query time the speedup column is
    measured against (the paper compares against TSUBASA; pass
    ``"brute_force"`` to compare against the no-data-management baseline).
    ``session`` overrides the per-call :class:`CorrelationSession` the engines
    run through — pass one to share its sketch cache across comparisons over
    the same workload.
    """
    if engines is None:
        engines = default_engines(workload.basic_window_size)
    if reference is None:
        reference = BruteForceEngine()
    if session is None:
        session = CorrelationSession(
            workload.matrix, basic_window_size=workload.basic_window_size
        )

    reference_result = session.run_with_engine(reference, workload.query)
    results: Dict[str, CorrelationSeriesResult] = {}
    for engine in engines:
        results[engine.describe()] = session.run_with_engine(engine, workload.query)

    reference_query_seconds = None
    for label, result in results.items():
        if label.startswith(speedup_reference):
            reference_query_seconds = result.stats.query_seconds
            break
    if reference_query_seconds is None:
        reference_query_seconds = reference_result.stats.query_seconds

    comparison = ComparisonResult(
        workload=workload, reference_engine=reference.describe()
    )
    comparison.results = results
    for label, result in results.items():
        accuracy = compare_results(result, reference_result)
        comparison.rows.append(
            EngineRow(
                engine=label,
                query_seconds=result.stats.query_seconds,
                sketch_seconds=result.stats.sketch_build_seconds,
                speedup_vs_reference=speedup(
                    reference_query_seconds, result.stats.query_seconds
                ),
                precision=accuracy.precision,
                recall=accuracy.recall,
                f1=accuracy.f1,
                evaluation_fraction=result.stats.evaluation_fraction,
                edges=result.total_edges(),
            )
        )
    return comparison
