"""Extension experiments E11–E15: ablations of the repository's design choices.

The paper's own evaluation is E1–E10 (see :mod:`repro.experiments.registry`);
the experiments here probe the additional components this repository builds on
top of it and the design decisions DESIGN.md flags as ablation candidates:

====  =======================================================================
E11   Incremental rolling-sums engine vs Dangoron vs TSUBASA across sliding
      step sizes (where does jumping beat plain incremental maintenance?).
E12   Top-k queries: sketch-based vs brute-force cost and agreement across k.
E13   Slack/recall trade-off of the Eq. 2 bound on drifting (piecewise) data.
E14   Horizontal-pruning pivot count: pruning power vs pivot evaluation cost.
E15   Robustness suite: Dangoron accuracy across the named Tomborg suite
      (distributions x spectra x measurement corruption).
====  =======================================================================

Each function returns an :class:`~repro.experiments.registry.ExperimentResult`
and is registered in the shared ``EXPERIMENTS`` index, so the CLI, the
benchmark harness and EXPERIMENTS.md treat paper experiments and extension
experiments uniformly.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.analysis.accuracy import compare_results
from repro.analysis.timing import Timer
from repro.baselines.brute_force import BruteForceEngine
from repro.baselines.tsubasa import TsubasaEngine
from repro.core.dangoron import DangoronEngine
from repro.core.incremental import IncrementalEngine
from repro.core.query import SlidingQuery
from repro.core.topk import sliding_top_k, top_k_brute_force, top_k_overlap
from repro.experiments.registry import EXPERIMENTS, ExperimentResult
from repro.experiments.workloads import climate_workload, tomborg_workload
from repro.tomborg.suite import default_suite


def experiment_e11_incremental(
    scale: float = 0.5,
    steps: Sequence[int] = (8, 24, 72, 168),
    threshold: float = 0.7,
) -> ExperimentResult:
    """E11: incremental maintenance vs pruning vs recombination across step sizes.

    Small steps mean large window overlap — the friendly case for rolling
    sums — while large steps shrink the overlap and favour engines whose work
    scales with the number of *edges* rather than the number of columns.
    """
    base = climate_workload(scale=scale, threshold=threshold)
    rows: List[List[object]] = []
    for step in steps:
        query = SlidingQuery(
            start=0,
            end=base.matrix.length,
            window=base.query.window,
            step=step,
            threshold=threshold,
        )
        reference = BruteForceEngine().run(base.matrix, query)
        engines = [
            TsubasaEngine(basic_window_size=base.basic_window_size),
            DangoronEngine(basic_window_size=base.basic_window_size),
            IncrementalEngine(),
        ]
        tsubasa_seconds = None
        for engine in engines:
            result = engine.run(base.matrix, query)
            if tsubasa_seconds is None:
                tsubasa_seconds = result.stats.query_seconds
            accuracy = compare_results(result, reference)
            rows.append(
                [
                    step,
                    query.num_windows,
                    result.stats.engine,
                    result.stats.query_seconds,
                    tsubasa_seconds / max(result.stats.query_seconds, 1e-12),
                    accuracy.recall,
                ]
            )
    return ExperimentResult(
        experiment_id="E11",
        title="incremental rolling sums vs pruning vs recombination, by step size",
        headers=["step", "num_windows", "engine", "query_s", "speedup_vs_tsubasa", "recall"],
        rows=rows,
        notes=base.describe(),
    )


def experiment_e12_topk(
    scale: float = 0.5,
    ks: Sequence[int] = (1, 5, 10, 50),
) -> ExperimentResult:
    """E12: top-k correlated pairs — sketch-based vs brute-force agreement and cost."""
    workload = climate_workload(scale=scale)
    rows: List[List[object]] = []
    for k in ks:
        with Timer() as sketch_timer:
            sketch_result = sliding_top_k(
                workload.matrix, workload.query, k,
                basic_window_size=workload.basic_window_size,
            )
        with Timer() as brute_timer:
            brute_result = top_k_brute_force(workload.matrix, workload.query, k)
        overlaps = top_k_overlap(sketch_result, brute_result)
        rows.append(
            [
                k,
                sketch_timer.seconds,
                brute_timer.seconds,
                float(np.mean(overlaps)),
                float(np.min(overlaps)),
                sketch_result.suggested_threshold(),
            ]
        )
    return ExperimentResult(
        experiment_id="E12",
        title="top-k pair queries: sketch vs brute force",
        headers=["k", "sketch_s", "brute_s", "mean_overlap", "min_overlap",
                 "suggested_beta"],
        rows=rows,
        notes=workload.describe(),
    )


def experiment_e13_slack(
    scale: float = 0.4,
    slacks: Sequence[float] = (0.0, 0.02, 0.05, 0.1, 0.2),
    threshold: float = 0.7,
) -> ExperimentResult:
    """E13: recall recovered (and skips lost) by tightening the Eq. 2 bound with slack.

    Runs on piecewise-stationary Tomborg data with a uniform correlation
    target, the adversarial case where pairs hover just below the threshold.
    """
    workload = tomborg_workload(
        scale=scale,
        distribution="uniform",
        spectrum="power_law",
        threshold=threshold,
        distribution_kwargs={"low": 0.3, "high": 0.8},
    )
    reference = BruteForceEngine().run(workload.matrix, workload.query)
    rows: List[List[object]] = []
    for slack in slacks:
        engine = DangoronEngine(
            basic_window_size=workload.basic_window_size, slack=slack
        )
        result = engine.run(workload.matrix, workload.query)
        accuracy = compare_results(result, reference)
        rows.append(
            [
                slack,
                accuracy.recall,
                accuracy.precision,
                result.stats.evaluation_fraction,
                result.stats.skipped_by_jumping,
                result.stats.query_seconds,
            ]
        )
    return ExperimentResult(
        experiment_id="E13",
        title="slack sweep: recall vs skipped work on near-threshold data",
        headers=["slack", "recall", "precision", "eval_fraction", "skipped", "query_s"],
        rows=rows,
        notes=workload.describe(),
    )


def experiment_e14_pivot_count(
    scale: float = 0.5,
    pivot_counts: Sequence[int] = (1, 2, 4, 8, 16),
    threshold: float = 0.75,
) -> ExperimentResult:
    """E14: horizontal pruning pivots — pruning power vs the cost of analysing them.

    Temporal pruning is disabled so the effect of the triangle bound is
    isolated; recall stays 1 by construction (the bound is exact), so the
    interesting columns are the fraction of pairs pruned and the net time.
    """
    workload = climate_workload(scale=scale, threshold=threshold)
    reference = BruteForceEngine().run(workload.matrix, workload.query)
    rows: List[List[object]] = []
    for num_pivots in pivot_counts:
        engine = DangoronEngine(
            basic_window_size=workload.basic_window_size,
            use_temporal_pruning=False,
            use_horizontal_pruning=True,
            num_pivots=num_pivots,
        )
        result = engine.run(workload.matrix, workload.query)
        accuracy = compare_results(result, reference)
        total_pair_windows = max(result.stats.total_pair_windows, 1)
        rows.append(
            [
                num_pivots,
                result.stats.pruned_horizontally / total_pair_windows,
                result.stats.extra.get("pivot_evaluations", 0.0),
                result.stats.query_seconds,
                accuracy.recall,
            ]
        )
    return ExperimentResult(
        experiment_id="E14",
        title="horizontal pruning: pivot count ablation",
        headers=["num_pivots", "pruned_fraction", "pivot_evaluations", "query_s",
                 "recall"],
        rows=rows,
        notes=workload.describe(),
    )


def experiment_e15_robustness_suite(
    scale: float = 0.5,
    seed: int = 301,
) -> ExperimentResult:
    """E15: Dangoron accuracy and pruning across the named Tomborg robustness suite."""
    num_series = max(12, int(round(64 * scale)))
    segment_columns = max(256, int(round(1024 * scale)) // 32 * 32)
    rows: List[List[object]] = []
    for case in default_suite():
        dataset, query = case.generate(
            num_series=num_series,
            segment_columns=segment_columns,
            basic_window_size=32,
            seed=seed,
        )
        reference = BruteForceEngine().run(dataset.matrix, query)
        result = DangoronEngine(basic_window_size=32).run(dataset.matrix, query)
        accuracy = compare_results(result, reference)
        rows.append(
            [
                case.name,
                case.noise or "none",
                reference.total_edges(),
                accuracy.precision,
                accuracy.recall,
                result.stats.evaluation_fraction,
            ]
        )
    return ExperimentResult(
        experiment_id="E15",
        title="robustness suite: Dangoron accuracy per named configuration",
        headers=["case", "noise", "true_edges", "precision", "recall", "eval_fraction"],
        rows=rows,
        notes=f"suite of {len(rows)} cases, N={num_series}, "
              f"segment_columns={segment_columns}",
    )


#: Register the extension experiments alongside the paper's E1–E10.
EXPERIMENTS.update(
    {
        "E11": experiment_e11_incremental,
        "E12": experiment_e12_topk,
        "E13": experiment_e13_slack,
        "E14": experiment_e14_pivot_count,
        "E15": experiment_e15_robustness_suite,
    }
)
