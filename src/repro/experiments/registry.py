"""The per-experiment index: one function per table/figure the repo reproduces.

Each ``experiment_e*`` function builds its workload(s), runs the engines it
needs, and returns an :class:`ExperimentResult` whose rows are exactly what
EXPERIMENTS.md records and what the matching ``benchmarks/bench_e*.py`` module
prints.  The ``scale`` argument shrinks the workload for CI; ``scale=1.0``
approximates the paper-like size.

Experiment map (see DESIGN.md §3 for the prose version):

====  =======================================================================
E1    Pure query time, Dangoron vs TSUBASA vs brute force (the "order of
      magnitude" claim).
E2    Edge-set accuracy of Dangoron and ParCorr vs exact ("above 90 percent").
E3    Tomborg robustness sweep over correlation distributions and spectra.
E4    Threshold sweep: pruning effectiveness vs beta (Fig. 2 mechanism).
E5    Scalability in the number of series N.
E6    Window size / sliding step sweep.
E7    Pruning ablation: temporal vs horizontal vs both vs none.
E8    Sketch construction cost vs basic-window size.
E9    Empirical quality of the Eq. 2 temporal bound.
E10   Robustness gap of frequency/projection sketches across spectra.
====  =======================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.accuracy import compare_results
from repro.analysis.report import format_table
from repro.baselines.brute_force import BruteForceEngine
from repro.baselines.parcorr import ParCorrEngine
from repro.baselines.statstream import StatStreamEngine
from repro.baselines.tsubasa import TsubasaEngine
from repro.core.basic_window import BasicWindowLayout
from repro.core.bounds import temporal_upper_bound
from repro.core.dangoron import DangoronEngine
from repro.core.query import SlidingQuery
from repro.core.sketch import BasicWindowSketch
from repro.exceptions import ExperimentError
from repro.experiments.runner import run_comparison
from repro.experiments.workloads import (
    Workload,
    climate_workload,
    tomborg_workload,
)


@dataclass
class ExperimentResult:
    """Rows regenerating one of the paper's reported results."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: str = ""

    def table(self) -> str:
        return format_table(
            self.headers, self.rows, title=f"{self.experiment_id}: {self.title}"
        )


# ---------------------------------------------------------------------------
# E1 / E2: the paper's §4 claims
# ---------------------------------------------------------------------------

def experiment_e1_query_time(scale: float = 0.5, threshold: float = 0.7) -> ExperimentResult:
    """E1: pure query time of Dangoron vs TSUBASA vs brute force (climate data)."""
    workload = climate_workload(scale=scale, threshold=threshold)
    comparison = run_comparison(
        workload,
        engines=[
            BruteForceEngine(),
            TsubasaEngine(basic_window_size=workload.basic_window_size),
            DangoronEngine(basic_window_size=workload.basic_window_size),
        ],
    )
    rows = [
        [r.engine, r.query_seconds, r.sketch_seconds, r.speedup_vs_reference, r.recall]
        for r in comparison.rows
    ]
    return ExperimentResult(
        experiment_id="E1",
        title="pure query time (speedup measured against TSUBASA)",
        headers=["engine", "query_s", "sketch_s", "speedup_vs_tsubasa", "recall"],
        rows=rows,
        notes=workload.describe(),
    )


def experiment_e2_accuracy(scale: float = 0.5, threshold: float = 0.7) -> ExperimentResult:
    """E2: edge-set accuracy of Dangoron, ParCorr and StatStream vs exact."""
    workload = climate_workload(scale=scale, threshold=threshold)
    comparison = run_comparison(
        workload,
        engines=[
            DangoronEngine(basic_window_size=workload.basic_window_size),
            ParCorrEngine(),
            ParCorrEngine(verify=False),
            StatStreamEngine(),
        ],
    )
    rows = [
        [r.engine, r.precision, r.recall, r.f1, r.query_seconds]
        for r in comparison.rows
    ]
    return ExperimentResult(
        experiment_id="E2",
        title="edge-set accuracy against the exact (brute force) answer",
        headers=["engine", "precision", "recall", "f1", "query_s"],
        rows=rows,
        notes=workload.describe(),
    )


# ---------------------------------------------------------------------------
# E3 / E10: Tomborg robustness
# ---------------------------------------------------------------------------

_E3_CONFIGS = (
    ("bimodal", "flat"),
    ("bimodal", "power_law"),
    ("bimodal", "peaked"),
    ("uniform", "power_law"),
    ("sparse", "power_law"),
    ("beta", "band"),
)


def experiment_e3_tomborg_robustness(
    scale: float = 0.4, configs: Sequence = _E3_CONFIGS
) -> ExperimentResult:
    """E3: engine robustness across Tomborg distributions and spectrum shapes."""
    rows: List[List[object]] = []
    for distribution, spectrum in configs:
        workload = tomborg_workload(
            scale=scale, distribution=distribution, spectrum=spectrum
        )
        comparison = run_comparison(
            workload,
            engines=[
                DangoronEngine(basic_window_size=workload.basic_window_size),
                ParCorrEngine(),
                StatStreamEngine(),
            ],
        )
        for engine_row in comparison.rows:
            rows.append(
                [
                    distribution,
                    spectrum,
                    engine_row.engine,
                    engine_row.recall,
                    engine_row.f1,
                    engine_row.query_seconds,
                ]
            )
    return ExperimentResult(
        experiment_id="E3",
        title="Tomborg robustness sweep (recall/F1 per distribution x spectrum)",
        headers=["distribution", "spectrum", "engine", "recall", "f1", "query_s"],
        rows=rows,
    )


def experiment_e10_sketch_robustness(scale: float = 0.4) -> ExperimentResult:
    """E10: frequency/projection sketches degrade on flat spectra; Dangoron does not."""
    rows: List[List[object]] = []
    for spectrum in ("peaked", "power_law", "flat"):
        workload = tomborg_workload(
            scale=scale, distribution="bimodal", spectrum=spectrum
        )
        comparison = run_comparison(
            workload,
            engines=[
                DangoronEngine(basic_window_size=workload.basic_window_size),
                ParCorrEngine(verify=False, candidate_margin=0.0),
                StatStreamEngine(verify=False, candidate_margin=0.0,
                                 num_coefficients=8),
            ],
        )
        for engine_row in comparison.rows:
            rows.append(
                [
                    spectrum,
                    engine_row.engine,
                    engine_row.precision,
                    engine_row.recall,
                    engine_row.f1,
                ]
            )
    return ExperimentResult(
        experiment_id="E10",
        title="sketch robustness vs spectrum energy concentration",
        headers=["spectrum", "engine", "precision", "recall", "f1"],
        rows=rows,
        notes="approximate engines run without exact verification to expose "
              "their estimation error (margin = 0)",
    )


# ---------------------------------------------------------------------------
# E4 – E7: efficiency sweeps and ablation
# ---------------------------------------------------------------------------

def experiment_e4_threshold_sweep(
    scale: float = 0.5,
    thresholds: Sequence[float] = (0.5, 0.6, 0.7, 0.8, 0.9),
) -> ExperimentResult:
    """E4: how pruning effectiveness and accuracy change with the threshold."""
    rows: List[List[object]] = []
    workload = climate_workload(scale=scale)
    exact = BruteForceEngine()
    for beta in thresholds:
        query = workload.query.with_threshold(beta)
        reference = exact.run(workload.matrix, query)
        dangoron = DangoronEngine(basic_window_size=workload.basic_window_size)
        result = dangoron.run(workload.matrix, query)
        tsubasa = TsubasaEngine(basic_window_size=workload.basic_window_size).run(
            workload.matrix, query
        )
        accuracy = compare_results(result, reference)
        density = reference.total_edges() / max(
            1, reference.stats.total_pair_windows
        )
        rows.append(
            [
                beta,
                density,
                result.stats.evaluation_fraction,
                result.stats.skipped_by_jumping,
                result.stats.query_seconds,
                tsubasa.stats.query_seconds,
                tsubasa.stats.query_seconds / max(result.stats.query_seconds, 1e-12),
                accuracy.recall,
            ]
        )
    return ExperimentResult(
        experiment_id="E4",
        title="threshold sweep: pruning effectiveness vs beta",
        headers=[
            "beta", "edge_density", "eval_fraction", "skipped", "dangoron_s",
            "tsubasa_s", "speedup", "recall",
        ],
        rows=rows,
        notes=workload.describe(),
    )


def experiment_e5_scalability(
    scales: Sequence[float] = (0.25, 0.5, 0.75, 1.0), threshold: float = 0.7
) -> ExperimentResult:
    """E5: query time vs the number of series N."""
    rows: List[List[object]] = []
    for scale in scales:
        workload = climate_workload(scale=scale, threshold=threshold)
        comparison = run_comparison(
            workload,
            engines=[
                BruteForceEngine(),
                TsubasaEngine(basic_window_size=workload.basic_window_size),
                DangoronEngine(basic_window_size=workload.basic_window_size),
            ],
        )
        for engine_row in comparison.rows:
            rows.append(
                [
                    workload.num_series,
                    workload.num_windows,
                    engine_row.engine,
                    engine_row.query_seconds,
                    engine_row.speedup_vs_reference,
                    engine_row.recall,
                ]
            )
    return ExperimentResult(
        experiment_id="E5",
        title="scalability in the number of series",
        headers=["num_series", "num_windows", "engine", "query_s", "speedup", "recall"],
        rows=rows,
    )


def experiment_e6_window_step(
    scale: float = 0.5,
    windows: Sequence[int] = (240, 480, 720),
    steps: Sequence[int] = (24, 72, 168),
    threshold: float = 0.7,
) -> ExperimentResult:
    """E6: query time vs window size and sliding step."""
    base = climate_workload(scale=scale, threshold=threshold)
    rows: List[List[object]] = []
    for window in windows:
        for step in steps:
            if window > base.matrix.length:
                continue
            query = SlidingQuery(
                start=0,
                end=base.matrix.length,
                window=window,
                step=step,
                threshold=threshold,
            )
            tsubasa = TsubasaEngine(basic_window_size=base.basic_window_size).run(
                base.matrix, query
            )
            dangoron = DangoronEngine(basic_window_size=base.basic_window_size).run(
                base.matrix, query
            )
            rows.append(
                [
                    window,
                    step,
                    query.num_windows,
                    tsubasa.stats.query_seconds,
                    dangoron.stats.query_seconds,
                    tsubasa.stats.query_seconds
                    / max(dangoron.stats.query_seconds, 1e-12),
                    dangoron.stats.evaluation_fraction,
                ]
            )
    return ExperimentResult(
        experiment_id="E6",
        title="window size / sliding step sweep",
        headers=[
            "window", "step", "num_windows", "tsubasa_s", "dangoron_s", "speedup",
            "eval_fraction",
        ],
        rows=rows,
        notes=base.describe(),
    )


def experiment_e7_pruning_ablation(scale: float = 0.5, threshold: float = 0.75) -> ExperimentResult:
    """E7: contribution of each pruning mechanism."""
    workload = climate_workload(scale=scale, threshold=threshold)
    variants = [
        ("none", DangoronEngine(
            basic_window_size=workload.basic_window_size,
            use_temporal_pruning=False, use_horizontal_pruning=False)),
        ("temporal", DangoronEngine(
            basic_window_size=workload.basic_window_size,
            use_temporal_pruning=True, use_horizontal_pruning=False)),
        ("horizontal", DangoronEngine(
            basic_window_size=workload.basic_window_size,
            use_temporal_pruning=False, use_horizontal_pruning=True)),
        ("temporal+horizontal", DangoronEngine(
            basic_window_size=workload.basic_window_size,
            use_temporal_pruning=True, use_horizontal_pruning=True)),
        ("prefix_combination", DangoronEngine(
            basic_window_size=workload.basic_window_size,
            use_temporal_pruning=True, prefix_combination=True)),
    ]
    reference = BruteForceEngine().run(workload.matrix, workload.query)
    rows: List[List[object]] = []
    for label, engine in variants:
        result = engine.run(workload.matrix, workload.query)
        accuracy = compare_results(result, reference)
        rows.append(
            [
                label,
                result.stats.query_seconds,
                result.stats.evaluation_fraction,
                result.stats.skipped_by_jumping,
                result.stats.pruned_horizontally,
                accuracy.recall,
            ]
        )
    return ExperimentResult(
        experiment_id="E7",
        title="pruning ablation",
        headers=[
            "configuration", "query_s", "eval_fraction", "skipped_by_jumping",
            "pruned_horizontally", "recall",
        ],
        rows=rows,
        notes=workload.describe(),
    )


# ---------------------------------------------------------------------------
# E8 / E9: sketch cost and bound quality
# ---------------------------------------------------------------------------

def experiment_e8_sketch_build(
    scale: float = 0.5, basic_window_sizes: Sequence[int] = (8, 12, 24, 48, 120)
) -> ExperimentResult:
    """E8: sketch construction cost and memory vs basic-window size."""
    workload = climate_workload(scale=scale)
    values = workload.matrix.values
    rows: List[List[object]] = []
    for size in basic_window_sizes:
        if values.shape[1] < 2 * size:
            continue
        layout = BasicWindowLayout.for_range(0, values.shape[1], size)
        sketch = BasicWindowSketch.build(values, layout)
        usable_step = max(size, workload.query.step)
        query = SlidingQuery(
            start=0,
            end=workload.matrix.length,
            window=(workload.query.window // size) * size or 2 * size,
            step=usable_step,
            threshold=workload.query.threshold,
        )
        engine = DangoronEngine(basic_window_size=size)
        result = engine.run(workload.matrix, query)
        rows.append(
            [
                size,
                layout.count,
                sketch.build_seconds,
                sketch.memory_bytes() / 1e6,
                result.stats.query_seconds,
                result.stats.evaluation_fraction,
            ]
        )
    return ExperimentResult(
        experiment_id="E8",
        title="sketch construction cost vs basic-window size",
        headers=[
            "basic_window", "num_basic_windows", "build_s", "memory_MB",
            "dangoron_query_s", "eval_fraction",
        ],
        rows=rows,
        notes=workload.describe(),
    )


def experiment_e9_bound_quality(
    scale: float = 0.4,
    horizons: Sequence[int] = (1, 2, 4, 8),
    threshold: float = 0.7,
    max_pairs: int = 400,
    seed: int = 23,
) -> ExperimentResult:
    """E9: empirical tightness and violation rate of the Eq. 2 temporal bound.

    For a sample of pairs and window positions, compares the bound's
    prediction for the correlation ``h`` windows ahead with the true value.
    A "violation" is a true value exceeding the bound (possible because the
    bound's derivation assumes per-basic-window stationarity).
    """
    workload = climate_workload(scale=scale, threshold=threshold)
    query = workload.query
    layout = BasicWindowLayout.for_query(query, workload.basic_window_size)
    sketch = BasicWindowSketch.build(workload.matrix.values, layout)
    window_bw = query.window // layout.size
    step_bw = query.step // layout.size

    rng = np.random.default_rng(seed)
    n = workload.num_series
    all_rows, all_cols = np.triu_indices(n, k=1)
    if len(all_rows) > max_pairs:
        chosen = rng.choice(len(all_rows), size=max_pairs, replace=False)
        all_rows, all_cols = all_rows[chosen], all_cols[chosen]

    prefix = sketch.corr_prefix
    rows: List[List[object]] = []
    for horizon in horizons:
        usable_windows = query.num_windows - horizon
        if usable_windows < 1:
            continue
        violations = 0
        total = 0
        slack_sum = 0.0
        for k in range(0, usable_windows, max(1, usable_windows // 8)):
            bw_first = (k * query.step) // layout.size
            now = sketch.exact_pairs_scan(all_rows, all_cols, bw_first, window_bw)
            future_first = bw_first + horizon * step_bw
            future = sketch.exact_pairs_scan(
                all_rows, all_cols, future_first, window_bw
            )
            outgoing = horizon * step_bw
            outgoing_sum = (
                prefix[bw_first + outgoing, all_rows, all_cols]
                - prefix[bw_first, all_rows, all_cols]
            )
            bound = temporal_upper_bound(now, outgoing, outgoing_sum, window_bw)
            violations += int(np.count_nonzero(future > bound + 1e-9))
            slack_sum += float(np.sum(bound - future))
            total += len(all_rows)
        if total == 0:
            continue
        rows.append(
            [
                horizon,
                total,
                violations / total,
                slack_sum / total,
            ]
        )
    return ExperimentResult(
        experiment_id="E9",
        title="Eq. 2 temporal bound: violation rate and mean slack vs horizon",
        headers=["horizon_windows", "checks", "violation_rate", "mean_slack"],
        rows=rows,
        notes=workload.describe(),
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": experiment_e1_query_time,
    "E2": experiment_e2_accuracy,
    "E3": experiment_e3_tomborg_robustness,
    "E4": experiment_e4_threshold_sweep,
    "E5": experiment_e5_scalability,
    "E6": experiment_e6_window_step,
    "E7": experiment_e7_pruning_ablation,
    "E8": experiment_e8_sketch_build,
    "E9": experiment_e9_bound_quality,
    "E10": experiment_e10_sketch_robustness,
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id (raises for unknown ids)."""
    try:
        function = EXPERIMENTS[experiment_id.upper()]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return function(**kwargs)
