"""Baseline engines the paper compares against (substrate S4).

* :class:`BruteForceEngine` — exact ground truth, no data management.
* :class:`TsubasaEngine` — the paper's primary baseline: exact basic-window
  sketch recombination for every pair in every window (SIGMOD 2022).
* :class:`ParCorrEngine` — random-projection sketching (DAMI 2018), the
  accuracy comparison point.
* :class:`StatStreamEngine` — truncated-DFT sketching (VLDB 2002), the
  frequency-transform family whose data-dependency §2 discusses.
* :class:`FilCorrEngine` — filtered/downsampled correlation (ICDM 2020), the
  other streaming-filter approach cited in §2.
"""

from repro.baselines.brute_force import BruteForceEngine
from repro.baselines.filcorr import FilCorrEngine, moving_average_filter
from repro.baselines.parcorr import ParCorrEngine
from repro.baselines.statstream import StatStreamEngine
from repro.baselines.tsubasa import TsubasaEngine

__all__ = [
    "BruteForceEngine",
    "FilCorrEngine",
    "ParCorrEngine",
    "StatStreamEngine",
    "TsubasaEngine",
    "moving_average_filter",
]
